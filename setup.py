"""Shim so legacy editable installs work on environments without `wheel`.

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
