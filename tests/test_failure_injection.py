"""Failure injection: every bad input must fail loudly and precisely.

Production users feed the library hand-written JSON, half-migrated
configs and questionable cost tables; each scenario here pins (a) that the
failure is detected, (b) at the right layer, (c) with an actionable
message.  Silent wrong answers are the only unacceptable outcome.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.exceptions import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    TreeStructureError,
    WorkloadError,
)
from repro.power.dp_power_pareto import power_frontier
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree
from repro.tree.serialize import tree_from_json


class TestMalformedSerializedTrees:
    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all {",
            json.dumps({"schema": 1}),  # missing keys
            json.dumps({"schema": 1, "parents": [None], "clients": [[0]]}),
            json.dumps({"schema": 2, "parents": [None], "clients": []}),
            json.dumps({"schema": 1, "parents": "nope", "clients": []}),
        ],
    )
    def test_rejected_as_configuration_error(self, payload):
        with pytest.raises(ConfigurationError):
            tree_from_json(payload)

    def test_structurally_broken_tree_rejected_as_structure_error(self):
        payload = json.dumps(
            {"schema": 1, "parents": [None, 2, 1], "clients": []}
        )
        with pytest.raises(TreeStructureError):
            tree_from_json(payload)

    def test_bad_client_rejected_as_workload_error(self):
        payload = json.dumps(
            {"schema": 1, "parents": [None], "clients": [[0, -5]]}
        )
        with pytest.raises(WorkloadError):
            tree_from_json(payload)

    def test_all_failures_share_the_base_class(self):
        for payload in ("{bad", json.dumps({"schema": 1, "parents": [None, 2, 1], "clients": []})):
            with pytest.raises(ReproError):
                tree_from_json(payload)


class TestHostileWorkloads:
    def test_huge_requests_detected_at_the_offending_node(self):
        t = Tree([None, 0, 1], [Client(2, 10**9)])
        with pytest.raises(InfeasibleError) as exc:
            greedy_placement(t, 10)
        assert exc.value.node == 2

    def test_zero_capacity_everywhere(self):
        t = Tree([None], [Client(0, 1)])
        for call in (
            lambda: greedy_placement(t, 0),
            lambda: replica_update(t, 0),
        ):
            with pytest.raises(ConfigurationError):
                call()

    def test_aggregate_overload_across_many_clients(self):
        # 11 clients of 1 request on one node, W=10: individually harmless,
        # jointly infeasible.
        t = Tree([None], [Client(0, 1) for _ in range(11)])
        with pytest.raises(InfeasibleError):
            replica_update(t, 10)

    def test_message_names_capacity_and_load(self):
        t = Tree([None], [Client(0, 42)])
        with pytest.raises(InfeasibleError, match="42.*W=10"):
            replica_update(t, 10)


class TestHostilePowerConfigs:
    def test_non_monotone_modes(self):
        with pytest.raises(ConfigurationError, match="increasing"):
            ModeSet((10, 5))

    def test_cost_model_mode_mismatch_caught_before_solving(self, chain_tree):
        pm = PowerModel(ModeSet((5, 10)), static_power=1.0, alpha=2.0)
        with pytest.raises(ConfigurationError, match="modes"):
            power_frontier(chain_tree, pm, ModalCostModel.uniform(3))

    def test_preexisting_mode_out_of_range(self, chain_tree):
        pm = PowerModel(ModeSet((5, 10)), static_power=1.0, alpha=2.0)
        cm = ModalCostModel.uniform(2)
        with pytest.raises(ConfigurationError, match="invalid mode"):
            power_frontier(chain_tree, pm, cm, {0: 3})

    def test_single_mode_degenerates_to_uniform(self, chain_tree):
        # M=1 is legal and must behave like the cost-only problem.
        pm = PowerModel(ModeSet((10,)), static_power=1.0, alpha=2.0)
        cm = ModalCostModel.uniform(1, create=0.1, delete=0.01)
        frontier = power_frontier(chain_tree, pm, cm)
        best = frontier.min_power()
        uniform = replica_update(
            chain_tree, 10, (), UniformCostModel(0.1, 0.01)
        )
        assert best.n_replicas == uniform.n_replicas

    def test_negative_costs_rejected_in_every_model(self):
        with pytest.raises(ConfigurationError):
            UniformCostModel(create=-0.1)
        with pytest.raises(ConfigurationError):
            ModalCostModel.uniform(2, delete=-1.0)


class TestRngMisuse:
    def test_generators_accept_ints_and_generators_only(self):
        from repro.tree.generators import paper_tree

        a = paper_tree(10, rng=5)
        b = paper_tree(10, rng=np.random.default_rng(5))
        assert a == b  # int seeds behave like fresh default_rng(seed)
