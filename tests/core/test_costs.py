"""Tests for :mod:`repro.core.costs` (Equations 2 and 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.exceptions import ConfigurationError


class TestUniformCostModel:
    def test_equation2(self):
        cm = UniformCostModel(create=0.1, delete=0.01)
        # R=5 servers, e=2 reused, E=4 pre-existing:
        # 5 + 3*0.1 + 2*0.01 = 5.32
        assert cm.total(5, 2, 4) == pytest.approx(5.32)

    def test_no_preexisting_reduces_to_count_plus_creates(self):
        cm = UniformCostModel(create=0.5, delete=0.2)
        assert cm.total(3, 0, 0) == pytest.approx(3 + 1.5)

    def test_of_placement(self):
        cm = UniformCostModel(0.1, 0.01)
        assert cm.of_placement({1, 2, 3}, {3, 4}) == pytest.approx(
            cm.total(3, 1, 2)
        )

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformCostModel(create=-1)
        with pytest.raises(ConfigurationError):
            UniformCostModel(delete=-0.5)

    def test_inconsistent_counts_rejected(self):
        cm = UniformCostModel()
        with pytest.raises(ConfigurationError):
            cm.total(2, 3, 5)  # more reused than servers
        with pytest.raises(ConfigurationError):
            cm.total(5, 3, 2)  # more reused than pre-existing

    def test_priority_condition(self):
        # Paper §2.1: create + 2*delete < 1 gives priority to min servers.
        assert UniformCostModel(0.1, 0.01).prioritizes_server_count()
        assert not UniformCostModel(0.9, 0.1).prioritizes_server_count()

    def test_two_for_one_exchange_matches_condition(self):
        # Replacing two reused servers by one new one is advantageous iff
        # create + 2*delete < 1 (the argument behind the condition).
        for create, delete in [(0.1, 0.01), (0.5, 0.3), (0.98, 0.0)]:
            cm = UniformCostModel(create, delete)
            keep_two = cm.total(2, 2, 2)
            one_new = cm.total(1, 0, 2)
            assert (one_new < keep_two) == cm.prioritizes_server_count()

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 20),
        st.integers(0, 20),
        st.integers(0, 20),
        st.floats(0, 2),
        st.floats(0, 2),
    )
    def test_monotone_in_new_servers(self, r, e, big_e, create, delete):
        e = min(e, r, big_e)
        cm = UniformCostModel(create, delete)
        # Adding one server without reuse never lowers the cost.
        assert cm.total(r + 1, e, max(big_e, e)) >= cm.total(r, e, max(big_e, e))


class TestModalCostModel:
    def test_uniform_builder(self):
        cm = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
        assert cm.n_modes == 2
        assert cm.create == (0.1, 0.1)
        assert cm.changed[0][0] == 0.0 and cm.changed[0][1] == 0.001

    def test_equation4(self):
        cm = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
        # 2 new at mode0, 1 new at mode1, 1 reused 1->0, 2 deleted at mode1:
        # R=4, creates 3*0.1, change 0.001, deletes 2*0.01
        cost = cm.total([2, 1], {(1, 0): 1}, [0, 2])
        assert cost == pytest.approx(4 + 0.3 + 0.001 + 0.02)

    def test_matrix_reused_counts(self):
        cm = ModalCostModel.uniform(2)
        as_map = cm.total([0, 0], {(0, 1): 2, (1, 1): 1}, [0, 0])
        as_matrix = cm.total([0, 0], [[0, 2], [0, 1]], [0, 0])
        assert as_map == pytest.approx(as_matrix)

    def test_of_modal_placement(self):
        cm = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
        cost = cm.of_modal_placement(
            {1: 0, 2: 1, 3: 1}, {2: 1, 4: 0}
        )  # 1,3 new; 2 kept at mode1; 4 deleted at mode0
        assert cost == pytest.approx(3 + 2 * 0.1 + 0.0 + 0.01)

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ConfigurationError, match="diagonal|free"):
            ModalCostModel(
                create=(0.1,), delete=(0.1,), changed=((0.5,),)
            )

    def test_shape_mismatches_rejected(self):
        with pytest.raises(ConfigurationError):
            ModalCostModel(create=(0.1, 0.1), delete=(0.1,), changed=((0.0,),))
        with pytest.raises(ConfigurationError):
            ModalCostModel(
                create=(0.1,), delete=(0.1,), changed=((0.0, 0.1),)
            )

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ModalCostModel.uniform(2, create=-0.1)

    def test_zero_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            ModalCostModel.uniform(0)

    def test_bad_count_vectors_rejected(self):
        cm = ModalCostModel.uniform(2)
        with pytest.raises(ConfigurationError):
            cm.total([1], {}, [0, 0])
        with pytest.raises(ConfigurationError):
            cm.total([1, 0], {(5, 0): 1}, [0, 0])

    def test_invalid_modes_in_placement_rejected(self):
        cm = ModalCostModel.uniform(2)
        with pytest.raises(ConfigurationError):
            cm.of_modal_placement({1: 5}, {})
        with pytest.raises(ConfigurationError):
            cm.of_modal_placement({}, {1: 7})
