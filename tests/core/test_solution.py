"""Tests for :mod:`repro.core.solution`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution import (
    PlacementResult,
    assign_clients,
    evaluate_placement,
    server_loads,
    verify_placement,
)
from repro.exceptions import InfeasibleError
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestServerLoads:
    def test_closest_policy_routing(self, chain_tree):
        # Replica on 1 absorbs its subtree (clients at 1 and 2); root client
        # remains unserved at the root.
        loads, unserved = server_loads(chain_tree, [1])
        assert loads == {1: 7}
        assert unserved == 2

    def test_root_replica_serves_everything(self, chain_tree):
        loads, unserved = server_loads(chain_tree, [0])
        assert loads == {0: 9} and unserved == 0

    def test_inner_replica_shields_outer(self, chain_tree):
        loads, unserved = server_loads(chain_tree, [0, 2])
        assert loads == {2: 4, 0: 5} and unserved == 0

    def test_replica_without_load(self, chain_tree):
        loads, _ = server_loads(chain_tree, [2, 1, 0])
        assert loads == {2: 4, 1: 3, 0: 2}

    def test_empty_replica_set(self, chain_tree):
        loads, unserved = server_loads(chain_tree, [])
        assert loads == {} and unserved == 9

    def test_no_clients_tree(self):
        t = Tree([None, 0])
        loads, unserved = server_loads(t, [0])
        assert loads == {0: 0} and unserved == 0


class TestAssignClients:
    def test_assignment_matches_closest_ancestor(self, chain_tree):
        # clients attached at nodes 0,1,2; replicas at {1}
        assert assign_clients(chain_tree, [1]) == [None, 1, 1]

    def test_self_node_counts_as_ancestor(self, chain_tree):
        assert assign_clients(chain_tree, [0, 2]) == [0, 0, 2]

    def test_unserved_marked_none(self, chain_tree):
        assert assign_clients(chain_tree, []) == [None, None, None]

    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=12), st.data())
    def test_assignment_consistent_with_loads(self, tree, data):
        replicas = data.draw(
            st.frozensets(st.integers(0, tree.n_nodes - 1), max_size=tree.n_nodes)
        )
        loads, unserved = server_loads(tree, replicas)
        assignment = assign_clients(tree, replicas)
        # Re-derive loads from the per-client assignment.
        derived: dict[int, int] = {v: 0 for v in replicas}
        missing = 0
        for client, server in zip(tree.clients, assignment, strict=True):
            if server is None:
                missing += client.requests
            else:
                derived[server] += client.requests
        assert missing == unserved
        assert {v: q for v, q in derived.items() if q or v in loads} == loads


class TestEvaluateVerify:
    def test_ok_placement(self, chain_tree):
        check = evaluate_placement(chain_tree, [0], 10)
        assert check.ok and check.violations == ()

    def test_overload_detected(self, chain_tree):
        check = evaluate_placement(chain_tree, [0], 5)
        assert not check.ok
        assert check.overloaded == (0,)
        assert "serves 9 > W=5" in check.violations[0]

    def test_unserved_detected(self, chain_tree):
        check = evaluate_placement(chain_tree, [1], 10)
        assert not check.ok and "unserved" in check.violations[0]

    def test_verify_raises_with_details(self, chain_tree):
        with pytest.raises(InfeasibleError, match="unserved"):
            verify_placement(chain_tree, [], 10)

    def test_verify_returns_loads(self, chain_tree):
        assert verify_placement(chain_tree, [0], 10) == {0: 9}


class TestPlacementResult:
    def test_from_replicas_bookkeeping(self, chain_tree):
        res = PlacementResult.from_replicas(
            chain_tree, [0, 2], 10, preexisting=[2, 1], cost=3.5
        )
        assert res.replicas == frozenset({0, 2})
        assert res.reused == frozenset({2})
        assert res.created == frozenset({0})
        assert res.deleted == frozenset({1})
        assert (res.n_replicas, res.n_reused, res.n_created, res.n_deleted) == (2, 1, 1, 1)
        assert res.cost == 3.5

    def test_from_replicas_validates(self, chain_tree):
        with pytest.raises(InfeasibleError):
            PlacementResult.from_replicas(chain_tree, [2], 10)
