"""Tests for :mod:`repro.core.exhaustive` (the brute-force oracles)."""

from __future__ import annotations

import pytest

from repro.core.costs import UniformCostModel
from repro.core.exhaustive import (
    exhaustive_min_cost,
    exhaustive_min_replicas,
    iter_valid_placements,
)
from repro.core.solution import evaluate_placement
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree


class TestIterValidPlacements:
    def test_all_yielded_placements_valid(self, chain_tree):
        for replicas, loads in iter_valid_placements(chain_tree, 10):
            check = evaluate_placement(chain_tree, replicas, 10)
            assert check.ok
            assert dict(check.loads) == loads

    def test_enumeration_covers_supersets(self, chain_tree):
        placements = [r for r, _ in iter_valid_placements(chain_tree, 10)]
        # {0} works, hence all supersets of {0} must appear too.
        assert frozenset({0}) in placements
        assert frozenset({0, 1, 2}) in placements
        # Exactly the subsets containing the root are valid here.
        assert len(placements) == 4

    def test_size_guard(self):
        big = paper_tree(30, rng=0)
        with pytest.raises(ConfigurationError, match="capped"):
            list(iter_valid_placements(big, 10))


class TestExhaustiveMinReplicas:
    def test_first_is_smallest(self, star5_tree):
        assert exhaustive_min_replicas(star5_tree, 10).n_replicas == 4

    def test_infeasible(self):
        t = Tree([None], [Client(0, 99)])
        with pytest.raises(InfeasibleError):
            exhaustive_min_replicas(t, 10)


class TestExhaustiveMinCost:
    def test_prefers_reuse(self, chain_tree):
        cm = UniformCostModel(0.5, 0.1)
        # Both {0} and {0,1,...} valid; with pre-existing {0} reuse is free-ish.
        res = exhaustive_min_cost(chain_tree, 10, preexisting=[0], cost_model=cm)
        assert res.replicas == {0}
        assert res.cost == pytest.approx(cm.total(1, 1, 1))

    def test_deletion_cost_matters(self):
        # delete > 1: cheaper to keep a redundant pre-existing server than
        # to delete it (the idle-server corner the DP also covers).
        t = Tree([None, 0], [Client(1, 4)])
        cm = UniformCostModel(create=0.0, delete=5.0)
        res = exhaustive_min_cost(t, 10, preexisting=[0, 1], cost_model=cm)
        assert res.replicas == {0, 1}

    def test_default_cost_model(self, chain_tree):
        res = exhaustive_min_cost(chain_tree, 10)
        assert res.cost is not None

    def test_infeasible(self):
        t = Tree([None], [Client(0, 99)])
        with pytest.raises(InfeasibleError):
            exhaustive_min_cost(t, 10)
