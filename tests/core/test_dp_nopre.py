"""Tests for :mod:`repro.core.dp_nopre` (classical MinCost-NoPre DP)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.dp_nopre import dp_min_replicas, dp_nopre_placement
from repro.core.exhaustive import exhaustive_min_replicas
from repro.core.solution import evaluate_placement
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestBasics:
    def test_no_clients(self):
        assert dp_nopre_placement(Tree([None, 0, 0]), 10).replicas == frozenset()

    def test_single_server_suffices(self, chain_tree):
        res = dp_nopre_placement(chain_tree, 10)
        assert res.n_replicas == 1
        assert evaluate_placement(chain_tree, res.replicas, 10).ok

    def test_star_overflow(self, star5_tree):
        assert dp_min_replicas(star5_tree, 10) == 4

    def test_exact_fill(self):
        # Two children with exactly W requests each: two replicas, not three.
        t = Tree([None, 0, 0], [Client(1, 10), Client(2, 10)])
        assert dp_min_replicas(t, 10) == 2

    def test_root_needed_for_own_client(self):
        t = Tree([None, 0], [Client(1, 10), Client(0, 1)])
        res = dp_nopre_placement(t, 10)
        assert res.replicas == {0, 1}


class TestErrors:
    def test_infeasible_direct_load(self):
        t = Tree([None, 0], [Client(1, 11)])
        with pytest.raises(InfeasibleError) as exc:
            dp_nopre_placement(t, 10)
        assert exc.value.node == 1

    def test_bad_capacity(self, chain_tree):
        with pytest.raises(ConfigurationError):
            dp_nopre_placement(chain_tree, 0)


class TestOptimality:
    @settings(max_examples=80, deadline=None)
    @given(small_trees(max_nodes=11, max_requests=6))
    def test_matches_exhaustive_count(self, tree):
        try:
            expected = exhaustive_min_replicas(tree, 8).n_replicas
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                dp_nopre_placement(tree, 8)
            return
        res = dp_nopre_placement(tree, 8)
        assert res.n_replicas == expected
        assert evaluate_placement(tree, res.replicas, 8).ok

    def test_paper_scale_validity(self, rng):
        tree = paper_tree(100, rng=rng)
        res = dp_nopre_placement(tree, 10)
        assert evaluate_placement(tree, res.replicas, 10).ok

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=6))
    def test_monotone_in_capacity(self, tree):
        assert dp_min_replicas(tree, 20) <= dp_min_replicas(tree, 10)
