"""Cross-validation: every MinCost solver must agree with the others.

This is the library's strongest correctness argument: four independent
implementations (greedy, classical DP, with-pre DP, exhaustive search) are
compared on randomized instances — any bug that breaks optimality in one of
them surfaces as a disagreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.costs import UniformCostModel
from repro.core.dp_nopre import dp_nopre_placement
from repro.core.dp_withpre import replica_update
from repro.core.exhaustive import exhaustive_min_replicas
from repro.core.greedy import greedy_placement
from repro.core.solution import evaluate_placement
from repro.exceptions import InfeasibleError
from repro.tree.generators import paper_tree, random_preexisting

from tests.conftest import small_trees

MINCOUNT = UniformCostModel(1e-4, 1e-5)


class TestReplicaCountAgreement:
    @settings(max_examples=100, deadline=None)
    @given(small_trees(max_nodes=11, max_requests=8))
    def test_greedy_dp_exhaustive_agree(self, tree):
        capacity = 9
        try:
            expected = exhaustive_min_replicas(tree, capacity).n_replicas
        except InfeasibleError:
            for solver in (
                lambda: greedy_placement(tree, capacity),
                lambda: dp_nopre_placement(tree, capacity),
                lambda: replica_update(tree, capacity, (), MINCOUNT),
            ):
                with pytest.raises(InfeasibleError):
                    solver()
            return
        assert greedy_placement(tree, capacity).n_replicas == expected
        assert dp_nopre_placement(tree, capacity).n_replicas == expected
        assert replica_update(tree, capacity, (), MINCOUNT).n_replicas == expected

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("children", [(6, 9), (2, 4)])
    def test_paper_scale_agreement(self, seed, children):
        tree = paper_tree(
            80, children_range=children, rng=np.random.default_rng(seed)
        )
        gr = greedy_placement(tree, 10)
        dp = dp_nopre_placement(tree, 10)
        dpw = replica_update(tree, 10, (), MINCOUNT)
        assert gr.n_replicas == dp.n_replicas == dpw.n_replicas


class TestWithPreDominatesGreedyReuse:
    @pytest.mark.parametrize("seed", range(5))
    def test_dp_reuse_at_least_greedy(self, seed):
        rng = np.random.default_rng(seed)
        tree = paper_tree(60, rng=rng)
        pre = random_preexisting(tree, 20, rng=rng)
        gr = greedy_placement(tree, 10, preexisting=pre)
        dp = replica_update(tree, 10, pre, MINCOUNT)
        assert dp.n_replicas == gr.n_replicas  # min count preserved
        assert dp.n_reused >= gr.n_reused  # optimal reuse dominates

    def test_everything_preexisting_fully_reused_count(self, rng):
        tree = paper_tree(50, rng=rng)
        pre = frozenset(range(50))
        dp = replica_update(tree, 10, pre, MINCOUNT)
        gr = greedy_placement(tree, 10, preexisting=pre)
        # With E = N every chosen server is a reused one.
        assert dp.n_reused == dp.n_replicas
        assert gr.n_reused == gr.n_replicas


class TestSolutionsRemainValid:
    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=6))
    def test_all_solvers_emit_valid_placements(self, tree):
        capacity = 10
        for result in (
            greedy_placement(tree, capacity),
            dp_nopre_placement(tree, capacity),
            replica_update(tree, capacity, (), MINCOUNT),
        ):
            check = evaluate_placement(tree, result.replicas, capacity)
            assert check.ok
            assert result.loads == check.loads
