"""Tests for :mod:`repro.core.greedy` (the GR baseline of [19])."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.greedy import greedy_min_replicas, greedy_placement
from repro.core.solution import evaluate_placement
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestBasics:
    def test_no_clients_no_replicas(self):
        res = greedy_placement(Tree([None, 0]), 10)
        assert res.replicas == frozenset()

    def test_single_client_root_serves(self):
        t = Tree([None], [Client(0, 5)])
        res = greedy_placement(t, 10)
        assert res.replicas == {0}
        assert res.loads == {0: 5}

    def test_overflow_places_at_heaviest_child(self, star5_tree):
        # 5 children with 4 requests each = 20 > 10: two children absorbed,
        # root takes the rest.
        res = greedy_placement(star5_tree, 10)
        assert res.n_replicas == 4
        check = evaluate_placement(star5_tree, res.replicas, 10)
        assert check.ok

    def test_exact_capacity_no_extra_server(self):
        t = Tree([None, 0], [Client(1, 10)])
        res = greedy_placement(t, 10)
        assert res.n_replicas == 1

    def test_result_is_valid_placement(self, rng):
        tree = paper_tree(60, rng=rng)
        res = greedy_placement(tree, 10)
        assert evaluate_placement(tree, res.replicas, 10).ok

    def test_min_replicas_helper(self, star5_tree):
        assert greedy_min_replicas(star5_tree, 10) == 4


class TestInfeasibility:
    def test_heavy_direct_load_raises(self):
        t = Tree([None, 0], [Client(1, 11)])
        with pytest.raises(InfeasibleError) as exc:
            greedy_placement(t, 10)
        assert exc.value.node == 1

    def test_heavy_root_client_raises(self):
        t = Tree([None], [Client(0, 20)])
        with pytest.raises(InfeasibleError):
            greedy_placement(t, 10)

    def test_bad_capacity(self, chain_tree):
        with pytest.raises(ConfigurationError):
            greedy_placement(chain_tree, 0)

    def test_bad_tie_break(self, chain_tree):
        with pytest.raises(ConfigurationError):
            greedy_placement(chain_tree, 10, tie_break="bogus")


class TestTieBreaks:
    def _tie_tree(self):
        # Root with two children of equal flow 6; total 12 > 10 forces one
        # placement among tied candidates.
        return Tree([None, 0, 0], [Client(1, 6), Client(2, 6)])

    def test_index_tie_break_deterministic(self):
        t = self._tie_tree()
        res = greedy_placement(t, 10, tie_break="index")
        assert 1 in res.replicas  # smallest id among tied {1, 2}

    def test_prefer_preexisting_tie_break(self):
        t = self._tie_tree()
        res = greedy_placement(
            t, 10, preexisting=[2], tie_break="prefer_preexisting"
        )
        assert 2 in res.replicas

    def test_prefer_preexisting_falls_back_to_index(self):
        t = self._tie_tree()
        res = greedy_placement(
            t, 10, preexisting=[], tie_break="prefer_preexisting"
        )
        assert 1 in res.replicas

    def test_random_tie_break_reproducible(self):
        t = self._tie_tree()
        a = greedy_placement(t, 10, tie_break="random", rng=np.random.default_rng(0))
        b = greedy_placement(t, 10, tie_break="random", rng=np.random.default_rng(0))
        assert a.replicas == b.replicas

    def test_tie_break_never_changes_count(self, rng):
        tree = paper_tree(80, rng=rng)
        pre = frozenset(range(0, 80, 7))
        counts = {
            greedy_placement(tree, 10, preexisting=pre, tie_break=tb).n_replicas
            for tb in ("index", "prefer_preexisting", "random")
        }
        assert len(counts) == 1


class TestBookkeeping:
    def test_reuse_accounting(self):
        t = Tree([None, 0], [Client(1, 8), Client(0, 8)])
        res = greedy_placement(t, 10, preexisting=[1, 0])
        assert res.reused == res.replicas & {0, 1}
        assert res.deleted == frozenset({0, 1}) - res.replicas


class TestPropertyValidity:
    @settings(max_examples=80, deadline=None)
    @given(small_trees(max_nodes=14, max_requests=9))
    def test_always_valid_or_infeasible(self, tree):
        try:
            res = greedy_placement(tree, 10)
        except InfeasibleError:
            # Must be a genuinely infeasible instance.
            assert int(tree.client_loads.max()) > 10
            return
        assert evaluate_placement(tree, res.replicas, 10).ok

    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=6))
    def test_monotone_in_capacity(self, tree):
        # A larger capacity never needs more replicas.
        r10 = greedy_placement(tree, 10).n_replicas
        r20 = greedy_placement(tree, 20).n_replicas
        assert r20 <= r10
