"""Tests for :mod:`repro.core.dp_withpre` (Theorem 1's algorithm)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.core.exhaustive import exhaustive_min_cost
from repro.core.solution import evaluate_placement
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Client, Tree

from tests.conftest import trees_with_preexisting

MINCOUNT = UniformCostModel(1e-4, 1e-5)  # server count strictly dominant


class TestBasics:
    def test_no_clients_deletes_everything(self):
        t = Tree([None, 0, 0])
        res = replica_update(t, 10, preexisting=[1, 2])
        assert res.replicas == frozenset()
        assert res.deleted == {1, 2}
        assert res.cost == pytest.approx(2 * 0.01)

    def test_reuses_preexisting_root(self, chain_tree):
        res = replica_update(chain_tree, 10, preexisting=[0])
        assert res.replicas == {0}
        assert res.n_reused == 1
        assert res.cost == pytest.approx(1.0)

    def test_prefers_reuse_over_equivalent_new(self):
        # Total 12 > W=11 forces two servers: root plus either child.  The
        # pre-existing child (2) must win the tie on cost.
        t = Tree([None, 0, 0], [Client(1, 5), Client(2, 5), Client(0, 2)])
        res = replica_update(
            t, 11, preexisting=[2], cost_model=UniformCostModel(0.1, 0.01)
        )
        assert res.replicas == {0, 2}
        assert res.n_reused == 1
        assert res.cost == pytest.approx(2 + 0.1)

    def test_extra_payload(self, chain_tree):
        res = replica_update(chain_tree, 10, preexisting=[0])
        choice = res.extra["root_choice"]
        assert choice.root_replica in (True, False)

    def test_cost_matches_cost_model(self, rng):
        tree = paper_tree(40, rng=rng)
        pre = random_preexisting(tree, 10, rng=rng)
        cm = UniformCostModel(0.3, 0.07)
        res = replica_update(tree, 10, pre, cm)
        assert res.cost == pytest.approx(
            cm.total(res.n_replicas, res.n_reused, len(pre))
        )

    def test_validity_at_paper_scale(self, rng):
        tree = paper_tree(100, rng=rng)
        pre = random_preexisting(tree, 50, rng=rng)
        res = replica_update(tree, 10, pre, MINCOUNT)
        assert evaluate_placement(tree, res.replicas, 10).ok


class TestFigure1TradeOff:
    """The paper's §3.1 running example, both branches."""

    def _tree(self, root_requests: int) -> Tree:
        return Tree(
            [None, 0, 1, 1],
            [Client(0, root_requests), Client(2, 4), Client(3, 7)],
        )

    def test_two_root_requests_keep_b(self):
        res = replica_update(
            self._tree(2), 10, preexisting=[2], cost_model=UniformCostModel(0.1, 0.01)
        )
        assert res.replicas == {0, 2}  # keep B, root serves 7+2
        assert res.n_reused == 1

    def test_four_root_requests_drop_b(self):
        res = replica_update(
            self._tree(4), 10, preexisting=[2], cost_model=UniformCostModel(0.1, 0.01)
        )
        assert res.replicas == {0, 3}  # new server on C, delete B
        assert res.n_reused == 0


class TestIdleServerCorner:
    def test_expensive_deletion_keeps_idle_root(self):
        # delete > 1: keeping the pre-existing root as an idle server beats
        # paying the deletion charge (module docstring's exactness note).
        t = Tree([None, 0], [Client(1, 4)])
        cm = UniformCostModel(create=0.0, delete=5.0)
        res = replica_update(t, 10, preexisting=[0, 1], cost_model=cm)
        assert res.replicas == {0, 1}
        assert res.cost == pytest.approx(2.0)

    def test_cheap_deletion_uses_single_server(self):
        # {0} and {1} tie at cost 1.01; either way one reused server wins
        # over keeping both (cost 2.0).
        t = Tree([None, 0], [Client(1, 4)])
        cm = UniformCostModel(create=0.0, delete=0.01)
        res = replica_update(t, 10, preexisting=[0, 1], cost_model=cm)
        assert res.n_replicas == 1
        assert res.n_reused == 1
        assert res.cost == pytest.approx(1.01)


class TestErrors:
    def test_infeasible(self):
        t = Tree([None, 0], [Client(1, 11)])
        with pytest.raises(InfeasibleError):
            replica_update(t, 10)

    def test_bad_capacity(self, chain_tree):
        with pytest.raises(ConfigurationError):
            replica_update(chain_tree, 0)

    def test_bad_preexisting(self, chain_tree):
        with pytest.raises(ConfigurationError):
            replica_update(chain_tree, 10, preexisting=[99])


class TestOptimalityAgainstOracle:
    @settings(max_examples=70, deadline=None)
    @given(trees_with_preexisting(max_nodes=9, max_requests=6))
    def test_min_cost_matches_exhaustive(self, tree_pre):
        tree, pre = tree_pre
        cm = UniformCostModel(0.1, 0.01)
        try:
            expected = exhaustive_min_cost(tree, 8, pre, cm)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                replica_update(tree, 8, pre, cm)
            return
        got = replica_update(tree, 8, pre, cm)
        assert got.cost == pytest.approx(expected.cost)
        assert evaluate_placement(tree, got.replicas, 8).ok

    @settings(max_examples=40, deadline=None)
    @given(
        trees_with_preexisting(max_nodes=9, max_requests=6),
        st.floats(0.0, 2.0),
        st.floats(0.0, 2.0),
    )
    def test_min_cost_matches_exhaustive_arbitrary_prices(
        self, tree_pre, create, delete
    ):
        tree, pre = tree_pre
        cm = UniformCostModel(create, delete)
        try:
            expected = exhaustive_min_cost(tree, 8, pre, cm)
        except InfeasibleError:
            return
        got = replica_update(tree, 8, pre, cm)
        assert got.cost == pytest.approx(expected.cost)
