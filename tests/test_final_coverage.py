"""Last-mile coverage: cross-cutting behaviours not pinned elsewhere."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.dynamics.migration import StepKind, plan_migration
from repro.experiments import (
    Exp2Config,
    Exp3Config,
    run_experiment2,
    run_experiment2_parallel,
    run_experiment3,
    run_experiment3_parallel,
)
from repro.power.exhaustive_power import exhaustive_power_frontier
from repro.power.greedy_power import greedy_power_candidates
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestParallelSequentialEquivalence:
    """A single-worker parallel run is the sequential run, exactly."""

    def test_exp2(self):
        cfg = Exp2Config(n_trees=2, n_nodes=20, n_steps=3, seed=13)
        seq = run_experiment2(cfg)
        par = run_experiment2_parallel(cfg, n_workers=1)
        assert [s.mean for s in par.dp_cumulative] == pytest.approx(
            [s.mean for s in seq.dp_cumulative]
        )
        assert par.gap_histogram == pytest.approx(seq.gap_histogram)

    def test_exp3(self):
        cfg = Exp3Config(n_trees=2, n_nodes=15, cost_bounds=(10.0, 30.0), seed=13)
        seq = run_experiment3(cfg)
        par = run_experiment3_parallel(cfg, n_workers=1)
        assert par.rows() == pytest.approx(seq.rows())


class TestThreeModeGreedyPower:
    PM = PowerModel(ModeSet((3, 6, 10)), static_power=2.0, alpha=2.0)
    CM = ModalCostModel.uniform(3, create=0.1, delete=0.01, changed=0.001)

    def test_sweep_covers_all_capacities(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, self.PM, self.CM)
        assert len(cands.candidates) >= 1
        # Every candidate's modes are valid for a 3-mode set.
        for c in cands.candidates:
            assert all(0 <= m <= 2 for m in c.server_modes.values())

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=7, max_requests=5))
    def test_never_beats_exhaustive_three_modes(self, tree):
        from repro.exceptions import InfeasibleError

        try:
            frontier = exhaustive_power_frontier(tree, self.PM, self.CM)
        except InfeasibleError:
            return
        for cost, power in greedy_power_candidates(tree, self.PM, self.CM).pairs():
            assert any(
                fc <= cost + 1e-6 and fp <= power + 1e-6 for fc, fp in frontier
            )


class TestMigrationPlanProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.frozensets(st.integers(0, 12)),
        st.frozensets(st.integers(0, 12)),
    )
    def test_step_partition(self, old, new):
        plan = plan_migration(old, new)
        nodes_touched = {s.node for s in plan.steps}
        assert nodes_touched == old | new
        assert {s.node for s in plan.by_kind(StepKind.CREATE)} == new - old
        assert {s.node for s in plan.by_kind(StepKind.DELETE)} == old - new

    @settings(max_examples=50, deadline=None)
    @given(
        st.frozensets(st.integers(0, 12)),
        st.frozensets(st.integers(0, 12)),
    )
    def test_make_before_break_ordering(self, old, new):
        plan = plan_migration(old, new)
        kinds = [s.kind for s in plan.steps]
        if StepKind.CREATE in kinds and StepKind.DELETE in kinds:
            last_create = max(i for i, k in enumerate(kinds) if k is StepKind.CREATE)
            first_delete = min(i for i, k in enumerate(kinds) if k is StepKind.DELETE)
            assert last_create < first_delete

    def test_zero_cost_for_identity(self):
        cm = UniformCostModel(0.5, 0.5)
        plan = plan_migration({1, 2}, {1, 2})
        assert plan.cost(cm) == pytest.approx(2.0)  # operating cost only


class TestCliEdges:
    def test_scaling_command(self, capsys, monkeypatch):
        from repro.cli import main
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod,
            "run_scaling",
            lambda: __import__("repro.experiments", fromlist=["run_scaling"]).run_scaling(
                cost_sizes=((15, 3),), power_nopre_sizes=(), power_withpre_sizes=()
            ),
        )
        assert main(["scaling"]) == 0
        assert "regime" in capsys.readouterr().out

    def test_generate_preset(self, capsys):
        from repro.cli import main

        assert main(["generate", "--preset", "fig8", "--seed", "1"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert len(data["parents"]) == 50

    def test_power_empty_preexisting_string(self, tmp_path, capsys):
        from repro.cli import main
        from repro.tree.serialize import tree_to_json

        t = Tree([None, 0], [Client(1, 4)])
        p = tmp_path / "t.json"
        p.write_text(tree_to_json(t))
        assert main(["power", str(p), "--preexisting", ""]) == 0
