"""Tests for :mod:`repro.policies` (Upwards / Multiple extension).

The key cross-policy invariant (Benoit–Rehn-Sonigo–Robert 2008):

    min_replicas(Multiple) <= min_replicas(Upwards) <= min_replicas(Closest)

because every Closest assignment is a valid Upwards assignment, and every
Upwards assignment is a valid Multiple assignment.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.exhaustive import exhaustive_min_replicas, iter_valid_placements
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.policies import (
    multiple_feasible,
    multiple_min_replicas,
    multiple_placement,
    upwards_feasible,
    upwards_first_fit,
    upwards_min_replicas_exhaustive,
)
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestMultipleFeasible:
    def test_splitting_allows_what_closest_cannot(self):
        # 12 requests at one node, W=10: closest needs... it's infeasible
        # (one server would carry 12); Multiple splits 10/2 across node+root.
        t = Tree([None, 0], [Client(1, 12)])
        ok, loads = multiple_feasible(t, [0, 1], 10)
        assert ok
        assert loads == {1: 10, 0: 2}

    def test_infeasible_without_enough_ancestors(self):
        t = Tree([None], [Client(0, 12)])
        ok, _ = multiple_feasible(t, [0], 10)
        assert not ok

    def test_empty_set(self, chain_tree):
        ok, loads = multiple_feasible(chain_tree, [], 10)
        assert not ok and loads == {}

    def test_capacity_validation(self, chain_tree):
        with pytest.raises(ConfigurationError):
            multiple_feasible(chain_tree, [0], 0)


class TestMultiplePlacement:
    def test_greedy_would_fail_dp_succeeds(self):
        # W=10, child flows 6+6: saturating the root strands 2 requests;
        # the optimum is {child, root}.
        t = Tree([None, 0, 0], [Client(1, 6), Client(2, 6)])
        res = multiple_placement(t, 10)
        assert res.n_replicas == 2
        ok, _ = multiple_feasible(t, res.replicas, 10)
        assert ok

    def test_splitting_beats_closest(self):
        t = Tree([None, 0], [Client(1, 12), Client(0, 3)])
        res = multiple_placement(t, 10)
        assert res.n_replicas == 2  # 15 requests / W=10 -> 2 servers suffice

    def test_no_clients(self):
        res = multiple_placement(Tree([None, 0]), 10)
        assert res.replicas == frozenset()

    def test_infeasible_path(self):
        # 25 requests on a 2-node path: max absorbable is 2W = 20.
        t = Tree([None, 0], [Client(1, 25)])
        with pytest.raises(InfeasibleError):
            multiple_placement(t, 10)

    @settings(max_examples=70, deadline=None)
    @given(small_trees(max_nodes=9, max_requests=8))
    def test_matches_bruteforce_minimum(self, tree):
        capacity = 7
        from itertools import combinations

        best = None
        for size in range(tree.n_nodes + 1):
            for combo in combinations(range(tree.n_nodes), size):
                if multiple_feasible(tree, combo, capacity)[0]:
                    best = size
                    break
            if best is not None:
                break
        if best is None:
            with pytest.raises(InfeasibleError):
                multiple_placement(tree, capacity)
            return
        assert multiple_min_replicas(tree, capacity) == best


class TestUpwards:
    def test_non_closest_assignment_found(self):
        # Client at node 1 (7 requests) and at node 0 (7): closest needs a
        # server on both; Upwards with {0, 1} also works but {0} alone
        # cannot hold 14.
        t = Tree([None, 0], [Client(1, 7), Client(0, 7)])
        ok, loads = upwards_feasible(t, [0, 1], 10)
        assert ok and sum(loads.values()) == 14

    def test_backtracking_beats_first_fit(self):
        # Two replicas of capacity 10; clients 6, 5, 5, 4 all sharing both
        # ancestors.  FFD assigns 6+5 greedily... order matters; construct
        # a case where FFD fails but exact search succeeds: items 6,5,5,4
        # into bins 10,10: exact packs (6,4)+(5,5); FFD packs 6.. then 5
        # into bin1? 6+5>10 -> bin2; 5 -> bin2 full; 4 -> bin1 -> ok.
        # Use items 3,3,2,2,2 into bins 6,6 with FFD succeeding; instead
        # force failure with items 4,4,4 into bins 6,6: exact fails too.
        # Classic FFD failure: items 6,5,5,4,4 bins 12,12: FFD: 6+5=11,
        # 5+4=9, 4->11+... let's just assert exact >= FFD soundness below.
        t = Tree([None, 0], [Client(1, 6), Client(1, 5), Client(1, 5), Client(1, 4)])
        ok_exact, _ = upwards_feasible(t, [0, 1], 10)
        assert ok_exact

    def test_first_fit_sound(self):
        t = Tree([None, 0], [Client(1, 6), Client(1, 4)])
        ok, loads = upwards_first_fit(t, [1], 10)
        assert ok and loads == {1: 10}

    def test_unserved_client_infeasible(self):
        t = Tree([None, 0], [Client(0, 2), Client(1, 2)])
        ok, _ = upwards_feasible(t, [1], 10)
        assert not ok  # the root client has no ancestor replica

    def test_client_guard(self):
        t = Tree([None], [Client(0, 1) for _ in range(17)])
        with pytest.raises(ConfigurationError, match="capped"):
            upwards_feasible(t, [0], 99)

    def test_exhaustive_min(self):
        t = Tree([None, 0], [Client(1, 7), Client(0, 7)])
        res = upwards_min_replicas_exhaustive(t, 10)
        assert res.n_replicas == 2

    def test_exhaustive_infeasible(self):
        t = Tree([None], [Client(0, 12)])
        with pytest.raises(InfeasibleError):
            upwards_min_replicas_exhaustive(t, 10)

    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=7, max_requests=6, client_prob=0.6))
    def test_first_fit_never_beats_exact(self, tree):
        if tree.n_clients > 10:
            return
        for replicas, _ in iter_valid_placements(tree, 10):
            ff_ok, _ = upwards_first_fit(tree, replicas, 10)
            if ff_ok:
                exact_ok, _ = upwards_feasible(tree, replicas, 10)
                assert exact_ok  # FFD success is a certificate
            break  # one placement per tree keeps the test fast


class TestPolicyHierarchy:
    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=7, max_requests=6, client_prob=0.6))
    def test_multiple_le_upwards_le_closest(self, tree):
        if tree.n_clients > 10:
            return
        capacity = 8
        try:
            closest = exhaustive_min_replicas(tree, capacity).n_replicas
        except InfeasibleError:
            closest = None
        try:
            upwards = upwards_min_replicas_exhaustive(tree, capacity).n_replicas
        except InfeasibleError:
            upwards = None
        try:
            multiple = multiple_min_replicas(tree, capacity)
        except InfeasibleError:
            multiple = None
        if closest is not None:
            assert upwards is not None and upwards <= closest
        if upwards is not None:
            assert multiple is not None and multiple <= upwards

    def test_strict_separation_example(self):
        # Closest infeasible (12 > W at one node), Upwards infeasible too
        # (single client cannot split), Multiple feasible with 2 servers.
        t = Tree([None, 0], [Client(1, 12)])
        with pytest.raises(InfeasibleError):
            exhaustive_min_replicas(t, 10)
        with pytest.raises(InfeasibleError):
            upwards_min_replicas_exhaustive(t, 10)
        assert multiple_min_replicas(t, 10) == 2
