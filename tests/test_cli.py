"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.tree.serialize import tree_to_json
from repro.tree.generators import paper_tree


@pytest.fixture()
def tree_file(tmp_path):
    path = tmp_path / "tree.json"
    path.write_text(tree_to_json(paper_tree(25, rng=3)))
    return str(path)


class TestGenerate:
    def test_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["generate", "--nodes", "12", "--seed", "1", "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert len(data["parents"]) == 12

    def test_stdout_output(self, capsys):
        assert main(["generate", "--nodes", "5", "--seed", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 1


class TestSolve:
    def test_dp_solve(self, tree_file, capsys):
        assert main(["solve", tree_file, "--capacity", "10"]) == 0
        out = capsys.readouterr().out
        assert "replicas" in out and "cost=" in out

    def test_greedy_solve_with_preexisting(self, tree_file, capsys):
        assert (
            main(
                [
                    "solve", tree_file, "--algorithm", "greedy",
                    "--preexisting", "1,2,3",
                ]
            )
            == 0
        )
        assert "reused=" in capsys.readouterr().out

    def test_random_preexisting(self, tree_file, capsys):
        assert (
            main(["solve", tree_file, "--random-preexisting", "5", "--seed", "1"]) == 0
        )

    def test_show_renders_tree(self, tree_file, capsys):
        assert main(["solve", tree_file, "--show"]) == 0
        out = capsys.readouterr().out
        assert "n0" in out and "[R]" in out

    def test_plan_prints_migration(self, tree_file, capsys):
        assert main(["solve", tree_file, "--preexisting", "0,1", "--plan"]) == 0
        out = capsys.readouterr().out
        assert "server on node" in out

    def test_infeasible_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": 1, "parents": [None], "clients": [[0, 99]]})
        )
        assert main(["solve", str(path), "--capacity", "10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPower:
    def test_frontier_table(self, tree_file, capsys):
        assert main(["power", tree_file]) == 0
        out = capsys.readouterr().out
        assert "cost" in out and "power" in out

    def test_bound_query(self, tree_file, capsys):
        assert main(["power", tree_file, "--bound", "50"]) == 0
        assert "bound 50.0" in capsys.readouterr().out

    def test_preexisting_modes_parsed(self, tree_file, capsys):
        assert main(["power", tree_file, "--preexisting", "1:1,2:0"]) == 0


class TestExperiments:
    def test_exp1_small(self, capsys, monkeypatch, tmp_path):
        import repro.cli as cli_mod
        from repro.experiments import Exp1Config

        # Shrink the workload for test speed.
        monkeypatch.setattr(
            cli_mod,
            "Exp1Config",
            lambda n_trees, **kw: Exp1Config(
                n_trees=n_trees, n_nodes=25, e_values=(0, 10), **kw
            ),
        )
        csv_path = tmp_path / "out.csv"
        assert main(["exp1", "--trees", "2", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "mean gap" in out
        assert csv_path.read_text().startswith("E,")

    def test_exp3_small(self, capsys, monkeypatch):
        import repro.cli as cli_mod
        from repro.experiments import Exp3Config

        monkeypatch.setattr(
            cli_mod,
            "Exp3Config",
            lambda n_trees, **kw: Exp3Config(
                n_trees=n_trees, n_nodes=20,
                cost_bounds=(10.0, 20.0, 40.0), **kw
            ),
        )
        assert main(["exp3", "--trees", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "peak GR-over-DP" in out


class TestBatch:
    def test_demo_batch(self, capsys):
        assert (
            main(
                [
                    "batch", "--demo", "6", "--duplicate-rate", "0.5",
                    "--nodes", "20", "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "digest" in out
        assert "unique_solved=3" in out
        assert "duplicates_folded=3" in out

    def test_batch_file_with_cache_dir(self, tmp_path, capsys):
        import numpy as np

        from repro.batch import batch_to_json, random_batch

        path = tmp_path / "batch.json"
        path.write_text(
            batch_to_json(
                random_batch(
                    4, duplicate_rate=0.5, n_nodes=15,
                    rng=np.random.default_rng(2),
                )
            )
        )
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", str(path), "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "unique_solved=2" in first
        # Second run is served entirely from the persistent store.
        assert main(["batch", str(path), "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "unique_solved=0" in second and "hit_rate=1.00" in second

    def test_batch_greedy_solver(self, capsys):
        assert (
            main(
                [
                    "batch", "--demo", "3", "--nodes", "15", "--seed", "4",
                    "--solver", "greedy", "--duplicate-rate", "0.0",
                ]
            )
            == 0
        )
        assert "unique_solved=3" in capsys.readouterr().out

    def test_batch_power_solvers(self, capsys):
        for solver, column in (
            ("min_power", "power"),
            ("power_frontier", "points"),
            ("greedy_power", "cands"),
        ):
            assert (
                main(
                    [
                        "batch", "--demo", "6", "--duplicate-rate", "0.5",
                        "--nodes", "20", "--seed", "1", "--solver", solver,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert column in out
            assert "unique_solved=3" in out
            assert "duplicates_folded=3" in out

    def test_batch_stats_reports_per_kernel_counters(self, capsys, monkeypatch):
        # --kernel writes the env override; seed it through monkeypatch
        # so the mutation is rolled back after the test.
        monkeypatch.setenv("REPRO_POWER_KERNEL", "array")
        outputs = {}
        for kernel in ("array", "tuple"):
            assert (
                main(
                    [
                        "batch", "--demo", "4", "--duplicate-rate", "0.5",
                        "--nodes", "20", "--seed", "7",
                        "--solver", "min_power", "--stats",
                        "--kernel", kernel,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            stats = json.loads(out[out.index("{"):])
            assert stats["kernel_solves"] == {kernel: stats["kernel_records"]}
            outputs[kernel] = stats
        # Same workload, different engine: identical dominance structure.
        for field in ("merges", "labels_created", "labels_kept"):
            assert outputs["array"][field] == outputs["tuple"][field]

    def test_batch_disk_size_flag(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert (
            main(
                [
                    "batch", "--demo", "4", "--duplicate-rate", "0.0",
                    "--nodes", "15", "--seed", "2",
                    "--cache-dir", cache_dir, "--disk-size", "2",
                ]
            )
            == 0
        )
        shards = list((tmp_path / "cache").glob("batch-cache.*.jsonl"))
        stored_lines = sum(
            1
            for p in shards
            for line in p.read_text().splitlines()
            if line.strip()
        )
        assert stored_lines == 2  # budget enforced on disk

    def test_batch_malformed_modes_is_clean_error(self, capsys):
        assert (
            main(
                [
                    "batch", "--demo", "3", "--solver", "min_power",
                    "--modes", "5,", "--seed", "1",
                ]
            )
            == 2
        )
        assert "invalid --modes" in capsys.readouterr().err

    def test_batch_requires_input(self, capsys):
        assert main(["batch"]) == 2
        assert "batch file or --demo" in capsys.readouterr().err

    def test_batch_file_and_demo_conflict(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        path.write_text("{}")
        assert main(["batch", str(path), "--demo", "3"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestBatchBoundSweep:
    def test_bound_sweep_from_cached_frontier(self, capsys):
        assert (
            main(
                [
                    "batch", "--demo", "4", "--duplicate-rate", "0.5",
                    "--nodes", "16", "--seed", "5",
                    "--solver", "power_frontier", "--bound", "5,40,1e9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bound" in out
        # One sweep row per (instance, bound) pair.
        assert out.count("1000000000.000") == 4
        # The sweep reads cached frontier records; no extra solves.
        assert "unique_solved=2" in out

    def test_bound_requires_frontier_solver(self, capsys):
        assert (
            main(["batch", "--demo", "2", "--seed", "1", "--bound", "40"]) == 2
        )
        assert "power_frontier" in capsys.readouterr().err

    def test_malformed_bound_is_clean_error(self, capsys):
        assert (
            main(
                [
                    "batch", "--demo", "2", "--seed", "1",
                    "--solver", "power_frontier", "--bound", "40,x",
                ]
            )
            == 2
        )
        assert "invalid --bound" in capsys.readouterr().err


class TestServeClientErrors:
    def test_client_connection_refused_is_clean_error(self, capsys):
        # An unused port: bind-and-release to find one nothing listens on.
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        assert main(["client", "--port", str(port), "--stats"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_port_in_use_is_clean_error(self, capsys):
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            s.listen(1)
            port = s.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeClientCLI:
    """End-to-end over real processes: boots `repro serve`, drives it
    with `repro client`, asserts coalescing stats and clean shutdown
    (the same loop the serve-smoke CI job runs)."""

    def test_serve_client_roundtrip(self):
        import os
        import subprocess
        import sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        env = {
            **os.environ,
            "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", ""),
        }
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = server.stdout.readline().strip()
            assert banner.startswith("serving on ")
            port = banner.rsplit(":", 1)[1]
            client = subprocess.run(
                [
                    sys.executable, "-m", "repro", "client", "--port", port,
                    "--demo", "12", "--duplicate-rate", "0.75",
                    "--nodes", "20", "--seed", "3",
                    "--stats", "--shutdown",
                ],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert client.returncode == 0, client.stderr
            out = client.stdout
            assert "instances=12" in out
            stats = json.loads(out[out.index("{") : out.rindex("}") + 1])
            dp = stats["policies"]["dp"]
            assert dp["requests"] == 12
            assert dp["solves_scheduled"] < 12
            assert (
                dp["solves_scheduled"]
                + dp["coalesced_joins"]
                + dp["cache_hits"]
                == 12
            )
            server.wait(timeout=30)
            assert "server stopped" in server.stdout.read()
        finally:
            if server.poll() is None:  # pragma: no cover - cleanup path
                server.kill()
