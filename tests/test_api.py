"""Public API surface tests."""

from __future__ import annotations

import importlib

import pytest


class TestTopLevelExports:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.7.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.tree",
            "repro.core",
            "repro.power",
            "repro.dynamics",
            "repro.experiments",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, f"{module}.{name}"

    def test_exception_hierarchy(self):
        from repro import (
            ConfigurationError,
            InfeasibleError,
            ReproError,
            SolverError,
            TreeStructureError,
            WorkloadError,
        )

        for exc in (
            ConfigurationError,
            InfeasibleError,
            SolverError,
            TreeStructureError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_module_docstring_quickstart_runs(self):
        # The doctest-style snippet in the package docstring must stay true.
        import numpy as np

        from repro import greedy_placement, paper_tree, replica_update

        tree = paper_tree(n_nodes=30, rng=np.random.default_rng(0))
        gr = greedy_placement(tree, capacity=10)
        dp = replica_update(tree, capacity=10, preexisting=set(gr.replicas))
        assert dp.n_replicas == gr.n_replicas
