"""Shared fixtures and hypothesis strategies.

The central strategy, :func:`small_trees`, draws arbitrary rooted trees
(every node picks a parent with a smaller id, so all shapes are reachable)
with Bernoulli clients — the same family the randomized cross-validation
suites use to compare solvers against the exhaustive oracles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.tree.model import Client, Tree

# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def small_trees(
    draw,
    max_nodes: int = 10,
    max_requests: int = 6,
    client_prob: float = 0.7,
    min_nodes: int = 1,
):
    """Arbitrary rooted tree with random clients (hypothesis strategy)."""
    n = draw(st.integers(min_nodes, max_nodes))
    parents: list[int | None] = [None]
    for v in range(1, n):
        parents.append(draw(st.integers(0, v - 1)))
    clients = []
    for v in range(n):
        if draw(st.floats(0, 1)) < client_prob:
            clients.append(Client(v, draw(st.integers(1, max_requests))))
    return Tree(parents, clients)


@st.composite
def trees_with_preexisting(draw, max_nodes: int = 10, max_requests: int = 6):
    """(tree, preexisting frozenset) pairs."""
    tree = draw(small_trees(max_nodes=max_nodes, max_requests=max_requests))
    pre = draw(
        st.frozensets(st.integers(0, tree.n_nodes - 1), max_size=tree.n_nodes)
    )
    return tree, pre


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def chain_tree() -> Tree:
    """r -> a -> b with one client per node (loads 2, 3, 4)."""
    return Tree([None, 0, 1], [Client(0, 2), Client(1, 3), Client(2, 4)])


@pytest.fixture()
def star5_tree() -> Tree:
    """Root plus 5 children, each child carrying a 4-request client."""
    parents = [None] + [0] * 5
    clients = [Client(v, 4) for v in range(1, 6)]
    return Tree(parents, clients)
