"""Property-based equivalence: the server is transparent to results.

Two invariants over randomized trees, policies and relabellings:

1. whatever the routing (cache hit, coalesced join, scheduled solve),
   a server response byte-matches the direct :func:`repro.batch
   .solve_batch` answer for the same instance;
2. coalescing never changes a verified placement/frontier — all waiters
   on one canonical solve receive results that agree with their own
   per-instance direct solves.

Runs on the in-process :meth:`BatchServer.submit` entry so each example
costs one event loop, no sockets.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.batch import BatchInstance, get_policy, relabel_tree, solve_batch
from repro.power.modes import ModeSet, PowerModel
from repro.serve import BatchServer
from repro.tree.generators import paper_tree, random_preexisting

_SOLVERS = ("dp", "greedy", "dp_nopre", "min_power", "power_frontier", "greedy_power")

_settings = settings(max_examples=20, deadline=None)


def _wire(solver: str, result) -> str:
    return json.dumps(get_policy(solver).result_to_wire(result), sort_keys=True)


def _random_instances(seed: int, n_nodes: int, n_duplicates: int):
    """One random instance plus relabelled isomorphic duplicates.

    Every instance carries a power model so a drawn policy can always
    serve it (MinCost policies simply ignore the power fields).
    """
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    pre = random_preexisting(tree, min(4, n_nodes - 1), rng=rng)
    pm = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
    base = BatchInstance(tree, 10, pre, power_model=pm)
    instances = [base]
    for _ in range(n_duplicates):
        perm = rng.permutation(n_nodes)
        relabelled, relabelled_pre = relabel_tree(tree, perm, pre)
        instances.append(
            BatchInstance(
                relabelled, 10, relabelled_pre, base.cost_model, power_model=pm
            )
        )
    return instances


@_settings
@given(
    seed=st.integers(0, 2**32 - 1),
    solver=st.sampled_from(_SOLVERS),
    n_nodes=st.integers(10, 32),
    n_duplicates=st.integers(1, 4),
)
def test_server_responses_byte_match_direct_solve(
    seed, solver, n_nodes, n_duplicates
):
    instances = _random_instances(seed, n_nodes, n_duplicates)
    direct = solve_batch(instances, solver=solver)

    async def run():
        async with BatchServer(max_delay=0.002) as server:
            results = await asyncio.gather(
                *(server.submit(i, solver=solver) for i in instances)
            )
            return results, server

    results, server = asyncio.run(run())
    for got, want in zip(results, direct, strict=True):
        assert _wire(solver, got) == _wire(solver, want)
    # All instances are isomorphic: one canonical solve, the rest joined
    # in flight or hit the cache — coalescing is complete and lossless.
    stats = server.stats.policy(solver)
    assert stats.solves_scheduled == 1
    assert stats.requests == len(instances)
    assert (
        stats.cache_hits + stats.coalesced_joins + stats.solves_scheduled
        == stats.requests
    )
    assert server.cache.stats.unique_solved == 1


@_settings
@given(
    seed=st.integers(0, 2**32 - 1),
    n_nodes=st.integers(10, 28),
)
def test_coalescing_preserves_verified_placements(seed, n_nodes):
    """Waiters joined to one solve agree with their own direct DP runs,
    placement by placement (not just on cost)."""
    instances = _random_instances(seed, n_nodes, 3)

    async def run():
        async with BatchServer(max_delay=0.002) as server:
            return await asyncio.gather(
                *(server.submit(i, solver="dp") for i in instances)
            )

    results = asyncio.run(run())
    for instance, result in zip(instances, results, strict=True):
        want = solve_batch([instance], solver="dp")[0]
        # fan_out re-verifies validity on the original tree; equality of
        # the replica sets pins that coalescing changed nothing.
        assert sorted(result.replicas) == sorted(want.replicas)
        assert result.cost == want.cost


@_settings
@given(
    seed=st.integers(0, 2**32 - 1),
    n_nodes=st.integers(10, 24),
)
def test_coalescing_preserves_frontiers(seed, n_nodes):
    """Isomorphic waiters see isomorphic frontiers: identical (cost,
    power) pairs, placements valid in each waiter's own labelling."""
    instances = _random_instances(seed, n_nodes, 2)

    async def run():
        async with BatchServer(max_delay=0.002) as server:
            return await asyncio.gather(
                *(server.submit(i, solver="power_frontier") for i in instances)
            )

    frontiers = asyncio.run(run())
    reference = solve_batch([instances[0]], solver="power_frontier")[0]
    for frontier in frontiers:
        # from_records(verify=True) already re-verified every placement
        # against the instance's own tree during fan-out.
        assert frontier.pairs() == reference.pairs()
