"""Wire-protocol unit tests (:mod:`repro.serve.protocol`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.batch import BatchInstance, get_policy, solve_batch
from repro.batch.instance import instance_to_dict
from repro.power.modes import ModeSet, PowerModel
from repro.serve import ProtocolError, decode_line, encode_line, parse_solve_request
from repro.serve.protocol import MAX_LINE_BYTES
from repro.tree.generators import paper_tree, random_preexisting


def _instance(power: bool = False) -> BatchInstance:
    rng = np.random.default_rng(42)
    tree = paper_tree(24, rng=rng)
    pre = random_preexisting(tree, 4, rng=rng)
    pm = (
        PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
        if power
        else None
    )
    return BatchInstance(tree, 10, pre, power_model=pm)


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "solve", "id": 3, "solver": "dp", "instance": {"x": 1}}
        line = encode_line(message)
        assert line.endswith(b"\n")
        assert decode_line(line) == message

    def test_compact_encoding(self):
        assert b" " not in encode_line({"a": [1, 2], "b": {"c": 3}})

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_line(b"{nope}\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON objects"):
            decode_line(b"[1,2,3]\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_line(encode_line({"op": "explode"}))

    def test_oversized_line_rejected(self):
        line = b'{"op":"solve","pad":"' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="frame limit"):
            decode_line(line)


class TestSolveRequest:
    def test_roundtrips_instance(self):
        instance = _instance()
        message = decode_line(
            encode_line(
                {
                    "op": "solve",
                    "id": 1,
                    "solver": "greedy",
                    "priority": 2,
                    "instance": instance_to_dict(instance),
                }
            )
        )
        parsed, solver, priority = parse_solve_request(message)
        assert solver == "greedy"
        assert priority == 2
        assert parsed.capacity == instance.capacity
        assert parsed.preexisting == instance.preexisting
        assert parsed.tree.parents == instance.tree.parents

    def test_missing_instance_rejected(self):
        with pytest.raises(ProtocolError, match="no 'instance'"):
            parse_solve_request({"op": "solve", "id": 1})

    def test_non_string_solver_rejected(self):
        with pytest.raises(ProtocolError, match="'solver'"):
            parse_solve_request({"instance": {}, "solver": 7})

    def test_bool_priority_rejected(self):
        with pytest.raises(ProtocolError, match="'priority'"):
            parse_solve_request({"instance": {}, "priority": True})


class TestResultToWire:
    """Every policy serialises deterministically (the byte-match anchor)."""

    @pytest.mark.parametrize(
        "solver", ["dp", "greedy", "dp_nopre", "min_power", "power_frontier", "greedy_power"]
    )
    def test_deterministic_and_jsonable(self, solver):
        policy = get_policy(solver)
        instance = _instance(power=policy.needs_power)
        first = solve_batch([instance], solver=solver)[0]
        second = solve_batch([instance], solver=solver)[0]
        wire_a = json.dumps(policy.result_to_wire(first), sort_keys=True)
        wire_b = json.dumps(policy.result_to_wire(second), sort_keys=True)
        assert wire_a == wire_b
        assert json.loads(wire_a) == policy.result_to_wire(first)

    def test_mincost_wire_fields(self):
        instance = _instance()
        result = solve_batch([instance], solver="dp")[0]
        wire = get_policy("dp").result_to_wire(result)
        assert wire["replicas"] == sorted(result.replicas)
        assert wire["cost"] == result.cost
        assert wire["reused"] == result.n_reused

    def test_frontier_wire_matches_records(self):
        instance = _instance(power=True)
        frontier = solve_batch([instance], solver="power_frontier")[0]
        wire = get_policy("power_frontier").result_to_wire(frontier)
        assert wire["points"] == frontier.to_records()
