"""Chaos suite: the serving stack under injected faults.

Drives a 3-worker in-process cluster through a mixed storm with an
injected hang, an injected worker crash and healthy traffic, all
deterministically via :mod:`repro.faults` (``REPRO_FAULTS``):

* healthy requests are answered byte-identically to a direct
  ``solve_batch`` run — supervision must be invisible to them;
* the hung solve answers with a typed retriable ``code: "timeout"``
  within the ``2 x solve_timeout`` latency budget (wave deadline +
  sandbox probe), not the injected 30 s hang;
* resubmitting a poison digest fails fast with ``code: "quarantined"``
  without breaking (or rebuilding) any pool a second time — at most one
  rebuild per distinct poison digest across the fleet;
* a torn connection (``drop_connection``) is survived by the client's
  retry policy, while request-specific errors are never retried.

Tests drive the event loop with plain ``asyncio.run`` so they pass with
or without the pytest-asyncio plugin installed.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.batch import BatchInstance, get_policy, solve_batch
from repro.batch.executor import instance_key
from repro.batch.instance import instance_to_dict
from repro.serve import (
    BatchServer,
    ClusterRouter,
    InProcessSpawner,
    ServeClient,
    ServeError,
    WorkerConfig,
)
from repro.serve.client import ServeQuarantinedError, ServeTimeoutError
from repro.faults import reset as faults_reset
from repro.tree.generators import paper_tree, random_preexisting

#: Per-wave supervision deadline used throughout the storm.
SOLVE_TIMEOUT = 1.0


@pytest.fixture(autouse=True)
def _clean_faults():
    faults_reset()
    yield
    faults_reset()


def _instance(seed: int, n_nodes: int = 25) -> BatchInstance:
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    return BatchInstance(tree, 10, random_preexisting(tree, 3, rng=rng))


def _wire(solver: str, result) -> str:
    return json.dumps(get_policy(solver).result_to_wire(result), sort_keys=True)


def _wire_response(response: dict) -> str:
    return json.dumps(response["result"], sort_keys=True)


class TestClusterChaosStorm:
    def test_mixed_storm_hang_crash_and_healthy_traffic(self, monkeypatch):
        healthy = [_instance(seed) for seed in range(10, 18)]
        hang_i = _instance(900)
        crash_i = _instance(901)
        digests = {
            "hang": instance_key(hang_i, solver="dp")[1],
            "crash": instance_key(crash_i, solver="dp")[1],
        }
        assert digests["hang"] != digests["crash"]
        # Reference answers computed *before* the faults go live.
        reference = [
            _wire("dp", r) for r in solve_batch(healthy, solver="dp")
        ]
        monkeypatch.setenv(
            "REPRO_FAULTS",
            f"crash_on_digest={digests['crash']};"
            f"hang_seconds={digests['hang']}:30",
        )

        async def run():
            router = ClusterRouter(
                InProcessSpawner(),
                3,
                WorkerConfig(
                    max_delay=0.001,
                    pool_workers=2,
                    solve_timeout=SOLVE_TIMEOUT,
                ),
                fallbacks=1,
            )
            async with router:

                def solve_msg(instance):
                    return {
                        "op": "solve",
                        "solver": "dp",
                        "instance": instance_to_dict(instance),
                    }

                t0 = time.monotonic()
                responses = await asyncio.gather(
                    *(router.dispatch(solve_msg(i)) for i in healthy),
                    router.dispatch(solve_msg(hang_i)),
                    router.dispatch(solve_msg(crash_i)),
                )
                storm_elapsed = time.monotonic() - t0
                healthy_responses = responses[: len(healthy)]
                hang_response, crash_response = responses[-2:]

                # Poison digests fail fast on resubmission: quarantined,
                # answered immediately, no second pool break anywhere.
                t0 = time.monotonic()
                hang_again = await router.dispatch(solve_msg(hang_i))
                crash_again = await router.dispatch(solve_msg(crash_i))
                resubmit_elapsed = time.monotonic() - t0

                perf = await router.dispatch({"op": "perf"})
                return (
                    healthy_responses,
                    hang_response,
                    crash_response,
                    storm_elapsed,
                    hang_again,
                    crash_again,
                    resubmit_elapsed,
                    perf,
                )

        (
            healthy_responses,
            hang_response,
            crash_response,
            storm_elapsed,
            hang_again,
            crash_again,
            resubmit_elapsed,
            perf,
        ) = asyncio.run(run())

        # Healthy traffic: every answer byte-identical to solve_batch.
        for response, expected in zip(
            healthy_responses, reference, strict=True
        ):
            assert response["ok"] is True, response
            assert _wire_response(response) == expected

        # The hang answers with the typed retriable timeout code inside
        # the 2 x solve_timeout budget (plus scheduling/process slack),
        # nowhere near the injected 30 s.
        assert hang_response["ok"] is False
        assert hang_response["code"] == "timeout"
        assert storm_elapsed < 2 * SOLVE_TIMEOUT + 4.0

        # The crash is attributed and typed non-retriable.
        assert crash_response["ok"] is False
        assert crash_response["code"] == "quarantined"

        # Resubmissions fail fast from quarantine, near-instantly.
        assert hang_again["code"] == "quarantined"
        assert crash_again["code"] == "quarantined"
        assert resubmit_elapsed < 1.0

        # At most one pool rebuild per distinct poison digest, fleet-wide.
        workers = perf["perf"]["workers"]
        rebuilds = sum(
            (w.get("perf") or {}).get("cache", {}).get("pool_rebuilds", 0)
            for w in workers.values()
        )
        assert 1 <= rebuilds <= 2
        quarantined = sum(
            (w.get("perf") or {}).get("quarantine", {}).get("active", 0)
            for w in workers.values()
        )
        assert quarantined == 2
        # The router forwarded the timeout verbatim (no failover) and
        # counted it.
        timeouts = sum(
            w.get("timeouts", 0)
            for w in perf["perf"]["cluster"]["workers"].values()
        )
        assert timeouts == 1


class TestClientRetryPolicy:
    def test_dropped_connection_is_survived_by_retry(self, monkeypatch):
        instance = _instance(950)
        digest = instance_key(instance, solver="dp")[1]
        expected = _wire("dp", solve_batch([instance], solver="dp")[0])
        monkeypatch.setenv("REPRO_FAULTS", f"drop_connection={digest}:1")

        async def run():
            async with BatchServer(max_delay=0.001) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(
                    host, port, retries=2, backoff=0.01
                )
                try:
                    response = await client.solve(instance, solver="dp")
                finally:
                    await client.close()
                return response, server

        response, server = asyncio.run(run())
        assert response["ok"] is True
        assert _wire_response(response) == expected
        # The drop happened *after* the solve: the retry was answered
        # from cache, so exactly one canonical solve ran.
        assert server.stats.policy("dp").solves_scheduled == 1

    def test_timeout_code_is_retried_and_succeeds_after_quarantine_lift(
        self, monkeypatch
    ):
        # First attempt hangs -> typed timeout; the server quarantines
        # the digest, so the client's automatic retry surfaces the
        # quarantine (non-retriable) — proving retry fires on "timeout"
        # but stops on "quarantined".
        instance = _instance(951)
        digest = instance_key(instance, solver="dp")[1]
        monkeypatch.setenv("REPRO_FAULTS", f"hang_seconds={digest}:30")

        async def run():
            async with BatchServer(
                max_delay=0.001, solve_timeout=SOLVE_TIMEOUT
            ) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(
                    host, port, retries=2, backoff=0.01
                )
                try:
                    with pytest.raises(ServeQuarantinedError):
                        await client.solve(instance, solver="dp")
                finally:
                    await client.close()
                return server

        server = asyncio.run(run())
        assert server.cache.stats.solve_timeouts == 1
        assert server.cache.stats.quarantine_blocked >= 1

    def test_request_specific_errors_are_never_retried(self):
        from repro.tree.model import Tree

        infeasible = BatchInstance(Tree([None, 0], [(1, 50)]), 10)

        async def run():
            async with BatchServer(max_delay=0.001) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(
                    host, port, retries=5, backoff=0.01
                )
                try:
                    with pytest.raises(ServeError) as info:
                        await client.solve(infeasible, solver="dp")
                finally:
                    await client.close()
                return info.value, server

        error, server = asyncio.run(run())
        assert not isinstance(error, (ServeTimeoutError, ServeQuarantinedError))
        # Exactly one request reached the policy: no retry storm.
        assert server.stats.policy("dp").requests == 1

    def test_retry_configuration_is_validated(self):
        async def run():
            async with BatchServer(max_delay=0.001) as server:
                host, port = await server.listen()
                from repro.exceptions import ConfigurationError

                with pytest.raises(ConfigurationError):
                    await ServeClient.connect(host, port, retries=-1)
                with pytest.raises(ConfigurationError):
                    await ServeClient.connect(host, port, deadline=0)

        asyncio.run(run())


class TestServerSoloChaos:
    def test_single_server_hang_then_quarantine_fail_fast(self, monkeypatch):
        """The acceptance loop on one server: hang -> typed timeout
        within budget -> resubmission quarantined without a second
        rebuild."""
        instance = _instance(960)
        digest = instance_key(instance, solver="dp")[1]
        monkeypatch.setenv("REPRO_FAULTS", f"hang_seconds={digest}:30")

        async def run():
            async with BatchServer(
                max_delay=0.001, solve_timeout=SOLVE_TIMEOUT
            ) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(host, port)
                try:
                    t0 = time.monotonic()
                    with pytest.raises(ServeTimeoutError):
                        await client.solve(instance, solver="dp")
                    elapsed = time.monotonic() - t0
                    with pytest.raises(ServeQuarantinedError):
                        await client.solve(instance, solver="dp")
                finally:
                    await client.close()
                return elapsed, server

        elapsed, server = asyncio.run(run())
        assert elapsed < 2 * SOLVE_TIMEOUT + 4.0
        assert server.cache.stats.pool_rebuilds == 1
        assert server.cache.stats.solve_timeouts == 1
        snap = server._quarantine.snapshot()
        assert snap["active"] == 1
        assert snap["entries"][0]["reason"] == "timeout"
