"""Integration tests of the digest-routed serving cluster.

The whole topology — :class:`~repro.serve.ClusterRouter` front, hash
ring, N :class:`~repro.serve.BatchServer` workers, shedding, death and
re-spawn — runs socketlessly inside this one process through
:class:`~repro.serve.InProcessSpawner` (the front TCP endpoint is the
only real socket, exercised by :class:`~repro.serve.ServeClient`).

The acceptance storm: 200 mixed-policy requests with duplicates against
a 3-worker cluster, one worker killed mid-storm — every response arrives
and byte-matches the direct ``solve_batch`` answer, no request lost.

Tests drive the event loop with plain ``asyncio.run`` so they pass with
or without the pytest-asyncio plugin installed.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.batch import (
    BatchInstance,
    get_policy,
    random_batch,
    solve_batch,
)
from repro.batch.instance import instance_to_dict
from repro.power.modes import ModeSet, PowerModel
from repro.serve import (
    ClusterRouter,
    HashRing,
    InProcessSpawner,
    ServeClient,
    ServeError,
    ServeOverloadedError,
    WorkerConfig,
)
from repro.tree.generators import paper_tree, random_preexisting

# Import for the slow_dp registration side effect (see that module).
from tests.serve.test_server_concurrency import SlowDpPolicy  # noqa: F401


def _wire(solver: str, result) -> str:
    return json.dumps(get_policy(solver).result_to_wire(result), sort_keys=True)


def _power_instance(seed: int, n_nodes: int = 30) -> BatchInstance:
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    pre = random_preexisting(tree, 4, rng=rng)
    pm = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
    return BatchInstance(tree, 10, pre, power_model=pm)


def _instance_for_owner(router: ClusterRouter, owner: str, solver: str = "dp"):
    """A fresh instance whose *primary* ring owner is ``owner``."""
    policy = get_policy(solver)
    for seed in range(1000, 2000):
        rng = np.random.default_rng(seed)
        tree = paper_tree(25, rng=rng)
        instance = BatchInstance(tree, 10, random_preexisting(tree, 3, rng=rng))
        _, digest = policy.instance_key(instance)
        if router._ring.owners(digest, 1)[0] == owner:
            return instance, digest
    raise AssertionError(f"no instance found owned by {owner}")  # pragma: no cover


class TestHashRing:
    def test_owners_distinct_and_deterministic(self):
        ring = HashRing(["w0", "w1", "w2"])
        owners = ring.owners("d" * 64, 3)
        assert sorted(owners) == ["w0", "w1", "w2"]
        assert ring.owners("d" * 64, 3) == owners
        assert ring.owners("d" * 64, 1) == owners[:1]

    def test_n_clamped_to_fleet_size(self):
        ring = HashRing(["w0", "w1"])
        assert len(ring.owners("x", 5)) == 2

    def test_distribution_not_degenerate(self):
        """Virtual nodes spread digests across every worker."""
        ring = HashRing(["w0", "w1", "w2"])
        counts: dict[str, int] = {}
        for i in range(300):
            owner = ring.owners(f"digest-{i}", 1)[0]
            counts[owner] = counts.get(owner, 0) + 1
        assert set(counts) == {"w0", "w1", "w2"}
        assert min(counts.values()) > 30

    def test_membership_is_static(self):
        """The same names always build the same ring (cache affinity
        across router restarts and worker re-spawns)."""
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])
        for i in range(50):
            assert a.owners(f"d{i}", 2) == b.owners(f"d{i}", 2)


class TestClusterStorm:
    def test_200_request_storm_byte_identical_with_worker_death(self):
        """The acceptance criterion: a 200-request mixed-policy storm
        with duplicates against 3 workers, one induced worker death
        mid-storm — every response byte-matches the direct solve."""
        rng = np.random.default_rng(5)
        instances = random_batch(
            200, duplicate_rate=0.5, n_nodes=30, rng=rng
        )
        solvers = ["dp" if i % 2 == 0 else "greedy" for i in range(200)]
        expected = {}
        for solver in ("dp", "greedy"):
            group = [i for i, s in zip(instances, solvers) if s == solver]
            for inst, result in zip(group, solve_batch(group, solver=solver)):
                expected[id(inst)] = _wire(solver, result)

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(
                spawner, 3, WorkerConfig(max_delay=0.001), fallbacks=1
            )
            async with router:
                host, port = await router.listen()
                client = await ServeClient.connect(host, port)
                try:
                    first = await asyncio.gather(
                        *(
                            client.solve(inst, solver=s)
                            for inst, s in zip(instances[:100], solvers[:100])
                        )
                    )
                    # Induced mid-storm death: w1 goes down abruptly.
                    await router._handles["w1"].kill()
                    second = await asyncio.gather(
                        *(
                            client.solve(inst, solver=s)
                            for inst, s in zip(instances[100:], solvers[100:])
                        )
                    )
                finally:
                    await client.close()
                return first + second, router

        responses, router = asyncio.run(run())
        assert len(responses) == 200  # no request lost
        for inst, response in zip(instances, responses):
            assert response["ok"]
            got = json.dumps(response["result"], sort_keys=True)
            assert got == expected[id(inst)]
        stats = router.stats.as_dict()
        assert stats["requests_routed"] == 200
        assert stats["rejected"] == 0
        assert stats["workers"]["w1"]["deaths"] == 1

    def test_partitioned_digest_ownership(self):
        """Each digest is cached by exactly its primary ring owner: the
        partitioned-cache invariant behind the scale-out design."""
        instances = random_batch(
            40, duplicate_rate=0.0, n_nodes=25, rng=np.random.default_rng(9)
        )

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 3, WorkerConfig(max_delay=0.001))
            async with router:
                responses = [
                    await router.dispatch(
                        {
                            "op": "solve",
                            "id": i,
                            "solver": "dp",
                            "instance": instance_to_dict(inst),
                        }
                    )
                    for i, inst in enumerate(instances)
                ]
                placement = {}
                for response in responses:
                    assert response["ok"]
                    digest = response["digest"]
                    holders = [
                        name
                        for name, worker in spawner._workers.items()
                        if worker.server.cache.get(digest) is not None
                    ]
                    placement[digest] = holders
                return router, placement

        router, placement = asyncio.run(run())
        for digest, holders in placement.items():
            assert holders == router._ring.owners(digest, 1)

    def test_inflight_death_fails_over_to_ring_fallback(self):
        """A request in flight on a worker that dies is retried against
        the digest's next owner and still answered correctly."""

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(
                spawner, 3, WorkerConfig(max_delay=0.001), fallbacks=1
            )
            async with router:
                instance, digest = _instance_for_owner(router, "w2", "slow_dp")
                task = asyncio.create_task(
                    router.dispatch(
                        {
                            "op": "solve",
                            "id": 1,
                            "solver": "slow_dp",
                            "instance": instance_to_dict(instance),
                        }
                    )
                )
                # Let the request land on w2, then kill it mid-solve.
                while not router.stats.worker("w2").routed:
                    await asyncio.sleep(0.005)
                await router._handles["w2"].kill()
                response = await task
                return router, response

        router, response = asyncio.run(run())
        assert response["ok"]
        assert router.stats.worker("w2").deaths == 1
        assert router.stats.retries >= 1

    def test_dead_worker_respawns_and_serves_again(self):
        """The router re-spawns a dead worker (single-flight) and routes
        its digests straight back to it."""

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 2, WorkerConfig(max_delay=0.001))
            async with router:
                await router.start()
                await router._handles["w0"].kill()
                router._note_death("w0")
                for _ in range(200):
                    if "w0" not in router._down:
                        break
                    await asyncio.sleep(0.01)
                instance, digest = _instance_for_owner(router, "w0")
                response = await router.dispatch(
                    {
                        "op": "solve",
                        "id": 1,
                        "solver": "dp",
                        "instance": instance_to_dict(instance),
                    }
                )
                served_by_w0 = (
                    spawner._workers["w0"].server.cache.get(digest) is not None
                )
                return router, response, served_by_w0

        router, response, served_by_w0 = asyncio.run(run())
        assert response["ok"]
        assert router.stats.worker("w0").deaths == 1
        assert router.stats.worker("w0").respawns == 1
        assert served_by_w0


class TestClusterBackpressure:
    def test_shed_primary_retries_fallback(self):
        """A worker at max_pending sheds; the router retries the digest's
        fallback owner and the client never sees the overload."""

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(
                spawner,
                3,
                WorkerConfig(max_pending=1, max_delay=0),
                fallbacks=1,
            )
            async with router:
                # Fill w0's single admission slot with a slow solve.
                filler, _ = _instance_for_owner(router, "w0", "slow_dp")
                filler_task = asyncio.create_task(
                    router.dispatch(
                        {
                            "op": "solve",
                            "id": 1,
                            "solver": "slow_dp",
                            "instance": instance_to_dict(filler),
                        }
                    )
                )
                while not spawner._workers["w0"].server._jobs:
                    await asyncio.sleep(0.005)
                # A second digest owned by w0 must fail over, not fail.
                instance, _ = _instance_for_owner(router, "w0")
                response = await router.dispatch(
                    {
                        "op": "solve",
                        "id": 2,
                        "solver": "dp",
                        "instance": instance_to_dict(instance),
                    }
                )
                filler_response = await filler_task
                return router, response, filler_response

        router, response, filler_response = asyncio.run(run())
        assert response["ok"] and filler_response["ok"]
        assert router.stats.worker("w0").sheds == 1
        assert router.stats.retries == 1
        assert router.stats.rejected == 0

    def test_every_owner_shedding_rejects_with_overloaded_code(self):
        """With no fallbacks, a shed is final: the client sees the typed
        retriable overload, and nothing was enqueued anywhere."""

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(
                spawner,
                2,
                WorkerConfig(max_pending=1, max_delay=0),
                fallbacks=0,
            )
            async with router:
                host, port = await router.listen()
                filler, _ = _instance_for_owner(router, "w1", "slow_dp")
                filler_task = asyncio.create_task(
                    router.dispatch(
                        {
                            "op": "solve",
                            "id": 1,
                            "solver": "slow_dp",
                            "instance": instance_to_dict(filler),
                        }
                    )
                )
                while not spawner._workers["w1"].server._jobs:
                    await asyncio.sleep(0.005)
                instance, _ = _instance_for_owner(router, "w1")
                client = await ServeClient.connect(host, port)
                try:
                    with pytest.raises(ServeOverloadedError):
                        await client.solve(instance, solver="dp")
                finally:
                    await client.close()
                await filler_task
                return router

        router = asyncio.run(run())
        assert router.stats.rejected == 1
        assert router.stats.worker("w1").sheds >= 1


class TestClusterSessions:
    def test_session_sticky_namespaced_and_closable(self):
        instance = _power_instance(seed=61)

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 3, WorkerConfig(max_delay=0.001))
            async with router:
                host, port = await router.listen()
                client = await ServeClient.connect(host, port)
                try:
                    sess = await client.session(instance)
                    sid = sess.session_id
                    response = await sess.delta(
                        [{"kind": "add_client", "node": 1, "requests": 2}]
                    )
                    stats = await sess.close()
                finally:
                    await client.close()
                return sid, response, stats

        sid, response, stats = asyncio.run(run())
        worker, _, remote = sid.partition(":")
        assert worker in ("w0", "w1", "w2") and remote.startswith("s")
        assert response["session"] == sid
        assert response["apply"]["deltas"] == 1
        assert stats["applies"] == 1

    def test_worker_death_orphans_session_with_lost_error(self):
        instance = _power_instance(seed=62)

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 3, WorkerConfig(max_delay=0.001))
            async with router:
                host, port = await router.listen()
                client = await ServeClient.connect(host, port)
                try:
                    sess = await client.session(instance)
                    owner = sess.session_id.partition(":")[0]
                    await router._handles[owner].kill()
                    with pytest.raises(ServeError, match="lost"):
                        await sess.delta(
                            [{"kind": "add_client", "node": 1, "requests": 1}]
                        )
                finally:
                    await client.close()
                return router

        router = asyncio.run(run())
        assert router.stats.lost_sessions == 1

    def test_disconnect_reaps_cluster_sessions(self):
        """Closing the front connection releases the worker-side session."""
        instance = _power_instance(seed=63)

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 2, WorkerConfig(max_delay=0.001))
            async with router:
                host, port = await router.listen()
                client = await ServeClient.connect(host, port)
                sess = await client.session(instance)
                owner = sess.session_id.partition(":")[0]
                server = spawner._workers[owner].server
                assert len(server._sessions) == 1
                await client.close()
                for _ in range(200):
                    if not server._sessions:
                        break
                    await asyncio.sleep(0.01)
                return len(server._sessions)

        assert asyncio.run(run()) == 0


class TestClusterOps:
    def test_perf_and_stats_fan_out(self):
        instance = _power_instance(seed=71)

        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 2, WorkerConfig(max_delay=0.001))
            async with router:
                host, port = await router.listen()
                client = await ServeClient.connect(host, port)
                try:
                    await client.solve(instance, solver="dp")
                    perf = await client.perf()
                    stats = await client.stats()
                finally:
                    await client.close()
                return perf, stats

        perf, stats = asyncio.run(run())
        assert set(perf) == {"cluster", "workers"}
        assert perf["cluster"]["requests_routed"] == 1
        assert set(perf["workers"]) == {"w0", "w1"}
        for entry in perf["workers"].values():
            assert entry["alive"]
            assert "serve" in entry["perf"]
        total = sum(
            p.get("requests", 0)
            for entry in stats["workers"].values()
            for p in entry["stats"]["policies"].values()
        )
        assert total == 1

    def test_shutdown_op_stops_cluster(self):
        async def run():
            spawner = InProcessSpawner()
            router = ClusterRouter(spawner, 2, WorkerConfig(max_delay=0.001))
            async with router:
                host, port = await router.listen()
                client = await ServeClient.connect(host, port)
                try:
                    await client.shutdown_server()
                finally:
                    await client.close()
                await asyncio.wait_for(router.serve_forever(), timeout=10)
                return all(
                    not w.alive for w in spawner._workers.values()
                )

        assert asyncio.run(run())
