"""Backpressure contract of :class:`repro.serve.BatchServer`.

The ``max_pending`` admission bound, each property pinned by a test:

* a server at capacity sheds new canonical solves with
  :class:`~repro.exceptions.ServerOverloadedError` (wire
  ``code: "overloaded"`` → :class:`~repro.serve.ServeOverloadedError`
  client-side) instead of queueing unboundedly;
* sheds are counted in ``overloads``, never in ``errors``;
* cache hits and coalesced joins never consume admission slots;
* capacity recovers as soon as the pending solves complete;
* a rejection racing :meth:`~repro.serve.BatchServer.stop` strands no
  caller (nothing is enqueued on the shed path).

Tests drive the event loop with plain ``asyncio.run`` so they pass with
or without the pytest-asyncio plugin installed.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np
import pytest

from repro.batch import BatchInstance, register_policy
from repro.exceptions import (
    ConfigurationError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve import (
    BatchServer,
    ServeClient,
    ServeOverloadedError,
)
from repro.tree.generators import paper_tree, random_preexisting

# Reuse the registered slow policy from the concurrency suite (import
# has the registration side effect; re-registration is suppressed there).
from tests.serve.test_server_concurrency import SlowDpPolicy  # noqa: F401


def _instance(seed: int, n_nodes: int = 30) -> BatchInstance:
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    return BatchInstance(tree, 10, random_preexisting(tree, 4, rng=rng))


async def _fill(server: BatchServer, n: int) -> list[asyncio.Task]:
    """Start ``n`` distinct slow solves and wait until all are admitted."""
    tasks = [
        asyncio.create_task(server.submit(_instance(seed=100 + i), solver="slow_dp"))
        for i in range(n)
    ]
    while len(server._jobs) < n:
        await asyncio.sleep(0.005)
    return tasks


class TestAdmissionBound:
    def test_max_pending_validated(self):
        with pytest.raises(ConfigurationError):
            BatchServer(max_pending=0)

    def test_shed_at_capacity_counts_overloads_not_errors(self):
        async def run():
            async with BatchServer(max_pending=2, max_delay=0) as server:
                tasks = await _fill(server, 2)
                with pytest.raises(ServerOverloadedError, match="max_pending=2"):
                    await server.submit(_instance(seed=7), solver="slow_dp")
                await asyncio.gather(*tasks)
                return server

        server = asyncio.run(run())
        pstats = server.stats.policy("slow_dp")
        assert pstats.overloads == 1
        assert pstats.errors == 0
        # The shed request never became a scheduled solve.
        assert pstats.solves_scheduled == 2

    def test_capacity_recovers_after_drain(self):
        async def run():
            async with BatchServer(max_pending=1, max_delay=0) as server:
                tasks = await _fill(server, 1)
                with pytest.raises(ServerOverloadedError):
                    await server.submit(_instance(seed=8), solver="slow_dp")
                await asyncio.gather(*tasks)
                # Pending drained: the same instance is admitted now.
                result = await server.submit(_instance(seed=8), solver="slow_dp")
                return server, result

        server, result = asyncio.run(run())
        assert result.n_replicas >= 0
        assert server.stats.policy("slow_dp").overloads == 1

    def test_cache_hits_and_coalesced_joins_never_shed(self):
        """Only *new* canonical solves consume admission slots."""
        hot = _instance(seed=9)

        async def run():
            async with BatchServer(max_pending=1, max_delay=0) as server:
                # Warm the cache below the bound.
                await server.submit(hot, solver="dp")
                tasks = await _fill(server, 1)
                # At capacity: a cache hit still flows ...
                await server.submit(hot, solver="dp")
                # ... and so does a coalesced join on the pending digest.
                joined = await asyncio.gather(
                    server.submit(_instance(seed=100), solver="slow_dp"),
                    *tasks,
                )
                return server, joined

        server, _ = asyncio.run(run())
        assert server.stats.policy("dp").cache_hits == 1
        assert server.stats.policy("slow_dp").coalesced_joins == 1
        assert server.stats.policy("dp").overloads == 0
        assert server.stats.policy("slow_dp").overloads == 0

    def test_wire_code_overloaded_and_typed_client_error(self):
        """A shed crosses the wire as ``code: "overloaded"`` and surfaces
        client-side as the retriable :class:`ServeOverloadedError`."""

        async def run():
            async with BatchServer(max_pending=1, max_delay=0) as server:
                host, port = await server.listen()
                tasks = await _fill(server, 1)
                client = await ServeClient.connect(host, port)
                try:
                    with pytest.raises(ServeOverloadedError) as info:
                        await client.solve(_instance(seed=21), solver="slow_dp")
                finally:
                    await client.close()
                await asyncio.gather(*tasks)
                return server, info.value

        server, exc = asyncio.run(run())
        assert exc.code == "overloaded"
        assert server.stats.policy("slow_dp").overloads == 1

    def test_rejection_racing_stop_strands_nobody(self):
        """The shed path enqueues nothing, so a rejection concurrent with
        stop() resolves promptly — with either the overload or the
        closed error — instead of waiting on a solve that will never run."""

        async def run():
            server = BatchServer(max_pending=1, max_delay=0)
            await server.start()
            tasks = await _fill(server, 1)

            async def late_submit():
                with contextlib.suppress(
                    ServerOverloadedError, ServerClosedError
                ):
                    await server.submit(_instance(seed=33), solver="slow_dp")
                return "resolved"

            outcome, _ = await asyncio.wait_for(
                asyncio.gather(late_submit(), server.stop()), timeout=10
            )
            await asyncio.gather(*tasks, return_exceptions=True)
            return outcome

        assert asyncio.run(run()) == "resolved"


class TestOverloadStatsPayload:
    def test_overloads_in_stats_dict(self):
        async def run():
            async with BatchServer(max_pending=1, max_delay=0) as server:
                tasks = await _fill(server, 1)
                with pytest.raises(ServerOverloadedError):
                    await server.submit(_instance(seed=41), solver="slow_dp")
                await asyncio.gather(*tasks)
                return server.stats.as_dict()

        payload = asyncio.run(run())
        assert payload["policies"]["slow_dp"]["overloads"] == 1
