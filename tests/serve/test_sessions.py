"""Serve-layer contract of the live incremental sessions (PR 8).

Pinned guarantees:

* concurrent deltas on two different sessions never cross-contaminate —
  each session's frontier tracks its own ground-truth
  :class:`repro.dynamics.SessionState` exactly;
* ``session.close`` releases the retained tables and the server's
  registry does not grow across repeated open/close cycles;
* an abrupt client disconnect mid-session tears the session down
  without poisoning the shared solve pool;
* session requests are stateful: identical ``session.open`` payloads
  get *distinct* sessions (no digest coalescing), and unknown session
  ids are answered with protocol errors, not crashes.

Tests drive the event loop with plain ``asyncio.run`` so they pass with
or without the pytest-asyncio plugin installed.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.batch import BatchInstance
from repro.core.costs import ModalCostModel
from repro.dynamics import AddClient, SessionState, SetRequests, delta_to_dict
from repro.power.modes import ModeSet, PowerModel
from repro.serve import BatchServer, ServeClient, ServeError
from repro.tree.generators import paper_tree, random_preexisting

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)


def _instance(seed: int, n_nodes: int = 40) -> BatchInstance:
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    pre = random_preexisting(tree, min(5, n_nodes), rng=rng)
    return BatchInstance(tree, 10, pre, power_model=PM)


def _points(frontier) -> list[list[float]]:
    return [[c, p] for c, p in frontier.pairs()]


def _ground_truth(instance: BatchInstance, delta_batches):
    """Frontier sequence an in-process SessionState produces."""
    state = SessionState(
        instance.tree,
        instance.power_model,
        instance.effective_modal_cost(),
        instance.pre_modes(),
    )
    out = [_points(state.frontier())]
    for batch in delta_batches:
        out.append(_points(state.apply(batch).frontier))
    state.close()
    return out


class TestSessionIsolation:
    def test_concurrent_deltas_two_sessions_no_cross_contamination(self):
        inst_a, inst_b = _instance(1), _instance(2, n_nodes=30)
        batches_a = [[AddClient(3, 2)], [SetRequests(0, 1)], [AddClient(7, 1)]]
        batches_b = [[AddClient(5, 3)], [AddClient(5, 1)], [SetRequests(1, 4)]]
        truth_a = _ground_truth(inst_a, batches_a)
        truth_b = _ground_truth(inst_b, batches_b)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                c1 = await ServeClient.connect(host, port)
                c2 = await ServeClient.connect(host, port)
                try:
                    sess_a, sess_b = await asyncio.gather(
                        c1.session(inst_a), c2.session(inst_b)
                    )
                    seen_a = [sess_a.result["points"]]
                    seen_b = [sess_b.result["points"]]
                    # Fire each step's two deltas concurrently.
                    for batch_a, batch_b in zip(batches_a, batches_b):
                        ra, rb = await asyncio.gather(
                            sess_a.delta(batch_a), sess_b.delta(batch_b)
                        )
                        seen_a.append(ra["result"]["points"])
                        seen_b.append(rb["result"]["points"])
                    stats_a = await sess_a.close()
                    stats_b = await sess_b.close()
                finally:
                    await c1.close()
                    await c2.close()
                return seen_a, seen_b, stats_a, stats_b

        seen_a, seen_b, stats_a, stats_b = asyncio.run(run())
        assert seen_a == truth_a
        assert seen_b == truth_b
        assert stats_a["deltas_applied"] == len(batches_a)
        assert stats_b["deltas_applied"] == len(batches_b)
        assert stats_a["errors"] == 0 and stats_b["errors"] == 0

    def test_identical_opens_are_not_coalesced(self):
        instance = _instance(3)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                async with await ServeClient.connect(host, port) as client:
                    s1, s2 = await asyncio.gather(
                        client.session(instance), client.session(instance)
                    )
                    sids = (s1.session_id, s2.session_id)
                    await s1.close()
                    await s2.close()
                    return sids

        sid1, sid2 = asyncio.run(run())
        assert sid1 != sid2


class TestSessionLifecycle:
    def test_open_close_cycles_release_tables(self):
        instance = _instance(4, n_nodes=25)
        cycles = 5

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                async with await ServeClient.connect(host, port) as client:
                    per_close = []
                    for _ in range(cycles):
                        sess = await client.session(instance)
                        await sess.delta([AddClient(2, 1)])
                        per_close.append(await sess.close())
                        # The registry must not accumulate closed sessions.
                        assert len(server._sessions) == 0
                    perf = await client.perf()
                return per_close, perf

        per_close, perf = asyncio.run(run())
        sessions = perf["sessions"]
        assert sessions["open"] == 0
        assert sessions["opened"] == cycles
        assert sessions["closed"] == cycles
        assert sessions["per_session"] == {}
        assert sessions["closed_aggregate"]["applies"] == cycles
        assert sessions["closed_aggregate"]["deltas_applied"] == cycles
        for stats in per_close:
            # Tables were retained while live ... and the close response
            # is the last observable snapshot before release.
            assert stats["store"]["entries"] > 0
            assert stats["applies"] == 1

    def test_unknown_session_is_an_error_response(self):
        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                async with await ServeClient.connect(host, port) as client:
                    with pytest.raises(ServeError, match="unknown session"):
                        await client._request(
                            {
                                "op": "session.delta",
                                "session": "s999",
                                "deltas": [delta_to_dict(AddClient(0, 1))],
                            }
                        )
                    with pytest.raises(ServeError, match="unknown session"):
                        await client._request(
                            {"op": "session.close", "session": "s999"}
                        )

        asyncio.run(run())

    def test_invalid_delta_counts_error_session_survives(self):
        instance = _instance(5, n_nodes=20)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                async with await ServeClient.connect(host, port) as client:
                    sess = await client.session(instance)
                    with pytest.raises(ServeError, match="out of range"):
                        await sess.delta([SetRequests(10_000, 1)])
                    # The session is still usable after the bad delta.
                    good = await sess.delta([AddClient(1, 2)])
                    assert good["ok"]
                    stats = await sess.close()
                return stats

        stats = asyncio.run(run())
        assert stats["errors"] == 1
        assert stats["applies"] == 1
        assert stats["deltas_applied"] == 1


class TestDisconnectCleanup:
    def test_disconnect_mid_session_does_not_poison_the_pool(self):
        instance = _instance(6, n_nodes=25)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                # Connection 1 opens a session, then vanishes abruptly
                # without session.close.
                c1 = await ServeClient.connect(host, port)
                sess = await c1.session(instance)
                await sess.delta([AddClient(2, 1)])
                await c1.close()
                # The connection's finally-block reaps the orphan.
                for _ in range(100):
                    if len(server._sessions) == 0:
                        break
                    await asyncio.sleep(0.01)
                assert len(server._sessions) == 0

                # The pool still serves both solves and fresh sessions.
                c2 = await ServeClient.connect(host, port)
                try:
                    response = await c2.solve(instance, solver="power_frontier")
                    assert response["ok"]
                    sess2 = await c2.session(instance)
                    good = await sess2.delta([AddClient(2, 1)])
                    assert good["ok"]
                    await sess2.close()
                    perf = await c2.perf()
                finally:
                    await c2.close()
                return perf

        perf = asyncio.run(run())
        sessions = perf["sessions"]
        assert sessions["opened"] == 2
        assert sessions["closed"] == 2
        assert sessions["open"] == 0
        # The orphaned session's work still lands in the aggregate.
        assert sessions["closed_aggregate"]["applies"] == 2

    def test_server_stop_reaps_open_sessions(self):
        instance = _instance(7, n_nodes=20)

        async def run():
            server = await BatchServer(max_delay=0.01).start()
            host, port = await server.listen()
            client = await ServeClient.connect(host, port)
            sess = await client.session(instance)
            assert len(server._sessions) == 1
            await server.stop()
            await client.close()
            return server, sess.session_id

        server, _sid = asyncio.run(run())
        assert len(server._sessions) == 0
        assert server._sessions_closed == 1
