"""Concurrency contract of :class:`repro.serve.BatchServer`.

The serving tier's correctness-under-concurrency guarantees, each pinned
by a test:

* N concurrent identical requests (across multiple TCP clients) trigger
  exactly one underlying canonical solve;
* mixed-policy storms stay isolated per policy;
* client disconnect / task cancellation never poisons the shared
  in-flight future;
* graceful shutdown drains queued and in-flight work before refusing.

Tests drive the event loop with plain ``asyncio.run`` so they pass with
or without the pytest-asyncio plugin installed.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time

import numpy as np
import pytest

from repro.batch import (
    BatchInstance,
    get_policy,
    register_policy,
    relabel_tree,
    solve_batch,
)
from repro.batch.registry import DpPolicy
from repro.exceptions import ConfigurationError, ServerClosedError
from repro.power.modes import ModeSet, PowerModel
from repro.serve import BatchServer, ServeClient, ServeError, encode_line
from repro.batch.instance import instance_to_dict
from repro.tree.generators import paper_tree, random_preexisting


def _instance(seed: int = 1, n_nodes: int = 40, power: bool = False) -> BatchInstance:
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    pre = random_preexisting(tree, min(6, n_nodes), rng=rng)
    pm = (
        PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
        if power
        else None
    )
    return BatchInstance(tree, 10, pre, power_model=pm)


def _wire(solver: str, result) -> str:
    """Canonical response bytes used for byte-match assertions."""
    return json.dumps(get_policy(solver).result_to_wire(result), sort_keys=True)


class SlowDpPolicy(DpPolicy):
    """The dp policy with an artificial solve delay, for in-flight tests."""

    name = "slow_dp"

    def solve(self, payload):
        time.sleep(0.25)
        return super().solve(payload)


class CrashingPolicy(DpPolicy):
    """Kills its worker process outright — a stand-in for OOM/segfault."""

    name = "crash_dp"

    def solve(self, payload):
        import os

        os._exit(13)


with contextlib.suppress(ConfigurationError):  # pragma: no cover - reimport
    register_policy(SlowDpPolicy())
    register_policy(CrashingPolicy())


class TestCoalescing:
    def test_fifty_identical_requests_two_clients_one_solve(self):
        """The acceptance criterion: 50 concurrent identical requests over
        two TCP connections produce exactly one canonical solve, and all
        50 responses byte-match the direct ``solve_batch`` answer."""
        instance = _instance(seed=7)
        expected = _wire("dp", solve_batch([instance], solver="dp")[0])

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                c1 = await ServeClient.connect(host, port)
                c2 = await ServeClient.connect(host, port)
                try:
                    halves = await asyncio.gather(
                        c1.solve_many([instance] * 25, solver="dp"),
                        c2.solve_many([instance] * 25, solver="dp"),
                    )
                finally:
                    await c1.close()
                    await c2.close()
                return halves[0] + halves[1], server

        responses, server = asyncio.run(run())
        assert len(responses) == 50
        policy_stats = server.stats.policy("dp")
        assert policy_stats.requests == 50
        assert policy_stats.solves_scheduled == 1
        assert policy_stats.coalesced_joins + policy_stats.cache_hits == 49
        assert policy_stats.errors == 0
        # The batch backend agrees: one canonical solve ran end to end.
        assert server.cache.stats.unique_solved == 1
        assert server.stats.connections == 2
        for response in responses:
            assert response["served"] in ("solve", "coalesced", "cache")
            assert json.dumps(response["result"], sort_keys=True) == expected

    def test_relabelled_duplicates_fan_out_per_waiter(self):
        """Coalesced isomorphic duplicates get answers in their *own*
        labelling, not the scheduling instance's."""
        base = _instance(seed=11, n_nodes=30)
        rng = np.random.default_rng(3)
        duplicates = []
        for _ in range(4):
            perm = rng.permutation(base.tree.n_nodes)
            tree, pre = relabel_tree(base.tree, perm, base.preexisting)
            duplicates.append(BatchInstance(tree, base.capacity, pre, base.cost_model))
        batch = [base, *duplicates]
        direct = solve_batch(batch, solver="dp")

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                results = await asyncio.gather(
                    *(server.submit(i, solver="dp") for i in batch)
                )
                return results, server

        results, server = asyncio.run(run())
        assert server.stats.policy("dp").solves_scheduled == 1
        for got, want in zip(results, direct, strict=True):
            assert _wire("dp", got) == _wire("dp", want)

    def test_priorities_accepted(self):
        instance = _instance(seed=5, n_nodes=20)

        async def run():
            async with BatchServer(max_delay=0) as server:
                low = server.submit(instance, solver="dp", priority=5)
                high = server.submit(instance, solver="dp", priority=-5)
                return await asyncio.gather(low, high)

        low, high = asyncio.run(run())
        assert low.cost == pytest.approx(high.cost)


class TestMixedPolicies:
    def test_policy_storm_stays_isolated(self):
        instance = _instance(seed=13, n_nodes=30, power=True)
        solvers = ("dp", "greedy", "min_power", "power_frontier")
        direct = {s: solve_batch([instance], solver=s)[0] for s in solvers}

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                results = await asyncio.gather(
                    *(
                        server.submit(instance, solver=s)
                        for s in solvers
                        for _ in range(5)
                    )
                )
                return results, server

        results, server = asyncio.run(run())
        for idx, solver in enumerate(solvers):
            for k in range(5):
                got = results[idx * 5 + k]
                assert _wire(solver, got) == _wire(solver, direct[solver])
        stats = server.stats
        assert stats.policy("dp").solves_scheduled == 1
        assert stats.policy("greedy").solves_scheduled == 1
        # min_power / power_frontier share one digest (and hence one
        # canonical frontier solve) by design.
        frontier_solves = (
            stats.policy("min_power").solves_scheduled
            + stats.policy("power_frontier").solves_scheduled
        )
        assert frontier_solves == 1
        assert server.cache.stats.unique_solved == 3

    def test_solver_failure_isolated_within_micro_batch(self):
        """A solver-time failure (infeasible instance) sharing a
        micro-batch with a feasible one must fail alone — the feasible
        waiter still gets its answer."""
        from repro.exceptions import InfeasibleError
        from repro.tree.model import Tree

        good = _instance(seed=29, n_nodes=20)
        bad = BatchInstance(Tree([None, 0], [(1, 50)]), 10)  # load 50 > W=10
        expected = _wire("dp", solve_batch([good], solver="dp")[0])

        async def run():
            # A generous linger guarantees both jobs land in one batch.
            async with BatchServer(max_delay=0.05) as server:
                outcomes = await asyncio.gather(
                    server.submit(good, solver="dp"),
                    server.submit(bad, solver="dp"),
                    return_exceptions=True,
                )
                return outcomes, server

        outcomes, server = asyncio.run(run())
        assert _wire("dp", outcomes[0]) == expected
        assert isinstance(outcomes[1], InfeasibleError)
        stats = server.stats.policy("dp")
        assert stats.errors == 1

    def test_crashed_worker_pool_is_rebuilt(self):
        """A dead pool worker fails its own request but must not poison
        the long-lived server: the crash is attributed to its digest
        (typed ``QuarantinedError``), the pool is rebuilt, and later
        cache-miss requests succeed."""
        from repro.exceptions import QuarantinedError

        instance = _instance(seed=43, n_nodes=20)

        async def run():
            async with BatchServer(max_delay=0, workers=2) as server:
                with pytest.raises(QuarantinedError):
                    await server.submit(instance, solver="crash_dp")
                # The poison digest now fails fast for its TTL, without
                # touching (or re-breaking) the rebuilt pool.
                with pytest.raises(QuarantinedError):
                    await server.submit(instance, solver="crash_dp")
                result = await server.submit(instance, solver="dp")
                return result, server

        result, server = asyncio.run(run())
        assert result.n_replicas > 0
        assert server.stats.policy("dp").errors == 0
        assert server.cache.stats.pool_rebuilds == 1
        assert server.cache.stats.quarantined == 1
        assert server.cache.stats.quarantine_blocked == 1

    def test_error_does_not_kill_other_requests(self):
        bad = _instance(seed=17, n_nodes=20, power=False)  # no power model
        good = _instance(seed=17, n_nodes=20, power=False)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                async with await ServeClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        client.solve(bad, solver="min_power"),
                        client.solve(good, solver="dp"),
                        return_exceptions=True,
                    )
                return outcomes, server

        outcomes, server = asyncio.run(run())
        assert isinstance(outcomes[0], ServeError)
        assert "power model" in str(outcomes[0])
        assert outcomes[1]["ok"] is True
        assert server.stats.policy("min_power").errors == 1
        assert server.stats.policy("dp").errors == 0


class TestCancellationAndDisconnect:
    def test_cancelled_waiter_does_not_poison_shared_future(self):
        instance = _instance(seed=19, n_nodes=25)
        expected = _wire("dp", solve_batch([instance], solver="dp")[0])

        async def run():
            async with BatchServer(max_delay=0) as server:
                first = asyncio.create_task(
                    server.submit(instance, solver="slow_dp")
                )
                await asyncio.sleep(0.05)  # job is in flight on the backend
                second = asyncio.create_task(
                    server.submit(instance, solver="slow_dp")
                )
                await asyncio.sleep(0.05)
                first.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await first
                result = await second
                return result, server

        result, server = asyncio.run(run())
        # slow_dp shares the dp record shape, so the survivor's answer
        # must match a plain dp solve.
        assert _wire("dp", result) == expected
        stats = server.stats.policy("slow_dp")
        assert stats.solves_scheduled == 1
        assert stats.errors == 0

    def test_client_close_fails_inflight_requests_promptly(self):
        """close() must fail waiters still awaiting responses instead of
        leaving them hanging on never-resolved futures."""
        instance = _instance(seed=41, n_nodes=20)

        async def run():
            async with BatchServer(max_delay=0) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(host, port)
                pending = asyncio.create_task(
                    client.solve(instance, solver="slow_dp")
                )
                await asyncio.sleep(0.05)  # request is in flight
                await client.close()
                with pytest.raises(ServeError, match="closed"):
                    await asyncio.wait_for(pending, timeout=2)

        asyncio.run(run())

    def test_client_disconnect_leaves_solve_running(self):
        instance = _instance(seed=23, n_nodes=25)
        expected = _wire("dp", solve_batch([instance], solver="dp")[0])

        async def run():
            async with BatchServer(max_delay=0) as server:
                host, port = await server.listen()
                # A raw connection that fires one slow request and vanishes.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    encode_line(
                        {
                            "op": "solve",
                            "id": 1,
                            "solver": "slow_dp",
                            "instance": instance_to_dict(instance),
                        }
                    )
                )
                await writer.drain()
                await asyncio.sleep(0.05)  # request scheduled server-side
                writer.close()
                # A well-behaved client asking for the same digest joins
                # the orphaned in-flight solve and still gets the answer.
                async with await ServeClient.connect(host, port) as client:
                    response = await client.solve(instance, solver="slow_dp")
                return response, server

        response, server = asyncio.run(run())
        assert json.dumps(response["result"], sort_keys=True) == expected
        assert server.stats.policy("slow_dp").solves_scheduled == 1


class TestShutdown:
    def test_stop_drains_queued_work(self):
        instances = [_instance(seed=s, n_nodes=20) for s in range(31, 36)]
        direct = [solve_batch([i], solver="dp")[0] for i in instances]

        async def run():
            server = await BatchServer(max_delay=0).start()
            tasks = [
                asyncio.create_task(server.submit(i, solver="dp"))
                for i in instances
            ]
            # Wait until every submission is actually enqueued (the
            # canonicalisation step is async) before starting shutdown.
            while server.stats.policy("dp").solves_scheduled < len(instances):
                await asyncio.sleep(0.005)
            await server.stop()
            results = await asyncio.gather(*tasks)
            with pytest.raises(ServerClosedError):
                await server.submit(instances[0], solver="dp")
            return results

        results = asyncio.run(run())
        for got, want in zip(results, direct, strict=True):
            assert _wire("dp", got) == _wire("dp", want)

    def test_shutdown_op_stops_tcp_server(self):
        instance = _instance(seed=37, n_nodes=20)

        async def run():
            server = await BatchServer(max_delay=0).start()
            host, port = await server.listen()
            async with await ServeClient.connect(host, port) as client:
                response = await client.solve(instance, solver="dp")
                assert response["ok"]
                await client.shutdown_server()
            await asyncio.wait_for(server.serve_forever(), timeout=5)
            return server

        server = asyncio.run(run())
        assert server.stats.policy("dp").requests == 1


class TestPerfOp:
    def test_perf_reports_kernel_counters_once_per_digest(self):
        """The ``perf`` op exposes Pareto-DP kernel counters aggregated
        from the canonical solve records, with cache hits and coalesced
        duplicates never inflating them."""
        instance = _instance(seed=23, n_nodes=25, power=True)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(host, port)
                try:
                    await client.solve_many([instance] * 6, solver="min_power")
                    first = await client.perf()
                    # Re-requesting the same digest is a cache hit; the
                    # kernel aggregate must not double-count it.
                    await client.solve(instance, solver="min_power")
                    second = await client.perf()
                finally:
                    await client.close()
                return first, second

        first, second = asyncio.run(run())
        kernel = first["kernel"]["min_power"]
        assert kernel["merges"] > 0
        assert kernel["labels_created"] >= kernel["labels_generated"] > 0
        assert kernel["memo_hits"] + kernel["memo_misses"] > 0
        assert second["kernel"]["min_power"] == kernel
        assert second["serve"]["policies"]["min_power"]["requests"] == 7

    def test_perf_reports_kernel_solve_labels(self):
        """Per-kernel solve counts ride in the perf aggregate: each
        canonical record names the engine that produced it."""
        instance = _instance(seed=41, n_nodes=25, power=True)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(host, port)
                try:
                    await client.solve(instance, solver="min_power")
                    return await client.perf()
                finally:
                    await client.close()

        perf = asyncio.run(run())
        kernel = perf["kernel"]["min_power"]
        from repro.power.kernels import DEFAULT_KERNEL

        assert kernel["kernel_solves"] == {DEFAULT_KERNEL: 1}

    def test_kernels_report_consistent_solve_counts(self, monkeypatch):
        """Regression: the tuple and array kernels report the same
        number of canonical solves (and mirrored dominance counters) on
        an identical workload — the knob changes the engine, never the
        amount of work the batch tier schedules."""
        instances = [
            _instance(seed=s, n_nodes=22, power=True) for s in (51, 52, 53)
        ] * 2  # duplicates fold; both kernels must agree on the folding

        per_kernel = {}
        for name in ("array", "tuple"):
            monkeypatch.setenv("REPRO_POWER_KERNEL", name)
            records: dict = {}
            solve_batch(instances, solver="min_power", records_out=records)
            from repro.perf.stats import ParetoDPStats

            agg = ParetoDPStats()
            for record in records.values():
                agg.absorb(record["dp_stats"])
            per_kernel[name] = agg

        arr, tup = per_kernel["array"], per_kernel["tuple"]
        assert arr.kernel_solves == {"array": 3}
        assert tup.kernel_solves == {"tuple": 3}
        assert sum(arr.kernel_solves.values()) == sum(
            tup.kernel_solves.values()
        )
        for field in ("merges", "labels_created", "labels_kept"):
            assert getattr(arr, field) == getattr(tup, field), field

    def test_perf_empty_without_power_traffic(self):
        instance = _instance(seed=29, n_nodes=20)

        async def run():
            async with BatchServer(max_delay=0.01) as server:
                host, port = await server.listen()
                client = await ServeClient.connect(host, port)
                try:
                    await client.solve(instance, solver="dp")
                    return await client.perf()
                finally:
                    await client.close()

        perf = asyncio.run(run())
        # MinCost records carry no kernel counters; serving stats do.
        assert perf["kernel"] == {}
        assert perf["serve"]["policies"]["dp"]["requests"] == 1
