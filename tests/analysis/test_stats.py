"""Tests for :mod:`repro.analysis.stats`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import histogram_counts, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.std == pytest.approx(1.0)
        assert s.stderr == pytest.approx(1.0 / math.sqrt(3))

    def test_single_sample(self):
        s = summarize([4.2])
        assert (s.std, s.stderr) == (0.0, 0.0)

    def test_empty(self):
        s = summarize([])
        assert s.n == 0
        assert math.isnan(s.mean)

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_bounds(self, xs):
        s = summarize(xs)
        # Up to one ulp of float rounding in the mean accumulation.
        tol = 1e-12 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.std >= 0.0


class TestHistogramCounts:
    def test_basic(self):
        h = histogram_counts([1, 1, 3])
        assert h == {1: 2, 2: 0, 3: 1}

    def test_explicit_range_pads(self):
        h = histogram_counts([1], lo=0, hi=2)
        assert h == {0: 0, 1: 1, 2: 0}

    def test_empty(self):
        assert histogram_counts([]) == {}

    def test_values_outside_range_counted(self):
        h = histogram_counts([5], lo=0, hi=2)
        assert h[5] == 1
