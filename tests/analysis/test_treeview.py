"""Tests for :mod:`repro.analysis.treeview`."""

from __future__ import annotations

from repro.analysis.treeview import render_tree
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree


class TestRenderTree:
    def test_structure_lines(self, chain_tree):
        out = render_tree(chain_tree)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("n0")
        assert "`- n1" in lines[1]
        assert "`- n2" in lines[2]

    def test_annotations(self, chain_tree):
        out = render_tree(
            chain_tree,
            replicas=[0],
            preexisting=[1],
            loads={0: 9},
            modes={0: 1},
        )
        assert "n0 [R] @W2" in out
        assert "<=9" in out
        assert "(pre)" in out
        assert "c:3" in out  # client annotation on node 1

    def test_mode_marks_node_as_replica(self, chain_tree):
        out = render_tree(chain_tree, modes={2: 0})
        assert "n2 [R] @W1" in out

    def test_siblings_use_tee_connectors(self, star5_tree):
        out = render_tree(star5_tree)
        assert "|- n1" in out
        assert "`- n5" in out

    def test_truncation(self):
        tree = paper_tree(50, rng=0)
        out = render_tree(tree, max_nodes=10)
        assert out.count("\n") <= 11
        assert "..." in out

    def test_single_node(self):
        out = render_tree(Tree([None], [Client(0, 3)]))
        assert out == "n0 c:3"
