"""Tests for :mod:`repro.analysis.ascii_plot`."""

from __future__ import annotations

from repro.analysis.ascii_plot import bar_plot, line_plot


class TestLinePlot:
    def test_renders_markers_and_legend(self):
        out = line_plot(
            {"DP": [(0, 0.0), (1, 1.0)], "GR": [(0, 0.5), (1, 0.5)]},
            title="demo", xlabel="x", ylabel="y",
        )
        assert "demo" in out
        assert "o=DP" in out and "x=GR" in out
        assert "o" in out and "x" in out
        assert "x: x" in out and "y: y" in out

    def test_empty(self):
        assert "(no data)" in line_plot({"DP": []})

    def test_nan_points_skipped(self):
        out = line_plot({"A": [(0, float("nan")), (1, 2.0)]})
        assert "2" in out

    def test_constant_series(self):
        out = line_plot({"A": [(0, 1.0), (5, 1.0)]})
        assert "o" in out

    def test_single_point(self):
        out = line_plot({"A": [(3, 4.0)]})
        assert "o" in out

    def test_grid_dimensions(self):
        out = line_plot({"A": [(0, 0.0), (1, 1.0)]}, width=30, height=5)
        data_rows = [l for l in out.splitlines() if "|" in l and "=" not in l]
        assert len(data_rows) == 5


class TestBarPlot:
    def test_bars_scaled_to_peak(self):
        out = bar_plot({0: 1.0, 1: 2.0}, width=10, title="hist")
        assert "hist" in out
        lines = out.splitlines()
        assert lines[2].count("#") == 10  # peak value fills the width
        assert lines[1].count("#") == 5

    def test_keys_sorted(self):
        out = bar_plot({2: 1.0, -1: 1.0, 0: 1.0})
        idx = [out.index(s) for s in ("-1", " 0 ", " 2 ")]
        assert idx == sorted(idx)

    def test_empty(self):
        assert "(no data)" in bar_plot({})

    def test_xlabel(self):
        assert "(x: gap)" in bar_plot({0: 1.0}, xlabel="gap")
