"""Tests for :mod:`repro.analysis.tables`."""

from __future__ import annotations

import csv
import io

from repro.analysis.tables import format_table, to_csv


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(("name", "value"), [("a", 1), ("bb", 2.5)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert "2.500" in lines[3]

    def test_float_format_override(self):
        out = format_table(("x",), [(1.23456,)], float_fmt="{:.1f}")
        assert "1.2" in out

    def test_wide_cells_stretch_columns(self):
        out = format_table(("h",), [("a-very-long-cell",)])
        assert "a-very-long-cell" in out

    def test_bools_not_float_formatted(self):
        out = format_table(("flag",), [(True,)])
        assert "True" in out

    def test_empty_rows(self):
        out = format_table(("a", "b"), [])
        assert len(out.splitlines()) == 2


class TestToCsv:
    def test_round_trips_through_csv_reader(self):
        text = to_csv(("a", "b"), [(1, "x"), (2, "y,z")])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "x"], ["2", "y,z"]]
