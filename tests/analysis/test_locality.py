"""Tests for :mod:`repro.analysis.locality`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.analysis.locality import locality_report
from repro.core.dp_nopre import dp_nopre_placement
from repro.exceptions import InfeasibleError
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestLocalityReport:
    def test_root_serving_everything(self, chain_tree):
        rep = locality_report(chain_tree, [0])
        # clients at depths 0,1,2 with volumes 2,3,4 -> hops 0,1,2
        assert rep.hop_histogram == {0: 2, 1: 3, 2: 4}
        assert rep.served_requests == 9
        assert rep.mean_hops == pytest.approx((0 * 2 + 1 * 3 + 2 * 4) / 9)
        assert rep.max_hops == 2

    def test_local_servers_zero_hops(self, chain_tree):
        rep = locality_report(chain_tree, [0, 1, 2])
        assert rep.hop_histogram == {0: 9}
        assert rep.mean_hops == 0.0
        assert rep.fraction_within(0) == 1.0

    def test_unserved_tracked(self, chain_tree):
        rep = locality_report(chain_tree, [2])
        assert rep.unserved_requests == 5
        assert rep.served_requests == 4

    def test_empty_placement(self, chain_tree):
        rep = locality_report(chain_tree, [])
        assert math.isnan(rep.mean_hops)
        assert rep.unserved_requests == 9

    def test_fraction_within(self, chain_tree):
        rep = locality_report(chain_tree, [0])
        assert rep.fraction_within(0) == pytest.approx(2 / 9)
        assert rep.fraction_within(1) == pytest.approx(5 / 9)
        assert rep.fraction_within(5) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=10, max_requests=6))
    def test_served_plus_unserved_is_total(self, tree):
        try:
            placement = dp_nopre_placement(tree, 10)
        except InfeasibleError:
            return
        rep = locality_report(tree, placement.replicas)
        assert rep.served_requests + rep.unserved_requests == tree.total_requests
        assert rep.unserved_requests == 0  # valid placements serve everyone
        assert rep.max_hops <= tree.height
