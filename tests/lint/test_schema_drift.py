"""The schema-drift rule: wire surfaces pinned against version bumps.

The acceptance shape: editing a ``to_records`` field set without
bumping the governing schema constant (``CACHE_SCHEMA`` here) must make
the rule fail; bumping the constant switches the failure to the
"refresh the baseline" reminder; regenerating the baseline makes the
run clean again.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint.framework import LintConfig, ModuleInfo, get_rule, run_rules
from repro.lint.rules.schema_drift import fingerprint_project, write_baseline

import repro.lint.rules  # noqa: F401

REL = "src/repro/power/serialize.py"

BASE_SOURCE = """
    CACHE_SCHEMA = 1

    class Frontier:
        def to_records(self):
            return [
                {"gain": p.gain, "power": p.power}
                for p in self.points
            ]
"""

# Same surface with an extra wire field — the drift under test.
DRIFTED_SOURCE = BASE_SOURCE.replace(
    '{"gain": p.gain, "power": p.power}',
    '{"gain": p.gain, "power": p.power, "mode": p.mode}',
)

BUMPED_SOURCE = DRIFTED_SOURCE.replace("CACHE_SCHEMA = 1", "CACHE_SCHEMA = 2")


def module_from(source: str) -> ModuleInfo:
    return ModuleInfo(Path(REL), REL, textwrap.dedent(source))


def lint_against(tmp_path: Path, source: str, *, write: bool = False) -> list:
    config = LintConfig(
        baseline_path=tmp_path / "schema_fingerprint.json",
        write_schema_baseline=write,
    )
    return run_rules([module_from(source)], [get_rule("schema-drift")], config)


class TestSchemaDrift:
    def test_missing_baseline_fires(self, tmp_path):
        found = lint_against(tmp_path, BASE_SOURCE)
        assert len(found) == 1
        assert "baseline missing" in found[0].message

    def test_write_baseline_then_clean(self, tmp_path):
        assert lint_against(tmp_path, BASE_SOURCE, write=True) == []
        assert (tmp_path / "schema_fingerprint.json").exists()
        assert lint_against(tmp_path, BASE_SOURCE) == []

    def test_field_edit_without_bump_fires(self, tmp_path):
        lint_against(tmp_path, BASE_SOURCE, write=True)
        found = lint_against(tmp_path, DRIFTED_SOURCE)
        assert len(found) == 1
        assert "without any schema version bump" in found[0].message
        assert "to_records" in found[0].message
        assert found[0].path == REL

    def test_field_edit_with_bump_demands_baseline_refresh(self, tmp_path):
        lint_against(tmp_path, BASE_SOURCE, write=True)
        found = lint_against(tmp_path, BUMPED_SOURCE)
        assert found  # still nonzero: the committed baseline is stale
        assert all("refresh" in f.message for f in found)

    def test_bump_plus_regenerated_baseline_clean(self, tmp_path):
        lint_against(tmp_path, BASE_SOURCE, write=True)
        assert lint_against(tmp_path, BUMPED_SOURCE, write=True) == []
        assert lint_against(tmp_path, BUMPED_SOURCE) == []

    def test_formatting_only_change_clean(self, tmp_path):
        lint_against(tmp_path, BASE_SOURCE, write=True)
        reformatted = BASE_SOURCE.replace(
            '{"gain": p.gain, "power": p.power}',
            '{"gain": p.gain,  "power": p.power}',  # whitespace only
        )
        assert lint_against(tmp_path, reformatted) == []

    def test_fingerprint_tracks_digest_fields(self):
        source = """
            class Policy:
                record_schema = 1
                digest_fields = frozenset({"capacity", "preexisting"})

                def result_to_wire(self, result):
                    return {"schema": self.record_schema}
        """
        fp = fingerprint_project(
            [ModuleInfo(Path(REL), "src/repro/batch/registry.py",
                        textwrap.dedent(source))]
        )
        surfaces = fp["surfaces"]
        versions = fp["versions"]
        assert any(k.endswith("Policy.digest_fields") for k in surfaces)
        assert any(k.endswith("Policy.result_to_wire") for k in surfaces)
        assert any(k.endswith("Policy.record_schema") for k in versions)

    def test_baseline_file_shape(self, tmp_path):
        fp = fingerprint_project([module_from(BASE_SOURCE)])
        path = tmp_path / "schema_fingerprint.json"
        write_baseline(path, fp)
        data = json.loads(path.read_text())
        assert set(data) == {"schema", "surfaces", "versions"}
        assert any(k.endswith("CACHE_SCHEMA") for k in data["versions"])


class TestRepoBaseline:
    """The committed baseline matches the sources in this repository."""

    def test_repo_fingerprint_matches_committed_baseline(self):
        root = Path(__file__).resolve().parents[2]
        baseline = root / "baselines" / "schema_fingerprint.json"
        assert baseline.exists(), "run `repro lint --write-schema-baseline`"
        from repro.lint.runner import collect_files, load_modules

        modules, errors = load_modules(collect_files([root / "src"]), root)
        assert errors == []
        current = fingerprint_project(modules)
        committed = json.loads(baseline.read_text())
        assert current == committed
        # The envelope + frontier surfaces the rule exists for are pinned.
        assert any(
            k.endswith("_envelope") for k in committed["surfaces"]
        )
        assert any(
            k.endswith("PowerFrontier.to_records") for k in committed["surfaces"]
        )
        assert any(
            k.endswith("CACHE_SCHEMA") for k in committed["versions"]
        )
