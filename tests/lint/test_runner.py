"""Runner behaviour: clean-repo run, exit codes, reporters, CLI wiring."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.framework import LintConfig
from repro.lint.runner import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    collect_files,
    load_modules,
    run,
)

ROOT = Path(__file__).resolve().parents[2]


def repo_config() -> LintConfig:
    return LintConfig(baseline_path=ROOT / "baselines" / "schema_fingerprint.json")


class TestCleanRepo:
    """The repository itself lints clean — the rules' false-positive gate."""

    def test_src_is_clean(self, capsys):
        code = run([ROOT / "src"], root=ROOT, config=repo_config())
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN, out
        assert "clean" in out

    def test_json_report_shape(self, capsys):
        code = run(
            [ROOT / "src"], root=ROOT, config=repo_config(), output="json"
        )
        assert code == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []


class TestExitCodes:
    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "batch" / "canonical.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n\ndef digest():\n    return time.time()\n"
        )
        code = run(
            [bad],
            root=tmp_path,
            select=["determinism"],
            config=LintConfig(baseline_path=tmp_path / "fp.json"),
        )
        out = capsys.readouterr().out
        assert code == EXIT_FINDINGS
        assert "determinism" in out
        assert "1 finding" in out

    def test_unknown_rule_is_usage_error(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("x = 1\n")
        assert run([f], root=tmp_path, select=["nope"]) == EXIT_ERROR

    def test_no_files_is_usage_error(self, tmp_path):
        assert run([tmp_path / "absent"], root=tmp_path) == EXIT_ERROR

    def test_syntax_error_becomes_finding(self, tmp_path, capsys):
        f = tmp_path / "broken.py"
        f.write_text("def nope(:\n")
        code = run(
            [f], root=tmp_path, config=LintConfig(baseline_path=tmp_path / "fp")
        )
        out = capsys.readouterr().out
        assert code == EXIT_FINDINGS
        assert "parse-error" in out


class TestCollection:
    def test_skips_pycache_and_dedups(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "a.py").write_text("a = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = collect_files([tmp_path / "pkg", tmp_path / "pkg" / "a.py"])
        assert [f.name for f in files] == ["a.py"]

    def test_load_modules_reports_relpaths(self, tmp_path):
        f = tmp_path / "sub" / "m.py"
        f.parent.mkdir()
        f.write_text("x = 1\n")
        modules, errors = load_modules([f], tmp_path)
        assert errors == []
        assert modules[0].relpath == "sub/m.py"


class TestCliIntegration:
    def test_repro_lint_subcommand_clean(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(ROOT)
        code = main(["lint", "src"])
        assert code == EXIT_CLEAN, capsys.readouterr().out

    def test_module_entry_point_list_rules(self, capsys):
        from repro.lint.runner import main as lint_main

        assert lint_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in (
            "determinism",
            "async-blocking",
            "float-eq",
            "schema-drift",
            "picklable",
            "lock-discipline",
        ):
            assert rule_id in out

    def test_select_subset(self, capsys):
        code = run(
            [ROOT / "src" / "repro" / "batch" / "cache.py"],
            root=ROOT,
            select=["lock-discipline"],
            config=repo_config(),
        )
        assert code == EXIT_CLEAN, capsys.readouterr().out


@pytest.mark.parametrize(
    "relpath",
    [
        "src/repro/batch/cache.py",
        "src/repro/batch/canonical.py",
        "src/repro/power/dp_power_pareto.py",
        "src/repro/serve/server.py",
    ],
)
def test_critical_modules_individually_clean(relpath, capsys):
    """The modules the rules were designed around pass one by one."""
    code = run([ROOT / relpath], root=ROOT, config=repo_config())
    assert code == EXIT_CLEAN, capsys.readouterr().out
