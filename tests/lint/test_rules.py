"""Every lint rule: a known-bad fixture that must fire, and clean
counter-fixtures that must not.

The bad fixtures replay the repository's historical bug shapes — the
PR 5 ``p == 0.0`` alias conflation and the PR 3 frontier-drop (equal
keys discarded with a bare ``==`` during a dominance merge) — so the
rules demonstrably catch the classes of bug they were written for.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.framework import LintConfig, ModuleInfo, get_rule, run_rules

# Importing the rules package registers everything.
import repro.lint.rules  # noqa: F401


def make_module(source: str, relpath: str) -> ModuleInfo:
    return ModuleInfo(Path(relpath), relpath, textwrap.dedent(source))


def findings_for(rule_id: str, source: str, relpath: str) -> list:
    module = make_module(source, relpath)
    return run_rules([module], [get_rule(rule_id)], LintConfig())


class TestDeterminism:
    REL = "src/repro/batch/canonical.py"

    def test_clock_call_fires(self):
        src = """
            import time

            def digest(payload):
                payload["stamp"] = time.time()
                return payload
        """
        found = findings_for("determinism", src, self.REL)
        assert len(found) == 1
        assert "time.time" in found[0].message

    def test_random_call_fires(self):
        src = """
            import random

            def salt():
                return random.random()
        """
        assert findings_for("determinism", src, self.REL)

    def test_set_iteration_fires(self):
        src = """
            def serialise(items):
                return [v for v in set(items)]
        """
        found = findings_for("determinism", src, self.REL)
        assert len(found) == 1
        assert "sorted" in found[0].message

    def test_sorted_set_iteration_clean(self):
        src = """
            def serialise(items):
                return [v for v in sorted(set(items))]
        """
        assert findings_for("determinism", src, self.REL) == []

    def test_unsorted_json_dumps_fires(self):
        src = """
            import json

            def to_json(payload):
                return json.dumps(payload)
        """
        found = findings_for("determinism", src, self.REL)
        assert len(found) == 1
        assert "sort_keys" in found[0].message

    def test_sorted_json_dumps_clean(self):
        src = """
            import json

            def to_json(payload):
                return json.dumps(payload, sort_keys=True)
        """
        assert findings_for("determinism", src, self.REL) == []

    def test_rule_scoped_to_serialise_modules(self):
        src = """
            import time

            def now():
                return time.time()
        """
        # Same source in a non-digest module: out of scope.
        assert findings_for("determinism", src, "src/repro/cli.py") == []


class TestAsyncBlocking:
    REL = "src/repro/serve/server.py"

    def test_time_sleep_fires(self):
        src = """
            import time

            async def handler():
                time.sleep(1)
        """
        found = findings_for("async-blocking", src, self.REL)
        assert len(found) == 1
        assert "time.sleep" in found[0].message

    def test_sync_open_fires(self):
        src = """
            async def handler(path):
                with open(path) as fh:
                    return fh.read()
        """
        assert findings_for("async-blocking", src, self.REL)

    def test_direct_solver_call_fires(self):
        src = """
            from repro.batch.executor import solve_batch

            async def handler(instances):
                return solve_batch(instances)
        """
        found = findings_for("async-blocking", src, self.REL)
        assert len(found) == 1
        assert "solve_batch" in found[0].message

    def test_policy_solve_fires(self):
        src = """
            async def handler(policy, payload):
                return policy.solve(payload)
        """
        assert findings_for("async-blocking", src, self.REL)

    def test_executor_handoff_clean(self):
        src = """
            import asyncio
            import functools

            async def handler(loop, policy, payload):
                return await loop.run_in_executor(
                    None, functools.partial(policy.solve, payload)
                )
        """
        assert findings_for("async-blocking", src, self.REL) == []

    def test_local_coroutine_call_clean(self):
        # Regression: ServeClient.solve_many fans out via its own async
        # solve(); creating coroutines does not block the loop.
        src = """
            import asyncio

            class Client:
                async def solve(self, instance):
                    return instance

                async def solve_many(self, instances):
                    return await asyncio.gather(
                        *(self.solve(i) for i in instances)
                    )
        """
        assert findings_for("async-blocking", src, self.REL) == []

    def test_sync_function_out_of_scope(self):
        src = """
            import time

            def not_async():
                time.sleep(1)
        """
        assert findings_for("async-blocking", src, self.REL) == []


class TestFloatEquality:
    REL = "src/repro/power/dp_power_pareto.py"

    def test_pr5_alias_shape_fires(self):
        # The PR 5 bug: keying the alias fast path on p == 0.0 conflates
        # "no placement" with a genuinely zero-power mode.
        src = """
            def merge(front):
                out = []
                for g, p, r in front:
                    if p == 0.0:
                        continue
                    out.append((g, p, r))
                return out
        """
        found = findings_for("float-eq", src, self.REL)
        assert len(found) == 1
        assert "epsilon" in found[0].message

    def test_pr3_frontier_drop_shape_fires(self):
        # The PR 3 bug shape: discarding frontier points whose cost ties
        # the incumbent with a bare equality during a dominance merge.
        src = """
            def sweep(points):
                best_cost = None
                kept = []
                for cost, power in points:
                    if best_cost is not None and cost == best_cost:
                        continue
                    best_cost = cost
                    kept.append((cost, power))
                return kept
        """
        assert findings_for("float-eq", src, self.REL)

    def test_integer_comparisons_clean(self):
        src = """
            def route(flow, labels):
                if flow == 0:
                    return None
                return len(labels) == 1
        """
        assert findings_for("float-eq", src, self.REL) == []

    def test_epsilon_comparison_clean(self):
        src = """
            _EPS = 1e-9

            def close(a_cost, b_cost):
                return abs(a_cost - b_cost) <= _EPS
        """
        assert findings_for("float-eq", src, self.REL) == []

    def test_audited_suppression_honoured(self):
        src = """
            def fast_path(p, alias_p):
                return p == alias_p  # repro-lint: ignore[float-eq]
        """
        assert findings_for("float-eq", src, self.REL) == []

    def test_array_kernel_module_in_scope(self):
        # PR 7: the structure-of-arrays kernel carries the same bug
        # shape; its scalar float comparisons are linted too.
        src = """
            def fast_path(p0, alias_p):
                return p0 == alias_p
        """
        rel = "src/repro/power/dp_power_array.py"
        found = findings_for("float-eq", src, rel)
        assert len(found) == 1
        assert "epsilon" in found[0].message

    def test_ndarray_mask_comparisons_exempt(self):
        # Elementwise ndarray comparisons build boolean masks — a
        # vectorised select, not a scalar float equality.  Names follow
        # the array kernel's ndarray suffix convention.
        src = """
            import numpy as np

            def select(g_col, p_cols, flow_arr, keep_mask, row_ids):
                a = g_col == 0.0
                b = p_cols != flow_arr
                c = keep_mask == row_ids
                return a & b & c
        """
        rel = "src/repro/power/dp_power_array.py"
        assert findings_for("float-eq", src, rel) == []

    def test_scalar_float_next_to_masks_still_fires(self):
        # The exemption is per-comparison: a scalar float equality in
        # the same module (even the same function) is still flagged.
        src = """
            def mixed(g_col, power, eps):
                mask = g_col == 0.0
                return mask.any() and power == eps
        """
        rel = "src/repro/power/dp_power_array.py"
        assert len(findings_for("float-eq", src, rel)) == 1


class TestPicklable:
    REL = "src/repro/batch/executor.py"

    def test_lambda_submit_fires(self):
        src = """
            def run(pool, chunks):
                return [pool.submit(lambda c: c, c) for c in chunks]
        """
        found = findings_for("picklable", src, self.REL)
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_closure_handoff_fires(self):
        src = """
            def run(pool, chunks, bound):
                def solve_chunk(chunk):
                    return [c for c in chunk if c <= bound]
                return list(pool.map(solve_chunk, chunks))
        """
        found = findings_for("picklable", src, self.REL)
        assert len(found) == 1
        assert "closure" in found[0].message

    def test_partial_of_lambda_fires(self):
        src = """
            import functools

            async def run(loop, executor, payload):
                fn = lambda p: p
                return await loop.run_in_executor(
                    executor, functools.partial(fn, payload)
                )
        """
        assert findings_for("picklable", src, self.REL)

    def test_module_level_function_clean(self):
        src = """
            def solve_chunk(chunk):
                return chunk

            def run(pool, chunks):
                return list(pool.map(solve_chunk, chunks))
        """
        assert findings_for("picklable", src, self.REL) == []

    def test_builtin_map_not_confused(self):
        src = """
            def run(chunks):
                return list(map(lambda c: c, chunks))
        """
        assert findings_for("picklable", src, self.REL) == []


class TestLockDiscipline:
    REL = "src/repro/batch/cache.py"

    def test_unguarded_mutation_fires(self):
        src = """
            import threading
            from collections import OrderedDict

            class Cache:
                def __init__(self):
                    self._mutex = threading.RLock()
                    self._lru = OrderedDict()

                def put(self, key, value):
                    self._lru[key] = value
        """
        found = findings_for("lock-discipline", src, self.REL)
        assert len(found) == 1
        assert "_lru" in found[0].message

    def test_guarded_mutation_clean(self):
        src = """
            import threading
            from collections import OrderedDict

            class Cache:
                def __init__(self):
                    self._mutex = threading.RLock()
                    self._lru = OrderedDict()

                def put(self, key, value):
                    with self._mutex:
                        self._lru[key] = value
        """
        assert findings_for("lock-discipline", src, self.REL) == []

    def test_always_held_helper_clean(self):
        # The real cache factors mutations into _insert(), called only
        # with the mutex held — the fixpoint must prove that safe.
        src = """
            import threading
            from collections import OrderedDict

            class Cache:
                def __init__(self):
                    self._mutex = threading.RLock()
                    self._lru = OrderedDict()

                def put(self, key, value):
                    with self._mutex:
                        self._insert(key, value)

                def get(self, key):
                    with self._mutex:
                        self._insert(key, None)
                        return self._lru.get(key)

                def _insert(self, key, value):
                    self._lru[key] = value
                    self._lru.move_to_end(key)
        """
        assert findings_for("lock-discipline", src, self.REL) == []

    def test_helper_with_unguarded_call_site_fires(self):
        src = """
            import threading
            from collections import OrderedDict

            class Cache:
                def __init__(self):
                    self._mutex = threading.RLock()
                    self._lru = OrderedDict()

                def put(self, key, value):
                    with self._mutex:
                        self._insert(key, value)

                def put_fast(self, key, value):
                    self._insert(key, value)

                def _insert(self, key, value):
                    self._lru[key] = value
        """
        found = findings_for("lock-discipline", src, self.REL)
        assert len(found) == 1
        assert "_insert" in found[0].message

    def test_mutating_method_call_fires(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._mutex = threading.RLock()
                    self._disk = {}

                def evict(self, key):
                    self._disk.pop(key, None)
        """
        assert findings_for("lock-discipline", src, self.REL)

    def test_init_mutations_exempt(self):
        src = """
            import threading

            class Cache:
                def __init__(self, seed):
                    self._mutex = threading.RLock()
                    self._disk = {}
                    self._disk.update(seed)
        """
        assert findings_for("lock-discipline", src, self.REL) == []


class TestSuppressions:
    REL = "src/repro/batch/canonical.py"

    def test_inline_suppression(self):
        src = """
            import time

            def digest():
                return time.time()  # repro-lint: ignore[determinism]
        """
        assert findings_for("determinism", src, self.REL) == []

    def test_line_above_suppression(self):
        src = """
            import time

            def digest():
                # repro-lint: ignore[determinism]
                return time.time()
        """
        assert findings_for("determinism", src, self.REL) == []

    def test_bare_ignore_suppresses_all(self):
        src = """
            import time

            def digest():
                return time.time()  # repro-lint: ignore
        """
        assert findings_for("determinism", src, self.REL) == []

    def test_other_rule_id_does_not_suppress(self):
        src = """
            import time

            def digest():
                return time.time()  # repro-lint: ignore[float-eq]
        """
        assert len(findings_for("determinism", src, self.REL)) == 1


class TestUnknownRule:
    def test_get_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("no-such-rule")
