"""Tests for :mod:`repro.perf` (solver instrumentation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.perf import (
    CoreDPStats,
    ParetoDPStats,
    instrument_pareto_frontier,
    instrument_replica_update,
)
from repro.power import PowerModel
from repro.power.dp_power_pareto import power_frontier
from repro.power.modes import ModeSet
from repro.tree.generators import paper_tree, random_preexisting, random_preexisting_modes

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


class TestCoreDPStats:
    def test_counts_populated(self, rng):
        tree = paper_tree(40, rng=rng)
        pre = random_preexisting(tree, 10, rng=rng)
        result, stats = instrument_replica_update(tree, 10, pre)
        assert stats.merges == 39  # one merge per non-root internal child
        assert stats.total_cells > 0
        assert stats.max_cells <= (11) * (31)  # bounded by (E+1)(N-E+1)
        assert stats.max_e_dim <= 11
        assert result.n_replicas > 0

    def test_stats_do_not_change_result(self, rng):
        tree = paper_tree(30, rng=rng)
        pre = random_preexisting(tree, 8, rng=rng)
        plain = replica_update(tree, 10, pre)
        instrumented, _ = instrument_replica_update(tree, 10, pre)
        assert plain.replicas == instrumented.replicas
        assert plain.cost == instrumented.cost

    def test_grows_with_preexisting(self):
        tree = paper_tree(60, rng=np.random.default_rng(4))
        _, small = instrument_replica_update(
            tree, 10, random_preexisting(tree, 5, rng=1)
        )
        _, large = instrument_replica_update(
            tree, 10, random_preexisting(tree, 40, rng=1)
        )
        assert large.total_cells > small.total_cells

    def test_as_dict_keys(self):
        d = CoreDPStats().as_dict()
        assert set(d) == {"merges", "total_cells", "max_cells", "max_e_dim", "max_n_dim"}


class TestParetoDPStats:
    def test_counts_populated(self, rng):
        tree = paper_tree(40, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, 5, 2, rng=rng, mode=1)
        frontier, stats = instrument_pareto_frontier(tree, PM, CM, pre)
        # One merge per (parent, child) edge of every *visited* subtree;
        # AHU-memoized subtrees are answered without merging.
        assert 0 < stats.merges <= 39
        assert stats.merges + stats.memo_hits >= 1
        assert stats.labels_created >= stats.labels_kept > 0
        assert stats.labels_created >= stats.labels_generated
        assert stats.merge_rejected >= 0
        assert 0.0 <= stats.prune_ratio < 1.0
        assert 0.0 <= stats.generation_ratio <= 1.0
        assert stats.max_flow_keys <= PM.modes.max_capacity + 1
        assert len(frontier) > 0

    def test_stats_do_not_change_frontier(self, rng):
        tree = paper_tree(30, request_range=(1, 5), rng=rng)
        plain = power_frontier(tree, PM, CM).pairs()
        frontier, _ = instrument_pareto_frontier(tree, PM, CM)
        assert frontier.pairs() == plain

    def test_pruning_actually_prunes(self, rng):
        tree = paper_tree(60, request_range=(1, 5), rng=rng)
        _, stats = instrument_pareto_frontier(tree, PM, CM)
        assert stats.prune_ratio > 0.1  # dominance removes a real fraction

    def test_empty_prune_ratio(self):
        stats = ParetoDPStats()
        assert stats.prune_ratio == 0.0
        assert stats.generation_ratio == 0.0
        assert stats.memo_hit_rate == 0.0

    def test_memo_counters_on_repetitive_tree(self):
        from repro.tree.model import Client, Tree

        parents: list[int | None] = [None]
        clients = []
        for _ in range(3):
            hub = len(parents)
            parents.append(0)
            for _ in range(3):
                leaf = len(parents)
                parents.append(hub)
                clients.append(Client(leaf, 2))
        tree = Tree(parents, clients)
        _, stats = instrument_pareto_frontier(tree, PM, CM)
        assert stats.memo_hits >= 2
        assert stats.memo_labels_shared > 0
        assert stats.memo_hit_rate > 0.0

    def test_as_dict_roundtrips_through_absorb(self, rng):
        tree = paper_tree(25, request_range=(1, 5), rng=rng)
        _, stats = instrument_pareto_frontier(tree, PM, CM)
        agg = ParetoDPStats().absorb(stats.as_dict())
        for key, value in stats.as_dict().items():
            assert agg.as_dict()[key] == value


class TestIdleQuantilesAreNull:
    """Idle serving windows report ``null`` quantiles, never a fake 0.0
    (a 0.0 p99 reads as 'instant', not 'no traffic')."""

    def test_policy_serve_stats_idle(self):
        from repro.perf.stats import PolicyServeStats

        stats = PolicyServeStats()
        assert stats.latency_quantile(0.5) is None
        assert stats.latency_quantile(0.99) is None
        payload = stats.as_dict()
        assert payload["p50_latency"] is None
        assert payload["p99_latency"] is None

    def test_policy_serve_stats_with_traffic(self):
        from repro.perf.stats import PolicyServeStats

        stats = PolicyServeStats()
        stats.record_latency(0.010)
        stats.record_latency(0.020)
        p50 = stats.latency_quantile(0.5)
        assert p50 is not None and 0.009 < p50 < 0.021
        assert isinstance(stats.as_dict()["p99_latency"], float)

    def test_session_serve_stats_idle(self):
        from repro.perf.stats import SessionServeStats

        stats = SessionServeStats()
        assert stats.latency_quantile(0.5) is None
        assert stats.as_dict()["p50_delta_latency"] is None

    def test_session_serve_stats_with_traffic(self):
        from repro.perf.stats import SessionServeStats

        stats = SessionServeStats()
        stats.record_apply(deltas=1, reused=2, invalidated=1, seconds=0.01)
        assert stats.latency_quantile(0.5) == pytest.approx(0.01)


class TestClusterStats:
    def test_worker_collectors_auto_created_and_sorted(self):
        from repro.perf.stats import ClusterStats

        stats = ClusterStats()
        stats.worker("w1").routed += 2
        stats.worker("w0").sheds += 1
        stats.worker("w1").deaths += 1
        payload = stats.as_dict()
        assert list(payload["workers"]) == ["w0", "w1"]
        assert payload["workers"]["w1"] == {
            "routed": 2, "sheds": 0, "timeouts": 0, "errors": 0,
            "deaths": 1, "respawns": 0,
        }
        assert payload["rejected"] == 0 and payload["lost_sessions"] == 0
