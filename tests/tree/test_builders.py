"""Tests for :mod:`repro.tree.builders`."""

from __future__ import annotations

import pytest

from repro.exceptions import TreeStructureError, WorkloadError
from repro.tree.builders import TreeBuilder


class TestTreeBuilder:
    def test_basic_build(self):
        b = TreeBuilder()
        r = b.add_root()
        a = b.add_node(r)
        b.add_client(a, 4)
        t = b.build()
        assert t.n_nodes == 2
        assert t.parent(a) == r
        assert t.client_load(a) == 4

    def test_add_nodes_batch(self):
        b = TreeBuilder()
        r = b.add_root()
        kids = b.add_nodes(r, 4)
        assert kids == [1, 2, 3, 4]
        t = b.build()
        assert t.children(r) == (1, 2, 3, 4)

    def test_n_nodes_tracks_growth(self):
        b = TreeBuilder()
        assert b.n_nodes == 0
        b.add_root()
        assert b.n_nodes == 1

    def test_double_root_rejected(self):
        b = TreeBuilder()
        b.add_root()
        with pytest.raises(TreeStructureError, match="root already exists"):
            b.add_root()

    def test_node_before_root_rejected(self):
        with pytest.raises(TreeStructureError, match="add_root"):
            TreeBuilder().add_node(0)

    def test_unknown_parent_rejected(self):
        b = TreeBuilder()
        b.add_root()
        with pytest.raises(TreeStructureError, match="unknown parent"):
            b.add_node(5)

    def test_client_on_unknown_node_rejected(self):
        b = TreeBuilder()
        b.add_root()
        with pytest.raises(WorkloadError, match="unknown node"):
            b.add_client(3, 1)

    def test_client_validation_delegated(self):
        b = TreeBuilder()
        b.add_root()
        with pytest.raises(WorkloadError):
            b.add_client(0, 0)

    def test_builder_reusable_for_multiple_builds(self):
        b = TreeBuilder()
        r = b.add_root()
        t1 = b.build()
        b.add_node(r)
        t2 = b.build()
        assert t1.n_nodes == 1 and t2.n_nodes == 2
