"""Tests for :mod:`repro.tree.transform` and the metamorphic suite.

The metamorphic tests are the point of this module: each transformation
has a provable effect on the optimum (usually none), so every solver gets
checked against itself across derived instances — a bug in merge-order
handling, id assumptions or load aggregation shows up as a metamorphic
violation even when direct oracles pass.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import UniformCostModel
from repro.core.dp_nopre import dp_min_replicas
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.transform import relabel, scale_workload, split_client

from tests.conftest import small_trees

MINCOUNT = UniformCostModel(1e-4, 1e-5)


class TestRelabel:
    def test_identity(self, chain_tree):
        t, perm = relabel(chain_tree, [0, 1, 2])
        assert t == chain_tree and perm == [0, 1, 2]

    def test_structure_mapped(self, chain_tree):
        t, perm = relabel(chain_tree, [2, 0, 1])
        # old chain 0->1->2 becomes 2->0->1
        assert t.root == 2
        assert t.parent(0) == 2 and t.parent(1) == 0
        assert t.client_load(2) == chain_tree.client_load(0)

    def test_bad_permutation(self, chain_tree):
        with pytest.raises(ConfigurationError):
            relabel(chain_tree, [0, 0, 1])
        with pytest.raises(ConfigurationError):
            relabel(chain_tree, [0, 1])


class TestScaleWorkload:
    def test_scales_requests(self, chain_tree):
        t = scale_workload(chain_tree, 3)
        assert t.total_requests == chain_tree.total_requests * 3

    def test_factor_one_identity(self, chain_tree):
        assert scale_workload(chain_tree, 1) == chain_tree

    def test_bad_factor(self, chain_tree):
        with pytest.raises(ConfigurationError):
            scale_workload(chain_tree, 0)


class TestSplitClient:
    def test_totals_preserved(self, chain_tree):
        t = split_client(chain_tree, 2, rng=0)
        assert t.total_requests == chain_tree.total_requests
        assert t.n_clients == chain_tree.n_clients + 1
        assert t.client_load(2) == chain_tree.client_load(2)

    def test_single_request_untouched(self):
        from repro.tree.model import Client, Tree

        t = Tree([None], [Client(0, 1)])
        assert split_client(t, 0, rng=0) == t

    def test_bad_index(self, chain_tree):
        with pytest.raises(ConfigurationError):
            split_client(chain_tree, 99)


class TestMetamorphicInvariance:
    """Optima must survive relabeling, scaling and client splitting."""

    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=6), st.randoms())
    def test_relabel_invariance_all_solvers(self, tree, pyrandom):
        perm = list(range(tree.n_nodes))
        pyrandom.shuffle(perm)
        try:
            base = dp_min_replicas(tree, 10)
        except InfeasibleError:
            return
        mapped, pmap = relabel(tree, perm)
        assert dp_min_replicas(mapped, 10) == base
        assert greedy_placement(mapped, 10).n_replicas == base
        assert (
            replica_update(mapped, 10, (), MINCOUNT).n_replicas == base
        )

    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=6), st.integers(2, 5))
    def test_scale_invariance(self, tree, factor):
        try:
            base = dp_min_replicas(tree, 10)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                dp_min_replicas(scale_workload(tree, factor), 10 * factor)
            return
        scaled = scale_workload(tree, factor)
        assert dp_min_replicas(scaled, 10 * factor) == base
        assert greedy_placement(scaled, 10 * factor).n_replicas == base

    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=6), st.integers(0, 100))
    def test_split_client_invariance(self, tree, idx):
        if tree.n_clients == 0:
            return
        try:
            base = dp_min_replicas(tree, 10)
        except InfeasibleError:
            return
        split = split_client(tree, idx % tree.n_clients, rng=idx)
        assert dp_min_replicas(split, 10) == base
        assert greedy_placement(split, 10).n_replicas == base

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=10, max_requests=6), st.randoms())
    def test_relabel_maps_withpre_costs(self, tree, pyrandom):
        perm = list(range(tree.n_nodes))
        pyrandom.shuffle(perm)
        pre = frozenset(v for v in range(0, tree.n_nodes, 2))
        cm = UniformCostModel(0.1, 0.01)
        try:
            base = replica_update(tree, 10, pre, cm)
        except InfeasibleError:
            return
        mapped, pmap = relabel(tree, perm)
        mapped_pre = frozenset(pmap[v] for v in pre)
        got = replica_update(mapped, 10, mapped_pre, cm)
        # Optimal cost is invariant; the witness may differ between ties,
        # so only the objective is pinned.
        assert got.cost == pytest.approx(base.cost)
