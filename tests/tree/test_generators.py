"""Tests for :mod:`repro.tree.generators`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tree.generators import (
    attach_random_clients,
    attach_zipf_clients,
    balanced_tree,
    caterpillar_tree,
    paper_tree,
    path_tree,
    random_preexisting,
    random_preexisting_modes,
    random_recursive_tree,
    star_tree,
)
from repro.tree.metrics import tree_stats


class TestPaperTree:
    def test_exact_node_count(self, rng):
        t = paper_tree(n_nodes=100, rng=rng)
        assert t.n_nodes == 100

    def test_fat_branching_in_range(self, rng):
        t = paper_tree(n_nodes=200, children_range=(6, 9), rng=rng)
        # All internal non-leaves except possibly the last-filled node.
        counts = [len(t.children(v)) for v in range(t.n_nodes)]
        wide = [c for c in counts if c > 0]
        assert max(wide) <= 9
        assert sum(1 for c in wide if c < 6) <= 1

    def test_high_trees_are_taller_than_fat_trees(self):
        fat = paper_tree(100, children_range=(6, 9), rng=np.random.default_rng(0))
        high = paper_tree(100, children_range=(2, 4), rng=np.random.default_rng(0))
        assert high.height > fat.height

    def test_request_range_respected(self, rng):
        t = paper_tree(n_nodes=80, request_range=(1, 6), client_prob=1.0, rng=rng)
        assert t.n_clients == 80
        assert all(1 <= c.requests <= 6 for c in t.clients)

    def test_client_probability_zero_and_one(self, rng):
        assert paper_tree(30, client_prob=0.0, rng=rng).n_clients == 0
        assert paper_tree(30, client_prob=1.0, rng=rng).n_clients == 30

    def test_determinism_by_seed(self):
        a = paper_tree(50, rng=np.random.default_rng(99))
        b = paper_tree(50, rng=np.random.default_rng(99))
        assert a == b

    def test_different_seeds_differ(self):
        a = paper_tree(50, rng=np.random.default_rng(1))
        b = paper_tree(50, rng=np.random.default_rng(2))
        assert a != b

    def test_bad_children_range(self):
        with pytest.raises(ConfigurationError):
            paper_tree(10, children_range=(0, 3))
        with pytest.raises(ConfigurationError):
            paper_tree(10, children_range=(5, 2))

    def test_bad_node_count(self):
        with pytest.raises(ConfigurationError):
            paper_tree(0)


class TestAttachClients:
    def test_bad_probability(self):
        with pytest.raises(ConfigurationError):
            attach_random_clients([None], client_prob=1.5)

    def test_bad_request_range(self):
        with pytest.raises(ConfigurationError):
            attach_random_clients([None], request_range=(0, 3))
        with pytest.raises(ConfigurationError):
            attach_random_clients([None], request_range=(4, 2))


class TestZipfClients:
    def test_range_respected(self):
        parents = [None] + [0] * 200
        t = attach_zipf_clients(parents, client_prob=1.0, max_requests=6, rng=1)
        assert t.n_clients == 201
        assert all(1 <= c.requests <= 6 for c in t.clients)

    def test_heavy_tail_skews_low(self):
        parents = [None] + [0] * 500
        t = attach_zipf_clients(
            parents, client_prob=1.0, max_requests=6, exponent=2.0, rng=2
        )
        ones = sum(1 for c in t.clients if c.requests == 1)
        sixes = sum(1 for c in t.clients if c.requests == 6)
        assert ones > 5 * sixes  # Zipf mass concentrates on small volumes

    def test_deterministic(self):
        parents = [None, 0, 0]
        a = attach_zipf_clients(parents, rng=7)
        b = attach_zipf_clients(parents, rng=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            attach_zipf_clients([None], client_prob=2.0)
        with pytest.raises(ConfigurationError):
            attach_zipf_clients([None], max_requests=0)
        with pytest.raises(ConfigurationError):
            attach_zipf_clients([None], exponent=0.0)

    def test_solvers_handle_zipf_workloads(self):
        from repro.core.dp_nopre import dp_nopre_placement
        from repro.core.greedy import greedy_placement

        parents = [None] + [0] * 3 + [1] * 2 + [2] * 2
        t = attach_zipf_clients(parents, client_prob=1.0, max_requests=6, rng=3)
        gr = greedy_placement(t, 10)
        dp = dp_nopre_placement(t, 10)
        assert gr.n_replicas == dp.n_replicas


class TestShapeGenerators:
    def test_balanced_tree_size(self):
        t = balanced_tree(3, 2)
        assert t.n_nodes == 1 + 3 + 9
        assert t.height == 2

    def test_balanced_tree_height_zero(self):
        assert balanced_tree(3, 0).n_nodes == 1

    def test_balanced_tree_errors(self):
        with pytest.raises(ConfigurationError):
            balanced_tree(0, 2)
        with pytest.raises(ConfigurationError):
            balanced_tree(2, -1)

    def test_path_tree(self):
        t = path_tree(5)
        assert t.n_nodes == 5 and t.height == 4
        assert tree_stats(t).max_branching == 1

    def test_star_tree(self):
        t = star_tree(6)
        assert t.n_nodes == 7 and t.height == 1
        assert len(t.children(0)) == 6

    def test_star_tree_zero_leaves(self):
        assert star_tree(0).n_nodes == 1

    def test_caterpillar(self):
        t = caterpillar_tree(4, legs_per_node=2)
        assert t.n_nodes == 4 + 8
        assert t.height == 4  # spine depth 3 + leg

    def test_caterpillar_errors(self):
        with pytest.raises(ConfigurationError):
            caterpillar_tree(0)
        with pytest.raises(ConfigurationError):
            caterpillar_tree(3, legs_per_node=-1)

    def test_random_recursive_tree(self, rng):
        t = random_recursive_tree(40, rng=rng)
        assert t.n_nodes == 40

    def test_path_errors(self):
        with pytest.raises(ConfigurationError):
            path_tree(0)


class TestPreexistingSamplers:
    def test_counts_and_membership(self, rng):
        t = paper_tree(30, rng=rng)
        pre = random_preexisting(t, 10, rng=rng)
        assert len(pre) == 10
        assert all(0 <= v < 30 for v in pre)

    def test_full_and_empty(self, rng):
        t = paper_tree(12, rng=rng)
        assert random_preexisting(t, 0, rng=rng) == frozenset()
        assert len(random_preexisting(t, 12, rng=rng)) == 12

    def test_count_out_of_range(self, rng):
        t = paper_tree(5, rng=rng)
        with pytest.raises(ConfigurationError):
            random_preexisting(t, 6, rng=rng)
        with pytest.raises(ConfigurationError):
            random_preexisting(t, -1, rng=rng)

    def test_modes_fixed(self, rng):
        t = paper_tree(20, rng=rng)
        pre = random_preexisting_modes(t, 5, 2, rng=rng, mode=1)
        assert len(pre) == 5
        assert set(pre.values()) == {1}

    def test_modes_random_in_range(self, rng):
        t = paper_tree(20, rng=rng)
        pre = random_preexisting_modes(t, 20, 3, rng=rng)
        assert set(pre.values()) <= {0, 1, 2}

    def test_modes_errors(self, rng):
        t = paper_tree(5, rng=rng)
        with pytest.raises(ConfigurationError):
            random_preexisting_modes(t, 2, 0, rng=rng)
        with pytest.raises(ConfigurationError):
            random_preexisting_modes(t, 2, 2, rng=rng, mode=5)

    def test_int_seed_accepted_everywhere(self):
        t = paper_tree(10, rng=3)
        assert random_preexisting(t, 3, rng=3) == random_preexisting(t, 3, rng=3)
