"""Tests for :mod:`repro.tree.nxinterop`."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.exceptions import TreeStructureError
from repro.tree.model import Client, Tree
from repro.tree.nxinterop import from_networkx, to_networkx

from tests.conftest import small_trees


class TestToNetworkx:
    def test_node_and_edge_counts(self, chain_tree):
        g = to_networkx(chain_tree)
        internals = [n for n, d in g.nodes(data=True) if d["kind"] == "internal"]
        clients = [n for n, d in g.nodes(data=True) if d["kind"] == "client"]
        assert len(internals) == 3 and len(clients) == 3
        assert g.number_of_edges() == 2 + 3

    def test_internal_subgraph_is_arborescence(self, chain_tree):
        g = to_networkx(chain_tree)
        internals = [n for n, d in g.nodes(data=True) if d["kind"] == "internal"]
        assert nx.is_arborescence(g.subgraph(internals))

    def test_client_attributes(self, chain_tree):
        g = to_networkx(chain_tree)
        requests = sorted(
            d["requests"] for _, d in g.nodes(data=True) if d["kind"] == "client"
        )
        assert requests == [2, 3, 4]


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=12))
    def test_round_trip(self, tree):
        assert from_networkx(to_networkx(tree)) == tree


class TestFromNetworkxErrors:
    def test_empty_graph_rejected(self):
        with pytest.raises(TreeStructureError, match="no internal nodes"):
            from_networkx(nx.DiGraph())

    def test_cycle_rejected(self):
        g = nx.DiGraph()
        g.add_node(("node", 0), kind="internal")
        g.add_node(("node", 1), kind="internal")
        g.add_edge(("node", 0), ("node", 1))
        g.add_edge(("node", 1), ("node", 0))
        with pytest.raises(TreeStructureError, match="not a rooted tree"):
            from_networkx(g)

    def test_non_contiguous_ids_rejected(self):
        g = nx.DiGraph()
        g.add_node(("node", 0), kind="internal")
        g.add_node(("node", 5), kind="internal")
        g.add_edge(("node", 0), ("node", 5))
        with pytest.raises(TreeStructureError, match="contiguous"):
            from_networkx(g)

    def test_orphan_client_rejected(self):
        g = to_networkx(Tree([None], [Client(0, 2)]))
        g.remove_edge(("node", 0), ("client", 0))
        with pytest.raises(TreeStructureError, match="client"):
            from_networkx(g)
