"""Tests for :mod:`repro.tree.model`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TreeStructureError, WorkloadError
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestClient:
    def test_requires_positive_requests(self):
        with pytest.raises(WorkloadError):
            Client(0, 0)
        with pytest.raises(WorkloadError):
            Client(0, -3)

    def test_with_requests_returns_new_client(self):
        c = Client(2, 5)
        d = c.with_requests(7)
        assert (c.node, c.requests) == (2, 5)
        assert (d.node, d.requests) == (2, 7)

    def test_is_hashable_value_object(self):
        assert Client(1, 2) == Client(1, 2)
        assert len({Client(1, 2), Client(1, 2), Client(1, 3)}) == 2


class TestConstruction:
    def test_single_node(self):
        t = Tree([None])
        assert t.n_nodes == 1
        assert t.root == 0
        assert t.children(0) == ()
        assert t.total_requests == 0

    def test_root_can_be_any_index(self):
        t = Tree([2, 2, None])
        assert t.root == 2
        assert set(t.children(2)) == {0, 1}

    def test_accepts_mapping_parents(self):
        t = Tree({0: None, 1: 0, 2: 0})
        assert t.parent(1) == 0 and t.parent(2) == 0

    def test_mapping_with_gap_rejected(self):
        with pytest.raises(TreeStructureError, match="contiguous"):
            Tree({0: None, 2: 0})

    def test_empty_rejected(self):
        with pytest.raises(TreeStructureError):
            Tree([])

    def test_two_roots_rejected(self):
        with pytest.raises(TreeStructureError, match="exactly one root"):
            Tree([None, None])

    def test_no_root_rejected(self):
        with pytest.raises(TreeStructureError):
            Tree([1, 0])

    def test_self_parent_rejected(self):
        with pytest.raises(TreeStructureError, match="own parent"):
            Tree([None, 1])

    def test_cycle_rejected(self):
        # 1 <-> 2 cycle unreachable from root 0.
        with pytest.raises(TreeStructureError, match="cycle|disconnected"):
            Tree([None, 2, 1])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeStructureError, match="out-of-range"):
            Tree([None, 7])

    def test_client_on_unknown_node_rejected(self):
        with pytest.raises(WorkloadError, match="unknown internal node"):
            Tree([None], [Client(3, 1)])

    def test_client_tuples_accepted(self):
        t = Tree([None, 0], [(1, 4), (0, 2)])
        assert t.client_load(1) == 4 and t.client_load(0) == 2


class TestAccessors:
    def test_chain_structure(self, chain_tree):
        assert chain_tree.parent(0) is None
        assert chain_tree.parent(2) == 1
        assert chain_tree.children(0) == (1,)
        assert chain_tree.depth(2) == 2
        assert chain_tree.height == 2

    def test_client_aggregation(self):
        t = Tree([None, 0], [Client(1, 2), Client(1, 3), Client(0, 1)])
        assert t.client_load(1) == 5
        assert t.clients_at(1) == (Client(1, 2), Client(1, 3))
        assert t.n_clients == 3
        assert t.total_requests == 6

    def test_subtree_counts_exclude_self(self, chain_tree):
        assert chain_tree.subtree_internal_count(0) == 2
        assert chain_tree.subtree_internal_count(1) == 1
        assert chain_tree.subtree_internal_count(2) == 0

    def test_subtree_requests_include_self(self, chain_tree):
        assert chain_tree.subtree_requests(0) == 9
        assert chain_tree.subtree_requests(1) == 7
        assert chain_tree.subtree_requests(2) == 4

    def test_client_loads_view_is_readonly(self, chain_tree):
        with pytest.raises(ValueError):
            chain_tree.client_loads[0] = 99

    def test_post_order_view_is_readonly(self, chain_tree):
        with pytest.raises(ValueError):
            chain_tree.post_order()[0] = 99


class TestTraversals:
    def test_post_order_children_first(self, star5_tree):
        order = list(star5_tree.post_order())
        assert order[-1] == 0
        assert set(order[:-1]) == {1, 2, 3, 4, 5}

    def test_pre_order_parents_first(self, chain_tree):
        assert list(chain_tree.pre_order()) == [0, 1, 2]

    def test_ancestors(self, chain_tree):
        assert list(chain_tree.ancestors(2)) == [1, 0]
        assert list(chain_tree.ancestors(2, include_self=True)) == [2, 1, 0]
        assert list(chain_tree.ancestors(0)) == []

    def test_subtree_nodes(self, chain_tree):
        assert list(chain_tree.subtree_nodes(1)) == [1, 2]
        assert list(chain_tree.subtree_nodes(1, include_root=False)) == [2]

    def test_is_ancestor(self, chain_tree):
        assert chain_tree.is_ancestor(0, 2)
        assert chain_tree.is_ancestor(2, 2)
        assert not chain_tree.is_ancestor(2, 0)


class TestDerived:
    def test_with_clients_keeps_structure(self, chain_tree):
        t2 = chain_tree.with_clients([Client(0, 9)])
        assert t2.parents == chain_tree.parents
        assert t2.total_requests == 9
        assert chain_tree.total_requests == 9 - 9 + 9  # original untouched

    def test_equality_and_hash(self, chain_tree):
        same = Tree([None, 0, 1], [Client(0, 2), Client(1, 3), Client(2, 4)])
        assert chain_tree == same
        assert hash(chain_tree) == hash(same)
        assert chain_tree != Tree([None, 0, 1])
        assert chain_tree != "not a tree"


class TestPropertyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=14))
    def test_post_order_visits_children_before_parents(self, tree):
        pos = {int(v): i for i, v in enumerate(tree.post_order())}
        assert len(pos) == tree.n_nodes
        for v in range(tree.n_nodes):
            p = tree.parent(v)
            if p is not None:
                assert pos[v] < pos[p]

    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=14))
    def test_subtree_counts_consistent(self, tree):
        for v in range(tree.n_nodes):
            members = list(tree.subtree_nodes(v, include_root=False))
            assert tree.subtree_internal_count(v) == len(members)
            expected = sum(tree.client_load(u) for u in members) + tree.client_load(v)
            assert tree.subtree_requests(v) == expected

    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=14))
    def test_depths_follow_parents(self, tree):
        for v in range(tree.n_nodes):
            p = tree.parent(v)
            if p is None:
                assert tree.depth(v) == 0
            else:
                assert tree.depth(v) == tree.depth(p) + 1

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=12), st.integers(0, 11))
    def test_ancestor_chain_reaches_root(self, tree, v):
        v = v % tree.n_nodes
        chain = list(tree.ancestors(v, include_self=True))
        assert chain[0] == v and chain[-1] == tree.root
        assert len(chain) == tree.depth(v) + 1
