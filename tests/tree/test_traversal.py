"""Tests for :mod:`repro.tree.traversal`."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.model import Tree
from repro.tree.traversal import (
    bfs_order,
    leaves,
    lowest_common_ancestor,
    nodes_by_depth,
    path_to_root,
)

from tests.conftest import small_trees


class TestBfsOrder:
    def test_root_first_level_order(self, star5_tree):
        order = bfs_order(star5_tree)
        assert order[0] == 0
        assert set(order[1:]) == {1, 2, 3, 4, 5}

    def test_depths_nondecreasing(self):
        t = Tree([None, 0, 0, 1, 1, 2])
        order = bfs_order(t)
        depths = [t.depth(v) for v in order]
        assert depths == sorted(depths)


class TestLeaves:
    def test_chain(self, chain_tree):
        assert leaves(chain_tree) == [2]

    def test_star(self, star5_tree):
        assert leaves(star5_tree) == [1, 2, 3, 4, 5]

    def test_single(self):
        assert leaves(Tree([None])) == [0]


class TestPaths:
    def test_path_to_root(self, chain_tree):
        assert path_to_root(chain_tree, 2) == [2, 1, 0]
        assert path_to_root(chain_tree, 0) == [0]


class TestLca:
    def test_siblings(self, star5_tree):
        assert lowest_common_ancestor(star5_tree, 1, 2) == 0

    def test_ancestor_descendant(self, chain_tree):
        assert lowest_common_ancestor(chain_tree, 1, 2) == 1

    def test_self(self, chain_tree):
        assert lowest_common_ancestor(chain_tree, 2, 2) == 2

    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=12), st.data())
    def test_lca_is_common_ancestor_of_max_depth(self, tree, data):
        u = data.draw(st.integers(0, tree.n_nodes - 1))
        v = data.draw(st.integers(0, tree.n_nodes - 1))
        lca = lowest_common_ancestor(tree, u, v)
        assert tree.is_ancestor(lca, u) and tree.is_ancestor(lca, v)
        # No strictly deeper common ancestor exists.
        commons = [
            w
            for w in range(tree.n_nodes)
            if tree.is_ancestor(w, u) and tree.is_ancestor(w, v)
        ]
        assert tree.depth(lca) == max(tree.depth(w) for w in commons)


class TestNodesByDepth:
    def test_partition(self, chain_tree):
        by_depth = dict(nodes_by_depth(chain_tree))
        assert by_depth == {0: [0], 1: [1], 2: [2]}

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=12))
    def test_cover_all_nodes_once(self, tree):
        seen: list[int] = []
        for depth, nodes in nodes_by_depth(tree):
            assert all(tree.depth(v) == depth for v in nodes)
            seen.extend(nodes)
        assert sorted(seen) == list(range(tree.n_nodes))
