"""Tests for :mod:`repro.tree.serialize`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exceptions import ConfigurationError
from repro.tree.model import Client, Tree
from repro.tree.serialize import (
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_json,
)

from tests.conftest import small_trees


class TestDictRoundTrip:
    def test_simple(self, chain_tree):
        assert tree_from_dict(tree_to_dict(chain_tree)) == chain_tree

    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=14))
    def test_round_trip_any_tree(self, tree):
        assert tree_from_dict(tree_to_dict(tree)) == tree

    def test_schema_field_present(self, chain_tree):
        assert tree_to_dict(chain_tree)["schema"] == 1

    def test_unknown_schema_rejected(self, chain_tree):
        data = tree_to_dict(chain_tree)
        data["schema"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            tree_from_dict(data)

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            tree_from_dict({"schema": 1, "parents": [None]})

    def test_bad_client_entries_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            tree_from_dict({"schema": 1, "parents": [None], "clients": [[0]]})


class TestJsonRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=12))
    def test_round_trip(self, tree):
        assert tree_from_json(tree_to_json(tree)) == tree

    def test_indent_pretty_prints(self, chain_tree):
        assert "\n" in tree_to_json(chain_tree, indent=2)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            tree_from_json("{nope")


class TestDot:
    def test_contains_nodes_edges_clients(self, chain_tree):
        dot = tree_to_dot(chain_tree, replicas=[1], preexisting=[2])
        assert "digraph" in dot
        assert "n0 -> n1" in dot and "n1 -> n2" in dot
        assert "r=3" in dot  # client label
        assert "fillcolor" in dot  # replica styling
        assert "peripheries=2" in dot  # pre-existing styling

    def test_no_decorations(self):
        dot = tree_to_dot(Tree([None]))
        assert "fillcolor" not in dot and "peripheries" not in dot
