"""Tests for :mod:`repro.tree.metrics`."""

from __future__ import annotations

from hypothesis import given, settings

from repro.tree.generators import paper_tree
from repro.tree.metrics import tree_stats
from repro.tree.model import Client, Tree

from tests.conftest import small_trees


class TestTreeStats:
    def test_chain_stats(self, chain_tree):
        s = tree_stats(chain_tree)
        assert s.n_nodes == 3
        assert s.n_clients == 3
        assert s.total_requests == 9
        assert s.height == 2
        assert s.max_branching == 1
        assert s.internal_leaves == 1
        assert s.max_direct_load == 4

    def test_single_node(self):
        s = tree_stats(Tree([None]))
        assert s.mean_branching == 0.0
        assert s.internal_leaves == 1
        assert s.max_direct_load == 0

    def test_as_dict_keys(self, chain_tree):
        d = tree_stats(chain_tree).as_dict()
        assert {"n_nodes", "height", "mean_branching"} <= set(d)

    def test_fat_vs_high_mean_branching(self):
        fat = tree_stats(paper_tree(100, children_range=(6, 9), rng=0))
        high = tree_stats(paper_tree(100, children_range=(2, 4), rng=0))
        assert fat.mean_branching > high.mean_branching
        assert high.height > fat.height

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=14))
    def test_consistency(self, tree):
        s = tree_stats(tree)
        assert s.n_nodes == tree.n_nodes
        assert s.total_requests == tree.total_requests
        assert 0 <= s.mean_depth <= s.height
        assert s.internal_leaves >= 1
