"""Tests for :mod:`repro.tree.validate`."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.model import Client, Tree
from repro.tree.validate import check_capacity_feasible, check_preexisting, max_direct_load


class TestCapacityFeasibility:
    def test_feasible_passes(self, chain_tree):
        check_capacity_feasible(chain_tree, 10)

    def test_single_heavy_node_raises_with_node(self):
        t = Tree([None, 0], [Client(1, 11)])
        with pytest.raises(InfeasibleError) as exc:
            check_capacity_feasible(t, 10)
        assert exc.value.node == 1

    def test_aggregated_clients_counted(self):
        t = Tree([None], [Client(0, 6), Client(0, 6)])
        with pytest.raises(InfeasibleError):
            check_capacity_feasible(t, 10)
        check_capacity_feasible(t, 12)

    def test_bad_capacity(self, chain_tree):
        with pytest.raises(ConfigurationError):
            check_capacity_feasible(chain_tree, 0)

    def test_boundary_exactly_w(self):
        t = Tree([None], [Client(0, 10)])
        check_capacity_feasible(t, 10)  # == W is fine


class TestMaxDirectLoad:
    def test_values(self, chain_tree):
        assert max_direct_load(chain_tree) == 4

    def test_no_clients(self):
        assert max_direct_load(Tree([None, 0])) == 0


class TestCheckPreexisting:
    def test_valid_set_normalised(self, chain_tree):
        assert check_preexisting(chain_tree, [1, 2]) == frozenset({1, 2})
        assert check_preexisting(chain_tree, {}) == frozenset()

    def test_mapping_keys_used(self, chain_tree):
        assert check_preexisting(chain_tree, {1: 0, 2: 1}) == frozenset({1, 2})

    def test_out_of_range_rejected(self, chain_tree):
        with pytest.raises(ConfigurationError):
            check_preexisting(chain_tree, [5])
        with pytest.raises(ConfigurationError):
            check_preexisting(chain_tree, [-1])
