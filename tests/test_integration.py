"""End-to-end integration scenarios.

Each test walks a realistic pipeline across subsystem boundaries —
generate → solve → migrate → simulate → analyse — so interface drift
between packages cannot hide behind per-module suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ModalCostModel, UniformCostModel
from repro.analysis import locality_report, render_tree
from repro.core import evaluate_placement, greedy_placement, replica_update
from repro.dynamics import (
    DPUpdateStrategy,
    GreedyStrategy,
    RedrawRequests,
    StepKind,
    plan_migration,
    run_session,
)
from repro.experiments import make_preset
from repro.power import (
    PowerModel,
    greedy_power_candidates,
    power_frontier,
)
from repro.sim import simulate_placement
from repro.tree import tree_from_json, tree_to_json

CAPACITY = 10


class TestDayInTheLifePipeline:
    """The full operator story on one deterministic instance."""

    @pytest.fixture(scope="class")
    def tree(self):
        return make_preset("fig8", rng=np.random.default_rng(99))

    def test_pipeline(self, tree):
        # Day 0: greenfield placement.
        day0 = greedy_placement(tree, CAPACITY)
        assert evaluate_placement(tree, day0.replicas, CAPACITY).ok

        # The placement serves a simulated day exactly as the algebra says.
        report = simulate_placement(tree, day0.replicas, CAPACITY, duration=24)
        assert report.max_backlog == 0
        assert report.total_processed == tree.total_requests * 24

        # Day 1: demand moves; optimal update against day-0 servers.
        day1_workload = RedrawRequests((1, 5)).evolve(
            tree, np.random.default_rng(100)
        )
        day1 = replica_update(
            day1_workload, CAPACITY, day0.replicas, UniformCostModel(0.1, 0.01)
        )
        assert day1.cost is not None

        # The migration plan prices identically to the solver's cost model.
        plan = plan_migration(day0.replicas, day1.replicas)
        assert plan.cost(UniformCostModel(0.1, 0.01)) == pytest.approx(day1.cost)
        assert plan.n_created == day1.n_created
        assert plan.n_deleted == day1.n_deleted

        # Executing the plan yields a placement that serves the new demand.
        applied = (frozenset(day0.replicas) | {
            s.node for s in plan.by_kind(StepKind.CREATE)
        }) - {s.node for s in plan.by_kind(StepKind.DELETE)}
        assert applied == day1.replicas
        report1 = simulate_placement(day1_workload, applied, CAPACITY, duration=24)
        assert report1.max_backlog == 0

        # Locality stays tight and the tree renders.
        loc = locality_report(day1_workload, day1.replicas)
        assert loc.unserved_requests == 0
        assert "[R]" in render_tree(
            day1_workload, replicas=day1.replicas, preexisting=day0.replicas
        )


class TestPowerPipeline:
    def test_budgeted_reconfiguration(self):
        tree = make_preset("fig8", rng=np.random.default_rng(7))
        pm = PowerModel.paper_experiment3()
        cm = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
        base = greedy_placement(tree, CAPACITY)
        pre = {v: 1 for v in base.replicas}

        frontier = power_frontier(tree, pm, cm, pre)
        gr = greedy_power_candidates(tree, pm, cm, pre)
        budget = (frontier.min_cost() + frontier.pairs()[-1][0]) / 2
        optimal = frontier.best_under_cost(budget)
        baseline = gr.best_under_cost(budget)
        assert optimal is not None
        if baseline is not None:
            assert optimal.power <= baseline.power + 1e-9

        # The modal migration plan prices like Equation 4.
        plan = plan_migration(pre, dict(optimal.server_modes))
        assert plan.cost(cm) == pytest.approx(optimal.cost)

        # The chosen placement actually carries the load in simulation.
        report = simulate_placement(
            tree, optimal.server_modes.keys(), CAPACITY, duration=12
        )
        assert report.max_backlog == 0
        for v, load in optimal.loads.items():
            assert report.processed[v] == load * 12


class TestSerializationPipeline:
    def test_tree_survives_transport_and_solving(self):
        tree = make_preset("fig4", rng=np.random.default_rng(11))
        clone = tree_from_json(tree_to_json(tree))
        assert clone == tree
        a = greedy_placement(tree, CAPACITY)
        b = greedy_placement(clone, CAPACITY)
        assert a.replicas == b.replicas


class TestSessionConsistency:
    def test_session_records_match_direct_solves(self):
        tree = make_preset("fig4", rng=np.random.default_rng(21))
        session = run_session(
            tree, CAPACITY, 3, RedrawRequests((1, 6)),
            {"DP": DPUpdateStrategy(), "GR": GreedyStrategy()},
            rng=np.random.default_rng(22),
        )
        # Re-solve step 1 by hand with the recorded pre-existing set.
        workload = session.workloads[1]
        pre = session.tracks["DP"][0].replicas
        direct = DPUpdateStrategy().place(workload, CAPACITY, pre)
        assert direct.replicas == session.tracks["DP"][1].replicas
