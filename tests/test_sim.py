"""Tests for :mod:`repro.sim` — the discrete-event validation substrate.

The headline invariant: for any *valid* placement under deterministic
arrivals, the simulation processes exactly ``duration × req_j`` requests at
each server with zero backlog — the solvers' algebra is what a running
system observes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.dp_nopre import dp_nopre_placement
from repro.core.greedy import greedy_placement
from repro.core.solution import server_loads
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.sim import simulate_placement
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree

from tests.conftest import small_trees

DURATION = 10


class TestUniformArrivalsMatchAlgebra:
    def test_single_server(self, chain_tree):
        report = simulate_placement(chain_tree, [0], 10, DURATION)
        assert report.processed == {0: 9 * DURATION}
        assert report.max_backlog == 0
        assert report.final_backlog == 0
        assert report.unserved == 0
        assert report.conservation_ok()

    def test_matches_server_loads_exactly(self, rng):
        tree = paper_tree(40, rng=rng)
        placement = greedy_placement(tree, 10)
        report = simulate_placement(tree, placement.replicas, 10, DURATION)
        loads, _ = server_loads(tree, placement.replicas)
        assert report.max_backlog == 0
        for v, load in loads.items():
            assert report.processed[v] == load * DURATION

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=10, max_requests=6))
    def test_any_valid_placement_never_queues(self, tree):
        try:
            placement = dp_nopre_placement(tree, 10)
        except InfeasibleError:
            return
        report = simulate_placement(tree, placement.replicas, 10, 5)
        assert report.max_backlog == 0
        assert report.final_backlog == 0
        assert report.total_processed == tree.total_requests * 5
        assert report.conservation_ok()

    def test_utilization(self, chain_tree):
        report = simulate_placement(chain_tree, [0], 10, DURATION)
        util = report.utilization(10)
        assert util[0] == pytest.approx(0.9)


class TestOverloadedPlacements:
    def test_backlog_grows_linearly(self):
        # 12 requests/unit into a W=10 server: 2 queue per unit.
        t = Tree([None], [Client(0, 12)])
        report = simulate_placement(t, [0], 10, DURATION)
        # Every window runs at full capacity, so exactly 2 requests queue
        # per unit and the server processes 10 * DURATION in total.
        assert report.processed == {0: 10 * DURATION}
        assert report.final_backlog == 2 * DURATION
        assert report.max_backlog >= report.final_backlog
        assert report.conservation_ok()

    def test_unserved_counted(self, chain_tree):
        # Replica only at node 1: the root's own client has no server.
        report = simulate_placement(chain_tree, [1], 10, DURATION)
        assert report.unserved == 2 * DURATION
        assert report.conservation_ok()

    def test_empty_placement_everything_unserved(self, chain_tree):
        report = simulate_placement(chain_tree, [], 10, DURATION)
        assert report.unserved == chain_tree.total_requests * DURATION
        assert report.total_processed == 0


class TestPoissonArrivals:
    def test_conservation_and_rate(self, rng):
        tree = paper_tree(20, client_prob=1.0, rng=rng)
        placement = greedy_placement(tree, 10)
        report = simulate_placement(
            tree, placement.replicas, 10, 200, arrivals="poisson", rng=rng
        )
        assert report.conservation_ok()
        expected = tree.total_requests * 200
        assert report.total_arrivals == pytest.approx(expected, rel=0.1)

    def test_bursts_create_transient_backlog(self):
        # A server running at exactly full utilisation under Poisson load
        # must queue sometimes.
        t = Tree([None], [Client(0, 10)])
        report = simulate_placement(
            t, [0], 10, 300, arrivals="poisson", rng=np.random.default_rng(0)
        )
        assert report.max_backlog > 0
        assert report.conservation_ok()

    def test_reproducible_with_seed(self, chain_tree):
        a = simulate_placement(chain_tree, [0], 10, 50, arrivals="poisson", rng=7)
        b = simulate_placement(chain_tree, [0], 10, 50, arrivals="poisson", rng=7)
        assert a.processed == b.processed
        assert a.arrivals == b.arrivals


class TestValidation:
    def test_bad_capacity(self, chain_tree):
        with pytest.raises(ConfigurationError):
            simulate_placement(chain_tree, [0], 0, 5)

    def test_bad_duration(self, chain_tree):
        with pytest.raises(ConfigurationError):
            simulate_placement(chain_tree, [0], 10, 0)

    def test_bad_arrival_model(self, chain_tree):
        with pytest.raises(ConfigurationError):
            simulate_placement(chain_tree, [0], 10, 5, arrivals="bursty")
