"""Tests for :mod:`repro.batch.registry` (the pluggable policy contract)."""

from __future__ import annotations

import inspect

import numpy as np
import pytest

from repro.batch import (
    BatchInstance,
    ResultCache,
    available_solvers,
    get_policy,
    random_batch,
    register_policy,
    solve_batch,
)
from repro.batch.registry import SolverPolicy, _REGISTRY
from repro.core.solution import PlacementResult
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree
from repro.tree.model import Tree


class TestRegistryApi:
    def test_builtin_policies_registered(self):
        names = available_solvers()
        for name in (
            "dp",
            "greedy",
            "dp_nopre",
            "min_power",
            "power_frontier",
            "greedy_power",
        ):
            assert name in names

    def test_unknown_policy_rejected_with_available_names(self):
        with pytest.raises(ConfigurationError, match="dp"):
            get_policy("simulated-annealing")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy(get_policy("dp"))

    def test_unknown_digest_fields_rejected(self):
        class Bad(SolverPolicy):
            name = "bad-fields"
            digest_fields = frozenset({"quantum"})

        with pytest.raises(ConfigurationError, match="quantum"):
            register_policy(Bad())

    def test_unnamed_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            register_policy(SolverPolicy())


class TestExecutorIsPolicyAgnostic:
    def test_no_policy_name_dispatch_in_executor(self):
        # Acceptance criterion: adding a policy must require only a
        # registry entry — the executor never branches on policy names.
        import repro.batch.executor as executor

        source = inspect.getsource(executor)
        for name in available_solvers():
            assert f'"{name}"' not in source.replace("solver: str = \"dp\"", "")

    def test_custom_policy_runs_through_the_pipeline(self):
        class LeafCountPolicy(SolverPolicy):
            """Toy policy: place a replica on every leaf-most feasible node."""

            name = "test_leafcount"
            digest_fields = frozenset({"capacity"})
            record_schema = 7
            columns = ("R",)

            def payload(self, canonical, instance):
                return {
                    "solver": self.name,
                    "parents": list(canonical.parents),
                    "clients": [list(c) for c in canonical.clients],
                    "capacity": instance.capacity,
                }

            def solve(self, payload):
                from repro.core.dp_nopre import dp_nopre_placement

                tree = Tree(
                    [None if p is None else int(p) for p in payload["parents"]],
                    [(int(n), int(r)) for n, r in payload["clients"]],
                    validate=False,
                )
                result = dp_nopre_placement(tree, int(payload["capacity"]))
                return {
                    "schema": self.record_schema,
                    "replicas": sorted(result.replicas),
                }

            def fan_out(self, instance, canonical, record, digest):
                replicas = canonical.map_back(record["replicas"])
                return PlacementResult.from_replicas(
                    instance.tree,
                    replicas,
                    instance.capacity,
                    instance.preexisting,
                    extra={"digest": digest},
                )

            def row(self, result):
                return (result.n_replicas,)

        register_policy(LeafCountPolicy())
        try:
            batch = random_batch(
                6, duplicate_rate=0.5, n_nodes=20, rng=np.random.default_rng(0)
            )
            cache = ResultCache(32)
            results = solve_batch(batch, solver="test_leafcount", cache=cache)
            assert len(results) == 6
            assert cache.stats.duplicates_folded > 0
            assert all(r.n_replicas > 0 for r in results)
            # The digest namespace is the policy name: no collisions with
            # the identically-shaped dp_nopre policy.
            solve_batch(batch, solver="dp_nopre", cache=cache)
            assert cache.stats.hits == 0
        finally:
            _REGISTRY.pop("test_leafcount", None)

    def test_replace_existing_policy(self):
        original = get_policy("dp")

        class Dp2(type(original)):
            pass

        replacement = Dp2()
        register_policy(replacement, replace_existing=True)
        try:
            assert get_policy("dp") is replacement
        finally:
            register_policy(original, replace_existing=True)


class TestRecordSchemaGuard:
    def test_mismatching_cached_record_is_resolved(self):
        batch = random_batch(
            2, duplicate_rate=0.0, n_nodes=15, rng=np.random.default_rng(3)
        )
        cache = ResultCache(32)
        solve_batch(batch, solver="dp", cache=cache)
        # Corrupt the cached records' schema in place.
        for digest in list(cache._lru):
            cache._lru[digest] = {"schema": 999, "replicas": [0]}
        results = solve_batch(batch, solver="dp", cache=cache)
        assert cache.stats.schema_discards == 2
        assert cache.stats.unique_solved == 4  # both re-solved
        naive = solve_batch(batch, solver="dp")
        assert [r.cost for r in results] == [r.cost for r in naive]


class TestDigestFieldDeclarations:
    def test_power_policies_ignore_capacity(self):
        from repro.power.modes import ModeSet, PowerModel

        tree = paper_tree(20, rng=np.random.default_rng(1))
        pm = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
        a = BatchInstance(tree, 10, power_model=pm)
        b = BatchInstance(tree, 7, power_model=pm)
        policy = get_policy("min_power")
        assert policy.instance_key(a)[1] == policy.instance_key(b)[1]
        # ...while the MinCost policies keep capacity in the digest.
        dp = get_policy("dp")
        assert dp.instance_key(a)[1] != dp.instance_key(b)[1]

    def test_min_power_and_frontier_share_cache_records(self):
        from repro.power.modes import ModeSet, PowerModel

        pm = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
        batch = random_batch(
            3,
            duplicate_rate=0.0,
            n_nodes=18,
            power_model=pm,
            rng=np.random.default_rng(5),
        )
        cache = ResultCache(32)
        solve_batch(batch, solver="power_frontier", cache=cache)
        solved = cache.stats.unique_solved
        solve_batch(batch, solver="min_power", cache=cache)
        # The frontier records answer min_power traffic without a solve.
        assert cache.stats.unique_solved == solved
        assert cache.stats.hits == 3
