"""Tests for :mod:`repro.batch.cache` (LRU + disk store + counters)."""

from __future__ import annotations

import json

import pytest

from repro.batch.cache import ResultCache
from repro.exceptions import ConfigurationError
from repro.perf.stats import BatchCacheStats


def rec(i: int) -> dict:
    return {"schema": 1, "replicas": [i]}


class TestLRU:
    def test_hit_miss_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", rec(1))
        assert cache.get("a") == rec(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", rec(1))
        cache.put("b", rec(2))
        cache.get("a")  # refresh 'a'; 'b' is now the LRU entry
        cache.put("c", rec(3))
        assert "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)

    def test_shared_stats_object(self):
        stats = BatchCacheStats()
        cache = ResultCache(max_entries=2, stats=stats)
        cache.get("x")
        assert stats.misses == 1


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(max_entries=8, cache_dir=tmp_path)
        first.put("a", rec(1))
        first.put("b", rec(2))

        second = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert second.get("a") == rec(1)
        assert second.get("b") == rec(2)
        assert second.stats.disk_hits == 2
        assert second.stats.hits == 2

    def test_disk_survives_lru_eviction(self, tmp_path):
        cache = ResultCache(max_entries=1, cache_dir=tmp_path)
        cache.put("a", rec(1))
        cache.put("b", rec(2))  # evicts 'a' from memory, not from disk
        assert cache.stats.evictions == 1
        assert cache.get("a") == rec(1)
        assert cache.stats.disk_hits == 1

    def test_stale_version_dropped_and_compacted(self, tmp_path):
        path = tmp_path / "batch-cache.ol.jsonl"
        stale = {"version": "0.0.0", "digest": "old", "record": rec(9)}
        path.write_text(json.dumps(stale) + "\n", encoding="utf-8")

        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert cache.get("old") is None
        # The shard was compacted: the stale line is gone from disk.
        assert not path.exists() or "old" not in path.read_text()

    def test_corrupt_lines_tolerated(self, tmp_path):
        good = ResultCache(max_entries=8, cache_dir=tmp_path)
        good.put("abcd", rec(1))
        path = tmp_path / "batch-cache.ab.jsonl"
        assert path.exists()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        reopened = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert reopened.get("abcd") == rec(1)
        # Reloading compacted the dirty shard in place.
        assert "not json" not in path.read_text()

    def test_no_duplicate_disk_lines(self, tmp_path):
        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        cache.put("abcd", rec(1))
        cache.put("abcd", rec(1))
        lines = (
            (tmp_path / "batch-cache.ab.jsonl").read_text().strip().splitlines()
        )
        assert len(lines) == 1

    def test_sharded_by_digest_prefix(self, tmp_path):
        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        cache.put("ab11", rec(1))
        cache.put("ab22", rec(2))
        cache.put("cd33", rec(3))
        assert (tmp_path / "batch-cache.ab.jsonl").exists()
        assert (tmp_path / "batch-cache.cd.jsonl").exists()
        ab_lines = (
            (tmp_path / "batch-cache.ab.jsonl").read_text().strip().splitlines()
        )
        assert len(ab_lines) == 2

    def test_legacy_single_file_migrated_to_shards(self, tmp_path):
        from repro._version import __version__

        legacy = tmp_path / "batch-cache.jsonl"
        entry = {"version": __version__, "digest": "ab99", "record": rec(7)}
        legacy.write_text(json.dumps(entry) + "\n", encoding="utf-8")

        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert cache.get("ab99") == rec(7)
        assert not legacy.exists()
        assert (tmp_path / "batch-cache.ab.jsonl").exists()
        # The migrated entry survives another reload from the shard.
        again = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert again.get("ab99") == rec(7)

    def test_disk_budget_evicts_lru_and_compacts(self, tmp_path):
        cache = ResultCache(
            max_entries=8, cache_dir=tmp_path, max_disk_entries=2
        )
        cache.put("aa01", rec(1))
        cache.put("bb02", rec(2))
        cache.get("aa01")  # refresh: 'bb02' is now the disk-LRU entry
        cache.put("cc03", rec(3))
        assert cache.stats.disk_evictions == 1
        # 'bb02' was dropped and its shard rewritten (empty -> removed).
        assert not (tmp_path / "batch-cache.bb.jsonl").exists()
        reopened = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert reopened.get("bb02") is None
        assert reopened.get("aa01") == rec(1)
        assert reopened.get("cc03") == rec(3)

    def test_disk_budget_applies_at_load(self, tmp_path):
        writer = ResultCache(max_entries=8, cache_dir=tmp_path)
        for i in range(6):
            writer.put(f"a{i}xx", rec(i))
        bounded = ResultCache(
            max_entries=8, cache_dir=tmp_path, max_disk_entries=3
        )
        assert bounded.stats.disk_evictions == 3
        on_disk = sum(
            1
            for p in tmp_path.glob("batch-cache.*.jsonl")
            for line in p.read_text().splitlines()
            if line.strip()
        )
        assert on_disk == 3

    def test_max_disk_entries_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=4, cache_dir=tmp_path, max_disk_entries=0)

    def test_schema_mismatch_is_a_miss(self):
        cache = ResultCache(max_entries=4)
        cache.put("aa", {"schema": 1, "replicas": [1]})
        assert cache.get("aa", schema=2) is None
        assert cache.stats.schema_discards == 1
        assert cache.stats.misses == 1
        assert cache.get("aa", schema=1) == {"schema": 1, "replicas": [1]}

    def test_compaction_preserves_concurrent_writers(self, tmp_path):
        # Writer B loads, writer A appends to the same shard afterwards;
        # B's compaction must carry A's entry over, not erase it.
        b = ResultCache(max_entries=8, cache_dir=tmp_path, max_disk_entries=2)
        b.put("ab01", rec(1))
        b.put("cd02", rec(2))
        a = ResultCache(max_entries=8, cache_dir=tmp_path)
        a.put("abff", rec(9))  # lands in shard 'ab', unknown to b
        b.put("ab03", rec(3))  # overflows b's budget -> compacts shard 'ab'
        assert b.stats.disk_evictions > 0
        fresh = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert fresh.get("abff") == rec(9)

    def test_put_replaces_stale_disk_record(self, tmp_path):
        # A re-solve after a schema discard must converge the disk tier:
        # the replacement record wins on every subsequent load.
        cache = ResultCache(max_entries=4, cache_dir=tmp_path)
        cache.put("ab77", {"schema": 1, "replicas": [1]})
        assert cache.get("ab77", schema=2) is None  # discarded
        cache.put("ab77", {"schema": 2, "points": []})
        assert cache.get("ab77", schema=2) == {"schema": 2, "points": []}
        reopened = ResultCache(max_entries=4, cache_dir=tmp_path)
        assert reopened.get("ab77", schema=2) == {"schema": 2, "points": []}
        assert reopened.stats.schema_discards == 0


class TestShardSafety:
    """Cross-process and cross-thread safety of the sharded disk tier."""

    def test_duplicated_lines_deduped_and_compacted_on_load(self, tmp_path):
        # Two processes that both solved digest 'ab11' before seeing each
        # other's append leave two lines; a load dedupes (last one wins)
        # and rewrites the shard to a single line.
        from repro._version import __version__

        shard = tmp_path / "batch-cache.ab.jsonl"
        lines = [
            {"version": __version__, "digest": "ab11", "record": rec(1)},
            {"version": __version__, "digest": "abff", "record": rec(7)},
            {"version": __version__, "digest": "ab11", "record": rec(2)},
        ]
        shard.write_text("".join(json.dumps(e) + "\n" for e in lines))
        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert cache.get("ab11") == rec(2)  # later line shadows earlier
        assert cache.get("abff") == rec(7)
        on_disk = [
            json.loads(line)["digest"]
            for line in shard.read_text().splitlines()
        ]
        assert sorted(on_disk) == ["ab11", "abff"]  # compacted in place

    def test_concurrent_process_appends_serialised_by_shard_lock(self, tmp_path):
        # Hammer one shard from several processes; the advisory lock must
        # keep every line intact (no interleaved partial writes).
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        procs = [
            ctx.Process(target=_append_worker, args=(str(tmp_path), w))
            for w in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        shard = tmp_path / "batch-cache.ab.jsonl"
        for line in shard.read_text().splitlines():
            entry = json.loads(line)  # raises on a torn line
            assert entry["digest"].startswith("ab")
        fresh = ResultCache(max_entries=64, cache_dir=tmp_path)
        for w in range(3):
            for i in range(20):
                assert fresh.get(f"ab{w}{i:02d}") == rec(w * 100 + i)

    def test_lock_sidecars_not_loaded_as_shards(self, tmp_path):
        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        cache.put("ab42", rec(1))
        sidecars = list(tmp_path.glob("*.lock"))
        assert sidecars  # advisory lock sidecar exists on POSIX
        reopened = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert reopened.get("ab42") == rec(1)

    def test_thread_safe_under_concurrent_get_put(self, tmp_path):
        # The serving frontend reads from the event loop thread while the
        # drain thread stores results; hammer both paths.
        import threading

        cache = ResultCache(max_entries=32, cache_dir=tmp_path, max_disk_entries=48)
        errors = []

        def writer(base: int) -> None:
            try:
                for i in range(200):
                    cache.put(f"{(base + i) % 256:02x}{i:03d}", rec(i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                for i in range(400):
                    cache.get(f"{i % 256:02x}{i % 200:03d}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(0,)),
            threading.Thread(target=writer, args=(128,)),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


def _append_worker(cache_dir: str, worker: int) -> None:
    """Spawn-target: append 20 records to the 'ab' shard prefix."""
    cache = ResultCache(max_entries=64, cache_dir=cache_dir)
    for i in range(20):
        cache.put(f"ab{worker}{i:02d}", rec(worker * 100 + i))


class TestLockingDegrade:
    """The flock→no-op degrade is loud and observable, never silent."""

    def test_memory_only_cache_reports_memory(self):
        cache = ResultCache(max_entries=4)
        assert cache.locking == "memory"
        assert cache.stats.as_dict()["locking"] == "memory"

    def test_disk_cache_with_fcntl_reports_flock(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        assert cache.locking == "flock"
        assert cache.stats.locking == "flock"

    def test_missing_fcntl_warns_once_and_reports_none(self, tmp_path, monkeypatch):
        import warnings

        import repro.batch.cache as cache_mod

        monkeypatch.setattr(cache_mod, "fcntl", None)
        monkeypatch.setattr(cache_mod, "_warned_no_flock", False)
        with pytest.warns(RuntimeWarning, match="locking: \"none\""):
            cache = ResultCache(cache_dir=tmp_path / "a")
        assert cache.locking == "none"
        assert cache.stats.as_dict()["locking"] == "none"
        # One-time per process: a second cache stays quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = ResultCache(cache_dir=tmp_path / "b")
        assert second.locking == "none"

    def test_noop_locks_still_round_trip(self, tmp_path, monkeypatch):
        """Degraded locking is a safety property, not a functional one:
        single-process disk persistence keeps working."""
        import repro.batch.cache as cache_mod

        monkeypatch.setattr(cache_mod, "fcntl", None)
        monkeypatch.setattr(cache_mod, "_warned_no_flock", True)
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("a" * 64, rec(1))
        reloaded = ResultCache(cache_dir=tmp_path)
        assert reloaded.get("a" * 64) == rec(1)
