"""Tests for :mod:`repro.batch.cache` (LRU + disk store + counters)."""

from __future__ import annotations

import json

import pytest

from repro.batch.cache import ResultCache
from repro.exceptions import ConfigurationError
from repro.perf.stats import BatchCacheStats


def rec(i: int) -> dict:
    return {"schema": 1, "replicas": [i]}


class TestLRU:
    def test_hit_miss_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", rec(1))
        assert cache.get("a") == rec(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", rec(1))
        cache.put("b", rec(2))
        cache.get("a")  # refresh 'a'; 'b' is now the LRU entry
        cache.put("c", rec(3))
        assert "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)

    def test_shared_stats_object(self):
        stats = BatchCacheStats()
        cache = ResultCache(max_entries=2, stats=stats)
        cache.get("x")
        assert stats.misses == 1


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(max_entries=8, cache_dir=tmp_path)
        first.put("a", rec(1))
        first.put("b", rec(2))

        second = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert second.get("a") == rec(1)
        assert second.get("b") == rec(2)
        assert second.stats.disk_hits == 2
        assert second.stats.hits == 2

    def test_disk_survives_lru_eviction(self, tmp_path):
        cache = ResultCache(max_entries=1, cache_dir=tmp_path)
        cache.put("a", rec(1))
        cache.put("b", rec(2))  # evicts 'a' from memory, not from disk
        assert cache.stats.evictions == 1
        assert cache.get("a") == rec(1)
        assert cache.stats.disk_hits == 1

    def test_stale_version_dropped_and_compacted(self, tmp_path):
        path = tmp_path / "batch-cache.jsonl"
        stale = {"version": "0.0.0", "digest": "old", "record": rec(9)}
        path.write_text(json.dumps(stale) + "\n", encoding="utf-8")

        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert cache.get("old") is None
        # The store was compacted: the stale line is gone from disk.
        assert "old" not in path.read_text()

    def test_corrupt_lines_tolerated(self, tmp_path):
        path = tmp_path / "batch-cache.jsonl"
        good = ResultCache(max_entries=8, cache_dir=tmp_path)
        good.put("a", rec(1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        reopened = ResultCache(max_entries=8, cache_dir=tmp_path)
        assert reopened.get("a") == rec(1)

    def test_no_duplicate_disk_lines(self, tmp_path):
        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        cache.put("a", rec(1))
        cache.put("a", rec(1))
        lines = (tmp_path / "batch-cache.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1
