"""Tests for :mod:`repro.batch.executor` (dedupe, fan-out, parallel path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    BatchInstance,
    ResultCache,
    batch_from_json,
    batch_to_json,
    random_batch,
    solve_batch,
)
from repro.batch.canonical import relabel_tree
from repro.core.costs import UniformCostModel
from repro.core.dp_nopre import dp_nopre_placement
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.core.solution import evaluate_placement
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree, random_preexisting


def _mixed_batch(n_unique=4, n_total=12, n_nodes=30, rng_seed=7):
    """Unique instances plus relabelled isomorphic duplicates."""
    gen = np.random.default_rng(rng_seed)
    base = []
    for _ in range(n_unique):
        tree = paper_tree(n_nodes, rng=gen)
        pre = random_preexisting(tree, 4, rng=gen)
        base.append(BatchInstance(tree, 10, pre))
    batch = list(base)
    while len(batch) < n_total:
        src = base[int(gen.integers(n_unique))]
        perm = gen.permutation(n_nodes)
        tree, pre = relabel_tree(src.tree, perm, src.preexisting)
        batch.append(BatchInstance(tree, src.capacity, pre, src.cost_model))
    return batch


class TestCorrectness:
    def test_matches_naive_dp_loop(self):
        batch = _mixed_batch()
        results = solve_batch(batch, solver="dp")
        for instance, result in zip(batch, results, strict=True):
            naive = replica_update(
                instance.tree,
                instance.capacity,
                instance.preexisting,
                instance.cost_model,
            )
            assert result.cost == pytest.approx(naive.cost)
            assert result.n_replicas == naive.n_replicas
            check = evaluate_placement(
                instance.tree, result.replicas, instance.capacity
            )
            assert check.ok

    def test_greedy_and_dp_nopre_policies(self):
        batch = _mixed_batch(n_unique=2, n_total=5)
        greedy = solve_batch(batch, solver="greedy")
        nopre = solve_batch(batch, solver="dp_nopre")
        for instance, g, n in zip(batch, greedy, nopre, strict=True):
            ref_g = greedy_placement(
                instance.tree, instance.capacity,
                preexisting=instance.preexisting,
            )
            ref_n = dp_nopre_placement(instance.tree, instance.capacity)
            assert g.n_replicas == ref_g.n_replicas
            assert n.n_replicas == ref_n.n_replicas
            assert evaluate_placement(
                instance.tree, g.replicas, instance.capacity
            ).ok

    def test_results_keep_input_order(self):
        batch = _mixed_batch()
        results = solve_batch(batch, solver="dp")
        for instance, result in zip(batch, results, strict=True):
            # replicas must be nodes of *this* instance's tree
            assert all(0 <= v < instance.tree.n_nodes for v in result.replicas)
            assert result.reused <= instance.preexisting


class TestDedupeAndCache:
    def test_duplicates_folded(self):
        batch = _mixed_batch(n_unique=3, n_total=12)
        cache = ResultCache(64)
        solve_batch(batch, solver="dp", cache=cache)
        assert cache.stats.unique_solved == 3
        assert cache.stats.duplicates_folded == 9
        assert cache.stats.misses == 3

    def test_second_call_all_hits(self):
        batch = _mixed_batch(n_unique=3, n_total=6)
        cache = ResultCache(64)
        first = solve_batch(batch, solver="dp", cache=cache)
        solved = cache.stats.unique_solved
        second = solve_batch(batch, solver="dp", cache=cache)
        assert cache.stats.unique_solved == solved
        assert cache.stats.hits == 3
        assert [r.cost for r in first] == [r.cost for r in second]

    def test_no_cache_still_dedupes(self):
        from repro.perf.stats import BatchCacheStats

        batch = _mixed_batch(n_unique=2, n_total=8)
        stats = BatchCacheStats()
        solve_batch(batch, solver="dp", stats=stats)
        assert stats.unique_solved == 2
        assert stats.duplicates_folded == 6

    def test_pre_oblivious_policies_share_solves(self):
        # greedy/dp_nopre replica sets don't depend on pre-existing or the
        # cost model, so instances differing only there share one solve.
        tree = paper_tree(25, rng=np.random.default_rng(8))
        batch = [
            BatchInstance(tree, 10, frozenset({1, 2})),
            BatchInstance(tree, 10, frozenset({3})),
            BatchInstance(tree, 10, frozenset(), UniformCostModel(0.5, 0.2)),
        ]
        for solver in ("greedy", "dp_nopre"):
            cache = ResultCache(16)
            results = solve_batch(batch, solver=solver, cache=cache)
            assert cache.stats.unique_solved == 1
            # ...but bookkeeping is still priced per instance.
            assert results[0].reused <= frozenset({1, 2})
            assert results[1].reused <= frozenset({3})
        # dp consumes pre and cost: all three stay distinct.
        cache = ResultCache(16)
        solve_batch(batch, solver="dp", cache=cache)
        assert cache.stats.unique_solved == 3

    def test_explicit_stats_with_cache_is_consistent(self):
        from repro.perf.stats import BatchCacheStats

        batch = _mixed_batch(n_unique=2, n_total=6)
        cache = ResultCache(64)
        stats = BatchCacheStats()
        solve_batch(batch, solver="dp", cache=cache, stats=stats)
        solve_batch(batch, solver="dp", cache=cache, stats=stats)
        # Every counter of both calls lands in the one explicit collector.
        assert stats.misses == 2 and stats.unique_solved == 2
        assert stats.hits == 2 and stats.duplicates_folded == 8
        assert stats.hit_rate == pytest.approx(0.5)

    def test_disk_cache_across_executors(self, tmp_path):
        batch = _mixed_batch(n_unique=2, n_total=4)
        solve_batch(
            batch, solver="dp", cache=ResultCache(64, cache_dir=tmp_path)
        )
        warm = ResultCache(64, cache_dir=tmp_path)
        solve_batch(batch, solver="dp", cache=warm)
        assert warm.stats.unique_solved == 0
        assert warm.stats.disk_hits == 2


class TestParallelPath:
    def test_workers_equal_serial(self):
        batch = _mixed_batch(n_unique=4, n_total=8, n_nodes=25)
        serial = solve_batch(batch, solver="dp", workers=1)
        parallel = solve_batch(batch, solver="dp", workers=2)
        assert [r.cost for r in serial] == [r.cost for r in parallel]
        assert [r.n_replicas for r in serial] == [
            r.n_replicas for r in parallel
        ]

    def test_validation(self):
        batch = _mixed_batch(n_unique=1, n_total=1)
        with pytest.raises(ConfigurationError):
            solve_batch(batch, solver="simulated-annealing")
        with pytest.raises(ConfigurationError):
            solve_batch(batch, workers=0)


class TestInstanceSerialization:
    def test_batch_json_round_trip(self):
        batch = random_batch(
            5, duplicate_rate=0.4, n_nodes=20, rng=np.random.default_rng(3)
        )
        text = batch_to_json(batch)
        restored = batch_from_json(text)
        assert len(restored) == len(batch)
        for a, b in zip(batch, restored, strict=True):
            assert a.tree == b.tree
            assert a.preexisting == b.preexisting
            assert a.capacity == b.capacity
            assert a.cost_model == b.cost_model

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            batch_from_json("{nope")
        with pytest.raises(ConfigurationError):
            batch_from_json('{"schema": 99, "instances": []}')

    def test_instance_validation(self):
        tree = paper_tree(5, rng=1)
        with pytest.raises(ConfigurationError):
            BatchInstance(tree, capacity=0)

    def test_random_batch_validation(self):
        with pytest.raises(ConfigurationError):
            random_batch(0)
        with pytest.raises(ConfigurationError):
            random_batch(3, duplicate_rate=1.5)

    def test_random_batch_duplicate_rate(self):
        cost = UniformCostModel()
        batch = random_batch(
            10,
            duplicate_rate=0.8,
            n_nodes=15,
            cost_model=cost,
            rng=np.random.default_rng(5),
        )
        assert len(batch) == 10
        digests = {
            r.extra["digest"] for r in solve_batch(batch, solver="greedy")
        }
        assert len(digests) == 2  # 10 * (1 - 0.8) unique

    @pytest.mark.parametrize(
        "n_instances,rate",
        [
            (2, 0.1),
            (3, 0.1),  # round(2.7) == 3 used to emit zero duplicates
            (4, 0.2),
            (5, 0.1),
            (7, 0.05),
            (9, 0.3),
        ],
    )
    def test_nonzero_rate_always_emits_a_duplicate(self, n_instances, rate):
        from repro.batch import get_policy

        batch = random_batch(
            n_instances,
            duplicate_rate=rate,
            n_nodes=12,
            rng=np.random.default_rng(n_instances),
        )
        assert len(batch) == n_instances
        policy = get_policy("dp")
        digests = {policy.instance_key(i)[1] for i in batch}
        expected = min(
            max(1, round(n_instances * (1.0 - rate))), n_instances - 1
        )
        assert len(digests) == expected
        assert len(digests) < n_instances  # at least one duplicate

    def test_single_instance_batch_cannot_duplicate(self):
        batch = random_batch(
            1, duplicate_rate=0.5, rng=np.random.default_rng(0), n_nodes=10
        )
        assert len(batch) == 1


class TestSingleInstanceSurface:
    """The public single-instance wrappers (`solve_one`, `instance_key`)."""

    def test_instance_key_matches_policy_and_batch_digest(self):
        from repro.batch import instance_key, solve_batch

        batch = _mixed_batch(n_unique=1, n_total=2)
        canonical, digest = instance_key(batch[0], solver="dp")
        assert canonical.parents  # canonical form is populated
        results = solve_batch(batch, solver="dp")
        assert results[0].extra["digest"] == digest
        # The isomorphic duplicate shares the digest (coalescing key).
        assert instance_key(batch[1], solver="dp")[1] == digest
        # A different policy digests differently.
        assert instance_key(batch[0], solver="greedy")[1] != digest

    def test_solve_one_equals_batch_of_one_and_shares_cache(self):
        from repro.batch import ResultCache, solve_batch, solve_one

        instance = _mixed_batch(n_unique=1, n_total=1)[0]
        cache = ResultCache(max_entries=8)
        first = solve_one(instance, solver="dp", cache=cache)
        direct = solve_batch([instance], solver="dp")[0]
        assert sorted(first.replicas) == sorted(direct.replicas)
        assert first.cost == direct.cost
        again = solve_one(instance, solver="dp", cache=cache)
        assert cache.stats.hits == 1  # second call served from the cache
        assert sorted(again.replicas) == sorted(first.replicas)
