"""Tests for :mod:`repro.batch.canonical` (relabelling-invariant digests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.batch.canonical import (
    canonicalize,
    instance_digest,
    relabel_tree,
)
from repro.core.costs import UniformCostModel
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree

from tests.conftest import small_trees

CM = UniformCostModel()


def _digest(tree, pre=(), capacity=10, cm=CM, solver="dp"):
    return instance_digest(canonicalize(tree, pre), capacity, cm, solver)


class TestCanonicalForm:
    def test_mapping_is_a_permutation(self, rng):
        tree = paper_tree(40, rng=rng)
        canon = canonicalize(tree)
        assert sorted(canon.to_canonical) == list(range(40))
        for orig, cid in enumerate(canon.to_canonical):
            assert canon.from_canonical[cid] == orig

    def test_parents_are_preorder(self, rng):
        tree = paper_tree(40, rng=rng)
        canon = canonicalize(tree)
        assert canon.parents[0] is None
        for v, p in enumerate(canon.parents):
            if v > 0:
                assert p is not None and p < v

    def test_canonical_tree_is_isomorphic(self, rng):
        tree = paper_tree(30, rng=rng)
        canon = canonicalize(tree)
        rebuilt = Tree(canon.parents, canon.clients)
        assert rebuilt.n_nodes == tree.n_nodes
        assert rebuilt.total_requests == tree.total_requests
        assert rebuilt.height == tree.height

    def test_map_back_translates_ids(self, rng):
        tree = paper_tree(20, rng=rng)
        canon = canonicalize(tree)
        assert canon.map_back(range(tree.n_nodes)) == frozenset(
            range(tree.n_nodes)
        )

    def test_rejects_bad_preexisting(self, rng):
        tree = paper_tree(5, rng=rng)
        with pytest.raises(ConfigurationError):
            canonicalize(tree, {99})


class TestDigestInvariance:
    def test_relabelled_tree_same_digest(self, rng):
        tree = paper_tree(50, rng=rng)
        pre = random_preexisting(tree, 10, rng=rng)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(tree.n_nodes)
            tree2, pre2 = relabel_tree(tree, perm, pre)
            assert _digest(tree2, pre2) == _digest(tree, pre)

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=12))
    def test_relabelled_tree_same_digest_hypothesis(self, tree):
        perm = np.random.default_rng(tree.n_nodes).permutation(tree.n_nodes)
        tree2, _ = relabel_tree(tree, perm)
        assert _digest(tree2) == _digest(tree)

    def test_different_requests_different_digest(self):
        tree_a = Tree([None, 0, 0], [(1, 4), (2, 2)])
        tree_b = Tree([None, 0, 0], [(1, 4), (2, 3)])
        assert _digest(tree_a) != _digest(tree_b)

    def test_preexisting_location_matters_up_to_symmetry(self):
        # Asymmetric tree: node 1 carries clients, node 2 does not, so a
        # pre-existing server on 1 vs 2 is a genuinely different instance.
        tree = Tree([None, 0, 0], [(1, 4)])
        assert _digest(tree, {1}) != _digest(tree, {2})
        # On a symmetric tree the two placements are isomorphic.
        sym = Tree([None, 0, 0], [(1, 4), (2, 4)])
        assert _digest(sym, {1}) == _digest(sym, {2})

    def test_solver_params_in_digest(self, rng):
        tree = paper_tree(15, rng=rng)
        base = _digest(tree)
        assert _digest(tree, capacity=11) != base
        assert _digest(tree, cm=UniformCostModel(0.2, 0.01)) != base
        assert _digest(tree, solver="greedy") != base

    def test_structure_in_digest(self):
        chain = Tree([None, 0, 1], [(2, 3)])
        star = Tree([None, 0, 0], [(2, 3)])
        assert _digest(chain) != _digest(star)


class TestRelabelTree:
    def test_identity_permutation(self, rng):
        tree = paper_tree(10, rng=rng)
        tree2, pre2 = relabel_tree(tree, list(range(10)), {3})
        assert tree2 == tree
        assert pre2 == frozenset({3})

    def test_rejects_non_permutation(self, rng):
        tree = paper_tree(4, rng=rng)
        with pytest.raises(ValueError):
            relabel_tree(tree, [0, 0, 1, 2])
