"""Tests for :mod:`repro.batch.canonical` (relabelling-invariant digests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.batch.canonical import (
    canonicalize,
    instance_digest,
    labelled_subtree_codes,
    relabel_tree,
)
from repro.core.costs import UniformCostModel
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree

from tests.conftest import small_trees

CM = UniformCostModel()


def _digest(tree, pre=(), capacity=10, cm=CM, solver="dp"):
    return instance_digest(canonicalize(tree, pre), capacity, cm, solver)


class TestCanonicalForm:
    def test_mapping_is_a_permutation(self, rng):
        tree = paper_tree(40, rng=rng)
        canon = canonicalize(tree)
        assert sorted(canon.to_canonical) == list(range(40))
        for orig, cid in enumerate(canon.to_canonical):
            assert canon.from_canonical[cid] == orig

    def test_parents_are_preorder(self, rng):
        tree = paper_tree(40, rng=rng)
        canon = canonicalize(tree)
        assert canon.parents[0] is None
        for v, p in enumerate(canon.parents):
            if v > 0:
                assert p is not None and p < v

    def test_canonical_tree_is_isomorphic(self, rng):
        tree = paper_tree(30, rng=rng)
        canon = canonicalize(tree)
        rebuilt = Tree(canon.parents, canon.clients)
        assert rebuilt.n_nodes == tree.n_nodes
        assert rebuilt.total_requests == tree.total_requests
        assert rebuilt.height == tree.height

    def test_map_back_translates_ids(self, rng):
        tree = paper_tree(20, rng=rng)
        canon = canonicalize(tree)
        assert canon.map_back(range(tree.n_nodes)) == frozenset(
            range(tree.n_nodes)
        )

    def test_rejects_bad_preexisting(self, rng):
        tree = paper_tree(5, rng=rng)
        with pytest.raises(ConfigurationError):
            canonicalize(tree, {99})


class TestDigestInvariance:
    def test_relabelled_tree_same_digest(self, rng):
        tree = paper_tree(50, rng=rng)
        pre = random_preexisting(tree, 10, rng=rng)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(tree.n_nodes)
            tree2, pre2 = relabel_tree(tree, perm, pre)
            assert _digest(tree2, pre2) == _digest(tree, pre)

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=12))
    def test_relabelled_tree_same_digest_hypothesis(self, tree):
        perm = np.random.default_rng(tree.n_nodes).permutation(tree.n_nodes)
        tree2, _ = relabel_tree(tree, perm)
        assert _digest(tree2) == _digest(tree)

    def test_different_requests_different_digest(self):
        tree_a = Tree([None, 0, 0], [(1, 4), (2, 2)])
        tree_b = Tree([None, 0, 0], [(1, 4), (2, 3)])
        assert _digest(tree_a) != _digest(tree_b)

    def test_preexisting_location_matters_up_to_symmetry(self):
        # Asymmetric tree: node 1 carries clients, node 2 does not, so a
        # pre-existing server on 1 vs 2 is a genuinely different instance.
        tree = Tree([None, 0, 0], [(1, 4)])
        assert _digest(tree, {1}) != _digest(tree, {2})
        # On a symmetric tree the two placements are isomorphic.
        sym = Tree([None, 0, 0], [(1, 4), (2, 4)])
        assert _digest(sym, {1}) == _digest(sym, {2})

    def test_solver_params_in_digest(self, rng):
        tree = paper_tree(15, rng=rng)
        base = _digest(tree)
        assert _digest(tree, capacity=11) != base
        assert _digest(tree, cm=UniformCostModel(0.2, 0.01)) != base
        assert _digest(tree, solver="greedy") != base

    def test_structure_in_digest(self):
        chain = Tree([None, 0, 1], [(2, 3)])
        star = Tree([None, 0, 0], [(2, 3)])
        assert _digest(chain) != _digest(star)


class TestModeAwareDigests:
    def test_relabelled_mode_mapping_same_digest(self, rng):
        from repro.tree.generators import random_preexisting_modes

        tree = paper_tree(40, rng=rng)
        pre = random_preexisting_modes(tree, 8, 2, rng=rng)
        base = _digest(tree, pre)
        for seed in range(4):
            perm = np.random.default_rng(seed).permutation(tree.n_nodes)
            tree2, pre2 = relabel_tree(tree, perm, pre)
            assert _digest(tree2, pre2) == base

    def test_mode_zero_mapping_equals_plain_set(self, rng):
        tree = paper_tree(25, rng=rng)
        pre = random_preexisting(tree, 5, rng=rng)
        assert _digest(tree, {v: 0 for v in pre}) == _digest(tree, pre)

    def test_modes_distinguish_instances(self, rng):
        # Old modes ride in the digest's pre_modes field (the power
        # policies set include_pre_modes), not in the canonical ids.
        tree = paper_tree(25, rng=rng)
        pre = sorted(random_preexisting(tree, 5, rng=rng))

        def moded_digest(modes):
            return instance_digest(
                canonicalize(tree, modes), None, None, "min_power",
                include_pre_modes=True,
            )

        assert moded_digest({v: 0 for v in pre}) != moded_digest(
            {v: 1 for v in pre}
        )


class TestDeepTrees:
    """Near-linear canonicalisation on path-heavy topologies.

    The timing regression lives in ``benchmarks/bench_canonical_deep.py``;
    here we pin correctness at depth 1000.
    """

    @staticmethod
    def _path(depth, requests=(3,)):
        parents = [None] + list(range(depth - 1))
        clients = [(depth - 1, r) for r in requests] + [(depth // 2, 2)]
        return Tree(parents, clients, validate=False)

    def test_deep_path_digest_invariant_under_reversal(self):
        tree = self._path(1000)
        # Reversal is a worst case for the old string encoding: the
        # post-order visits the longest codes first.
        perm = list(range(999, -1, -1))
        tree2, _ = relabel_tree(tree, perm)
        assert _digest(tree2) == _digest(tree)

    def test_deep_path_canonical_is_preorder(self):
        canon = canonicalize(self._path(1000))
        assert canon.parents[0] is None
        assert all(
            p is not None and p < v
            for v, p in enumerate(canon.parents)
            if v > 0
        )


class TestRelabelTree:
    def test_identity_permutation(self, rng):
        tree = paper_tree(10, rng=rng)
        tree2, pre2 = relabel_tree(tree, list(range(10)), {3})
        assert tree2 == tree
        assert pre2 == frozenset({3})

    def test_rejects_non_permutation(self, rng):
        tree = paper_tree(4, rng=rng)
        with pytest.raises(ValueError):
            relabel_tree(tree, [0, 0, 1, 2])


class TestLabelledSubtreeCodes:
    """Per-node labelled AHU codes (the power-DP memoization signatures)."""

    def test_identical_sibling_subtrees_share_codes(self):
        # Root with two identical 2-leaf hubs and one different hub.
        parents = [None, 0, 0, 0, 1, 1, 2, 2, 3, 3]
        clients = [(4, 2), (5, 3), (6, 2), (7, 3), (8, 2), (9, 4)]
        tree = Tree(parents, clients)
        sub = labelled_subtree_codes(tree)
        assert sub.codes[1] == sub.codes[2]
        assert sub.table_keys[1] == sub.table_keys[2]
        assert sub.codes[1] != sub.codes[3]

    def test_load_sum_annotation(self):
        # One 4-request client vs two 2-request clients: same code (the
        # DP consumes per-node sums), unlike canonicalize's multisets.
        t1 = Tree([None, 0], [(1, 4)])
        t2 = Tree([None, 0], [(1, 2), (1, 2)])
        assert (
            labelled_subtree_codes(t1).codes[1]
            == labelled_subtree_codes(t2).codes[1]
        )

    def test_pre_mode_distinguishes_codes_not_table_keys(self):
        parents = [None, 0, 0]
        tree = Tree(parents, [(1, 3), (2, 3)])
        sub = labelled_subtree_codes(tree, {1: 1})
        # Node 1's own marker is excluded from its table key ...
        assert sub.table_keys[1] == sub.table_keys[2]
        # ... but included in its code (the parent prices reuse).
        assert sub.codes[1] != sub.codes[2]

    def test_pre_mode_inside_subtree_separates_table_keys(self):
        parents = [None, 0, 0, 1, 2]
        tree = Tree(parents, [(3, 2), (4, 2)])
        sub = labelled_subtree_codes(tree, {3: 0})
        assert sub.table_keys[1] != sub.table_keys[2]

    def test_load_changes_codes(self):
        parents = [None, 0, 0]
        t = Tree(parents, [(1, 3), (2, 4)])
        sub = labelled_subtree_codes(t)
        assert sub.codes[1] != sub.codes[2]
        assert sub.table_keys[1] != sub.table_keys[2]

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=10, max_requests=4))
    def test_codes_are_relabelling_equivariant(self, tree):
        # Relabelling the tree permutes the codes with it: equal-code
        # node pairs map to equal-code node pairs.
        rng = np.random.default_rng(7)
        perm = rng.permutation(tree.n_nodes).tolist()
        relabelled, _ = relabel_tree(tree, perm)
        a = labelled_subtree_codes(tree)
        b = labelled_subtree_codes(relabelled)
        n = tree.n_nodes
        for u in range(n):
            for v in range(n):
                assert (a.codes[u] == a.codes[v]) == (
                    b.codes[perm[u]] == b.codes[perm[v]]
                )
                assert (a.table_keys[u] == a.table_keys[v]) == (
                    b.table_keys[perm[u]] == b.table_keys[perm[v]]
                )
