"""Tests for :mod:`repro.batch.canonical` (relabelling-invariant digests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.batch.canonical import (
    canonicalize,
    instance_digest,
    relabel_tree,
)
from repro.core.costs import UniformCostModel
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree

from tests.conftest import small_trees

CM = UniformCostModel()


def _digest(tree, pre=(), capacity=10, cm=CM, solver="dp"):
    return instance_digest(canonicalize(tree, pre), capacity, cm, solver)


class TestCanonicalForm:
    def test_mapping_is_a_permutation(self, rng):
        tree = paper_tree(40, rng=rng)
        canon = canonicalize(tree)
        assert sorted(canon.to_canonical) == list(range(40))
        for orig, cid in enumerate(canon.to_canonical):
            assert canon.from_canonical[cid] == orig

    def test_parents_are_preorder(self, rng):
        tree = paper_tree(40, rng=rng)
        canon = canonicalize(tree)
        assert canon.parents[0] is None
        for v, p in enumerate(canon.parents):
            if v > 0:
                assert p is not None and p < v

    def test_canonical_tree_is_isomorphic(self, rng):
        tree = paper_tree(30, rng=rng)
        canon = canonicalize(tree)
        rebuilt = Tree(canon.parents, canon.clients)
        assert rebuilt.n_nodes == tree.n_nodes
        assert rebuilt.total_requests == tree.total_requests
        assert rebuilt.height == tree.height

    def test_map_back_translates_ids(self, rng):
        tree = paper_tree(20, rng=rng)
        canon = canonicalize(tree)
        assert canon.map_back(range(tree.n_nodes)) == frozenset(
            range(tree.n_nodes)
        )

    def test_rejects_bad_preexisting(self, rng):
        tree = paper_tree(5, rng=rng)
        with pytest.raises(ConfigurationError):
            canonicalize(tree, {99})


class TestDigestInvariance:
    def test_relabelled_tree_same_digest(self, rng):
        tree = paper_tree(50, rng=rng)
        pre = random_preexisting(tree, 10, rng=rng)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(tree.n_nodes)
            tree2, pre2 = relabel_tree(tree, perm, pre)
            assert _digest(tree2, pre2) == _digest(tree, pre)

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=12))
    def test_relabelled_tree_same_digest_hypothesis(self, tree):
        perm = np.random.default_rng(tree.n_nodes).permutation(tree.n_nodes)
        tree2, _ = relabel_tree(tree, perm)
        assert _digest(tree2) == _digest(tree)

    def test_different_requests_different_digest(self):
        tree_a = Tree([None, 0, 0], [(1, 4), (2, 2)])
        tree_b = Tree([None, 0, 0], [(1, 4), (2, 3)])
        assert _digest(tree_a) != _digest(tree_b)

    def test_preexisting_location_matters_up_to_symmetry(self):
        # Asymmetric tree: node 1 carries clients, node 2 does not, so a
        # pre-existing server on 1 vs 2 is a genuinely different instance.
        tree = Tree([None, 0, 0], [(1, 4)])
        assert _digest(tree, {1}) != _digest(tree, {2})
        # On a symmetric tree the two placements are isomorphic.
        sym = Tree([None, 0, 0], [(1, 4), (2, 4)])
        assert _digest(sym, {1}) == _digest(sym, {2})

    def test_solver_params_in_digest(self, rng):
        tree = paper_tree(15, rng=rng)
        base = _digest(tree)
        assert _digest(tree, capacity=11) != base
        assert _digest(tree, cm=UniformCostModel(0.2, 0.01)) != base
        assert _digest(tree, solver="greedy") != base

    def test_structure_in_digest(self):
        chain = Tree([None, 0, 1], [(2, 3)])
        star = Tree([None, 0, 0], [(2, 3)])
        assert _digest(chain) != _digest(star)


class TestModeAwareDigests:
    def test_relabelled_mode_mapping_same_digest(self, rng):
        from repro.tree.generators import random_preexisting_modes

        tree = paper_tree(40, rng=rng)
        pre = random_preexisting_modes(tree, 8, 2, rng=rng)
        base = _digest(tree, pre)
        for seed in range(4):
            perm = np.random.default_rng(seed).permutation(tree.n_nodes)
            tree2, pre2 = relabel_tree(tree, perm, pre)
            assert _digest(tree2, pre2) == base

    def test_mode_zero_mapping_equals_plain_set(self, rng):
        tree = paper_tree(25, rng=rng)
        pre = random_preexisting(tree, 5, rng=rng)
        assert _digest(tree, {v: 0 for v in pre}) == _digest(tree, pre)

    def test_modes_distinguish_instances(self, rng):
        # Old modes ride in the digest's pre_modes field (the power
        # policies set include_pre_modes), not in the canonical ids.
        tree = paper_tree(25, rng=rng)
        pre = sorted(random_preexisting(tree, 5, rng=rng))

        def moded_digest(modes):
            return instance_digest(
                canonicalize(tree, modes), None, None, "min_power",
                include_pre_modes=True,
            )

        assert moded_digest({v: 0 for v in pre}) != moded_digest(
            {v: 1 for v in pre}
        )


class TestDeepTrees:
    """Near-linear canonicalisation on path-heavy topologies.

    The timing regression lives in ``benchmarks/bench_canonical_deep.py``;
    here we pin correctness at depth 1000.
    """

    @staticmethod
    def _path(depth, requests=(3,)):
        parents = [None] + list(range(depth - 1))
        clients = [(depth - 1, r) for r in requests] + [(depth // 2, 2)]
        return Tree(parents, clients, validate=False)

    def test_deep_path_digest_invariant_under_reversal(self):
        tree = self._path(1000)
        # Reversal is a worst case for the old string encoding: the
        # post-order visits the longest codes first.
        perm = list(range(999, -1, -1))
        tree2, _ = relabel_tree(tree, perm)
        assert _digest(tree2) == _digest(tree)

    def test_deep_path_canonical_is_preorder(self):
        canon = canonicalize(self._path(1000))
        assert canon.parents[0] is None
        assert all(
            p is not None and p < v
            for v, p in enumerate(canon.parents)
            if v > 0
        )


class TestRelabelTree:
    def test_identity_permutation(self, rng):
        tree = paper_tree(10, rng=rng)
        tree2, pre2 = relabel_tree(tree, list(range(10)), {3})
        assert tree2 == tree
        assert pre2 == frozenset({3})

    def test_rejects_non_permutation(self, rng):
        tree = paper_tree(4, rng=rng)
        with pytest.raises(ValueError):
            relabel_tree(tree, [0, 0, 1, 2])
