"""Supervised solve pool, poison quarantine and fault injection.

Batch-layer contract of the robustness stack:

* :class:`~repro.batch.quarantine.QuarantineRegistry` — TTL semantics,
  counters, snapshots — under an injected fake clock;
* :func:`~repro.batch.quarantine.bisect_culprits` isolates multiple
  culprits in ``O(k log n)`` probes;
* the supervised executor attributes injected crashes and hangs
  (:mod:`repro.faults`) to their digest, quarantines it, rebuilds the
  pool exactly once per incident, and never loses other digests'
  completed results;
* cache-line corruption is caught by the CRC envelope, moved to a
  ``.quarantine`` sidecar, counted, and the digest re-solves to a
  byte-identical record.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.batch import BatchInstance, ResultCache, get_policy, solve_batch
from repro.batch.executor import instance_key
from repro.batch.quarantine import (
    QuarantineRegistry,
    bisect_culprits,
)
from repro.exceptions import (
    ConfigurationError,
    QuarantinedError,
    SolveTimeoutError,
)
from repro.faults import InjectedFaultError, parse_plan, reset as faults_reset
from repro.perf.stats import BatchCacheStats
from repro.tree.generators import paper_tree, random_preexisting


@pytest.fixture(autouse=True)
def _clean_faults():
    faults_reset()
    yield
    faults_reset()


def _instance(seed: int, n_nodes: int = 25) -> BatchInstance:
    rng = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, rng=rng)
    return BatchInstance(tree, 10, random_preexisting(tree, 3, rng=rng))


def _batch_with_digests(n: int, start_seed: int = 100):
    instances = [_instance(start_seed + i) for i in range(n)]
    digests = [instance_key(i, solver="dp")[1] for i in instances]
    assert len(set(digests)) == n
    return instances, digests


class TestQuarantineRegistry:
    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        reg = QuarantineRegistry(ttl=10.0, clock=lambda: now[0])
        reg.add("d1" * 32, "crash")
        assert reg.active("d1" * 32)
        with pytest.raises(QuarantinedError) as info:
            reg.check("d1" * 32)
        assert info.value.digest == "d1" * 32
        assert info.value.reason == "crash"
        now[0] = 10.5  # past the TTL: entry lazily purged, no error
        reg.check("d1" * 32)
        assert not reg.active("d1" * 32)
        assert reg.added == 1 and reg.blocked == 1 and reg.expired == 1

    def test_blocked_counter_feeds_stats(self):
        stats = BatchCacheStats()
        reg = QuarantineRegistry(ttl=60.0)
        reg.add("ab" * 32, "timeout", stats=stats)
        with pytest.raises(QuarantinedError):
            reg.check("ab" * 32, stats=stats)
        assert stats.quarantined == 1
        assert stats.quarantine_blocked == 1
        # Unrelated digests are unaffected.
        reg.check("cd" * 32, stats=stats)
        assert stats.quarantine_blocked == 1

    def test_release_and_len(self):
        reg = QuarantineRegistry(ttl=60.0)
        reg.add("aa", "crash")
        reg.add("bb", "timeout")
        assert len(reg) == 2
        assert reg.release("aa")
        assert not reg.release("aa")
        assert len(reg) == 1

    def test_snapshot_shape(self):
        now = [100.0]
        reg = QuarantineRegistry(ttl=30.0, clock=lambda: now[0])
        reg.add("ff" * 32, "crash")
        reg.add("aa" * 32, "timeout")
        snap = reg.snapshot()
        assert snap["active"] == 2 and snap["added"] == 2
        digests = [e["digest"] for e in snap["entries"]]
        assert digests == sorted(digests)
        assert all(0 < e["ttl_left"] <= 30.0 for e in snap["entries"])
        json.dumps(snap)  # must be wire-able for the perf op

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            QuarantineRegistry(ttl=0)


class TestBisectCulprits:
    def test_isolates_multiple_culprits_in_log_probes(self):
        items = list(range(32))
        bad = {5, 21}
        probes = []

        def probe(group):
            probes.append(list(group))
            if bad & set(group):
                raise ValueError(f"bad in {group}")

        culprits = bisect_culprits(items, probe)
        assert [item for item, _ in culprits] == [5, 21]
        assert all(isinstance(exc, ValueError) for _, exc in culprits)
        # O(k log n), nowhere near the n probes of one-at-a-time.
        assert len(probes) <= 2 * 2 * 6 + 2

    def test_no_culprits_costs_one_probe(self):
        probes = []
        assert bisect_culprits([1, 2, 3], probes.append) == []
        assert len(probes) == 1

    def test_all_items_bad(self):
        culprits = bisect_culprits(
            [1, 2, 3], lambda g: (_ for _ in ()).throw(RuntimeError("x"))
        )
        assert [item for item, _ in culprits] == [1, 2, 3]


class TestFaultPlanParsing:
    def test_round_trip_of_all_keys(self):
        plan = parse_plan(
            "crash_on_digest=ab,cd;hang_seconds=ef:2.5;fail_rate=0.25:7;"
            "corrupt_line=12;corrupt_rate=0.5:3;drop_connection=34:2"
        )
        assert plan.crash_digests == ("ab", "cd")
        assert plan.hangs == (("ef", 2.5),)
        assert plan.fail_rate == 0.25 and plan.fail_seed == 7
        assert plan.corrupt_digests == ("12",)
        assert plan.corrupt_rate == 0.5 and plan.corrupt_seed == 3
        assert plan.drops == (("34", 2),)

    def test_blank_spec_is_inactive(self):
        assert parse_plan("") is None
        assert parse_plan("   ") is None

    @pytest.mark.parametrize(
        "spec",
        ["nonsense", "fail_rate=2.0", "hang_seconds=ab", "unknown=1"],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            parse_plan(spec)

    def test_fail_rate_draw_is_deterministic(self):
        def draws(spec):
            plan = parse_plan(spec)
            out = []
            for digest in ("aa" * 32, "bb" * 32, "cc" * 32, "dd" * 32):
                try:
                    plan.on_solve(digest)
                    out.append("ok")
                except InjectedFaultError:
                    out.append("fail")
            return out

        # Same digests + same seed -> same outcomes on every parse; a
        # different seed reshuffles them.
        assert draws("fail_rate=0.5:42") == draws("fail_rate=0.5:42")
        assert draws("fail_rate=1.0") == ["fail"] * 4
        assert draws("fail_rate=0.0") == ["ok"] * 4


class TestSupervisedExecutor:
    def test_injected_crash_quarantines_digest_and_keeps_others(
        self, monkeypatch
    ):
        instances, digests = _batch_with_digests(6)
        poison = digests[2]
        reference = solve_batch(instances, solver="dp")  # before faults
        monkeypatch.setenv("REPRO_FAULTS", f"crash_on_digest={poison}")

        stats = BatchCacheStats()
        quarantine = QuarantineRegistry(ttl=300.0)
        errors: dict[str, Exception] = {}
        results = solve_batch(
            instances,
            solver="dp",
            workers=2,
            stats=stats,
            quarantine=quarantine,
            errors_out=errors,
            solve_timeout=5.0,
        )
        assert isinstance(errors[poison], QuarantinedError)
        assert results[2] is None
        for i, result in enumerate(results):
            if i != 2:
                assert result.cost == reference[i].cost
        assert stats.pool_rebuilds == 1
        assert stats.quarantined == 1
        assert quarantine.active(poison)

        # Resubmission fails fast at admission: no second pool break.
        errors2: dict[str, Exception] = {}
        results2 = solve_batch(
            [instances[2]],
            solver="dp",
            workers=2,
            stats=stats,
            quarantine=quarantine,
            errors_out=errors2,
            solve_timeout=5.0,
        )
        assert results2 == [None]
        assert isinstance(errors2[poison], QuarantinedError)
        assert stats.pool_rebuilds == 1  # unchanged
        assert stats.quarantine_blocked == 1

    def test_injected_hang_times_out_within_deadline_budget(
        self, monkeypatch
    ):
        import time as _time

        instances, digests = _batch_with_digests(4, start_seed=300)
        hung = digests[1]
        monkeypatch.setenv("REPRO_FAULTS", f"hang_seconds={hung}:30")

        stats = BatchCacheStats()
        quarantine = QuarantineRegistry(ttl=300.0)
        errors: dict[str, Exception] = {}
        t0 = _time.monotonic()
        results = solve_batch(
            instances,
            solver="dp",
            workers=2,
            stats=stats,
            quarantine=quarantine,
            errors_out=errors,
            solve_timeout=1.0,
        )
        elapsed = _time.monotonic() - t0
        exc = errors[hung]
        assert isinstance(exc, SolveTimeoutError)
        assert exc.digests == (hung,)
        assert results[1] is None
        # Wave deadline + sandbox probe deadline, plus process startup
        # slack: nowhere near the 30 s injected hang.
        assert elapsed < 2 * 1.0 + 4.0
        assert stats.solve_timeouts == 1
        assert stats.pool_rebuilds == 1
        assert quarantine.active(hung)
        # Healthy batch-mates still solved.
        assert all(results[i] is not None for i in (0, 2, 3))

    def test_fail_rate_error_is_captured_not_fatal(self, monkeypatch):
        instances, digests = _batch_with_digests(3, start_seed=400)
        monkeypatch.setenv("REPRO_FAULTS", "fail_rate=1.0")
        errors: dict[str, Exception] = {}
        results = solve_batch(
            instances, solver="dp", errors_out=errors
        )
        assert results == [None, None, None]
        assert set(errors) == set(digests)
        assert all(isinstance(e, InjectedFaultError) for e in errors.values())

    def test_without_errors_out_failures_raise(self, monkeypatch):
        instances, _ = _batch_with_digests(2, start_seed=500)
        monkeypatch.setenv("REPRO_FAULTS", "fail_rate=1.0")
        with pytest.raises(InjectedFaultError):
            solve_batch(instances, solver="dp")

    def test_solve_timeout_rejects_plain_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        instances, _ = _batch_with_digests(1, start_seed=600)
        with ThreadPoolExecutor(1) as pool:
            with pytest.raises(ConfigurationError):
                solve_batch(
                    instances, solver="dp", pool=pool, solve_timeout=1.0
                )

    def test_solve_timeout_must_be_positive(self):
        instances, _ = _batch_with_digests(1, start_seed=700)
        with pytest.raises(ConfigurationError):
            solve_batch(instances, solver="dp", solve_timeout=0)


class TestCacheCorruption:
    def test_corrupt_line_quarantined_and_resolved_byte_identical(
        self, tmp_path, monkeypatch
    ):
        instance = _instance(800)
        digest = instance_key(instance, solver="dp")[1]
        policy = get_policy("dp")

        clean = ResultCache(max_entries=16, cache_dir=tmp_path / "clean")
        reference = json.dumps(
            policy.result_to_wire(
                solve_batch([instance], solver="dp", cache=clean)[0]
            ),
            sort_keys=True,
        )

        cache_dir = tmp_path / "store"
        monkeypatch.setenv("REPRO_FAULTS", f"corrupt_line={digest}")
        writer = ResultCache(max_entries=16, cache_dir=cache_dir)
        solve_batch([instance], solver="dp", cache=writer)
        monkeypatch.delenv("REPRO_FAULTS")

        # A fresh cache on the same directory must refuse the mangled
        # line: miss, sidecar, counter — never a silently-wrong record.
        reader = ResultCache(max_entries=16, cache_dir=cache_dir)
        assert reader.get(digest) is None
        assert reader.stats.corrupt_lines >= 1
        sidecars = list(cache_dir.glob("*.quarantine"))
        assert sidecars and any(
            "#CORRUPT" in p.read_text(encoding="utf-8") for p in sidecars
        )

        resolved = json.dumps(
            policy.result_to_wire(
                solve_batch([instance], solver="dp", cache=reader)[0]
            ),
            sort_keys=True,
        )
        assert resolved == reference

        # And the re-written line round-trips cleanly now.
        reopened = ResultCache(max_entries=16, cache_dir=cache_dir)
        assert reopened.get(digest) is not None
        assert reopened.stats.corrupt_lines == 0
