"""Power policies in the batch pipeline: digest invariance + round-trips.

Satellite coverage for the solver-policy registry: random relabellings of
an instance must produce identical ``min_power``/``power_frontier``
digests, and fanned-out results must match a direct per-instance solve
point-for-point (cost/power pairs are relabelling-invariant).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    BatchInstance,
    ResultCache,
    batch_from_json,
    batch_to_json,
    get_policy,
    random_batch,
    solve_batch,
)
from repro.batch.canonical import canonicalize, relabel_tree
from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError
from repro.power.dp_power_pareto import PowerFrontier, power_frontier
from repro.power.greedy_power import GreedyPowerCandidates
from repro.power.modes import ModeSet, PowerModel
from repro.power.result import ModalPlacementResult
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)

POWER_SOLVERS = ("min_power", "power_frontier", "greedy_power")


def _power_instance(n_nodes=24, n_pre=5, seed=0, with_modes=True):
    gen = np.random.default_rng(seed)
    tree = paper_tree(n_nodes, request_range=(1, 4), rng=gen)
    pre = random_preexisting(tree, n_pre, rng=gen)
    pre_modes = (
        tuple((v, int(gen.integers(0, 2))) for v in sorted(pre))
        if with_modes
        else None
    )
    return BatchInstance(
        tree,
        10,
        pre,
        power_model=PM,
        modal_cost_model=CM,
        preexisting_modes=pre_modes,
    )


def _relabelled_copy(instance, seed):
    perm = np.random.default_rng(seed).permutation(instance.tree.n_nodes)
    tree, pre_modes = relabel_tree(
        instance.tree, perm, dict(instance.preexisting_modes or ())
    )
    return BatchInstance(
        tree,
        instance.capacity,
        power_model=instance.power_model,
        modal_cost_model=instance.modal_cost_model,
        preexisting_modes=tuple(sorted(pre_modes.items())),
    )


class TestDigestInvariance:
    @pytest.mark.parametrize("solver", POWER_SOLVERS)
    def test_random_relabellings_share_digest(self, solver):
        policy = get_policy(solver)
        instance = _power_instance(seed=11)
        base = policy.instance_key(instance)[1]
        for seed in range(6):
            copy = _relabelled_copy(instance, seed)
            assert policy.instance_key(copy)[1] == base

    def test_pre_modes_enter_power_digests(self):
        gen = np.random.default_rng(2)
        tree = paper_tree(18, rng=gen)
        pre = sorted(random_preexisting(tree, 3, rng=gen))
        low = BatchInstance(
            tree, 10, power_model=PM,
            preexisting_modes=tuple((v, 0) for v in pre),
        )
        high = BatchInstance(
            tree, 10, power_model=PM,
            preexisting_modes=tuple((v, 1) for v in pre),
        )
        plain = BatchInstance(
            tree, 10, frozenset(pre), power_model=PM
        )
        policy = get_policy("min_power")
        assert policy.instance_key(low)[1] != policy.instance_key(high)[1]
        # A plain pre-existing set is exactly the all-modes-0 mapping.
        assert policy.instance_key(plain)[1] == policy.instance_key(low)[1]

    def test_power_model_params_enter_digest(self):
        instance = _power_instance(seed=3)
        other = BatchInstance(
            instance.tree,
            instance.capacity,
            power_model=PowerModel(PM.modes, static_power=1.0, alpha=2.0),
            modal_cost_model=instance.modal_cost_model,
            preexisting_modes=instance.preexisting_modes,
        )
        policy = get_policy("min_power")
        assert policy.instance_key(instance)[1] != policy.instance_key(other)[1]


class TestFanOutMatchesDirectSolve:
    def test_frontier_fan_out_matches_direct_point_for_point(self):
        instance = _power_instance(seed=7)
        duplicates = [instance] + [
            _relabelled_copy(instance, s) for s in range(4)
        ]
        results = solve_batch(duplicates, solver="power_frontier")
        for inst, frontier in zip(duplicates, results, strict=True):
            assert isinstance(frontier, PowerFrontier)
            direct = power_frontier(
                inst.tree, PM, CM, inst.pre_modes()
            )
            assert frontier.pairs() == direct.pairs()

    def test_min_power_fan_out_matches_direct(self):
        instance = _power_instance(seed=13)
        duplicates = [instance] + [
            _relabelled_copy(instance, s) for s in range(3)
        ]
        results = solve_batch(duplicates, solver="min_power")
        for inst, result in zip(duplicates, results, strict=True):
            assert isinstance(result, ModalPlacementResult)
            direct = power_frontier(
                inst.tree, PM, CM, inst.pre_modes()
            ).min_power()
            assert result.power == pytest.approx(direct.power)
            assert result.cost == pytest.approx(direct.cost)

    def test_greedy_power_fan_out_is_verified_and_consistent(self):
        instance = _power_instance(seed=17)
        duplicates = [instance] + [
            _relabelled_copy(instance, s) for s in range(3)
        ]
        results = solve_batch(duplicates, solver="greedy_power")
        # All relabelled duplicates share one canonical sweep, so their
        # candidate (cost, power) series are identical; every candidate
        # was re-verified on its own tree during fan-out.
        first = results[0]
        assert isinstance(first, GreedyPowerCandidates)
        assert len(first.candidates) >= 1
        for result in results[1:]:
            assert result.pairs() == first.pairs()
        best = first.min_power()
        assert best is not None and best.power > 0


class TestCacheRoundTrip:
    @pytest.mark.parametrize("solver", POWER_SOLVERS)
    def test_90pct_duplicate_batch_one_solve_per_digest(self, solver, tmp_path):
        # Acceptance criterion: a 90%-duplicate batch of relabelled
        # isomorphic instances yields one unique solve per digest through
        # cache + process pool, and every fanned-out result re-verifies.
        batch = random_batch(
            20,
            duplicate_rate=0.9,
            n_nodes=30,
            power_model=PM,
            modal_cost_model=CM,
            rng=np.random.default_rng(42),
        )
        cache = ResultCache(64, cache_dir=tmp_path)
        results = solve_batch(batch, solver=solver, workers=2, cache=cache)
        assert len(results) == 20
        assert cache.stats.unique_solved == 2  # 20 * (1 - 0.9)
        assert cache.stats.duplicates_folded == 18
        # Warm pass: served entirely from the persistent store.
        warm = ResultCache(64, cache_dir=tmp_path)
        again = solve_batch(batch, solver=solver, workers=2, cache=warm)
        assert warm.stats.unique_solved == 0
        if solver == "power_frontier":
            assert [r.pairs() for r in again] == [r.pairs() for r in results]
        elif solver == "min_power":
            assert [r.power for r in again] == [r.power for r in results]
        else:
            assert [r.pairs() for r in again] == [r.pairs() for r in results]

    def test_parallel_equals_serial(self):
        batch = random_batch(
            8,
            duplicate_rate=0.5,
            n_nodes=24,
            power_model=PM,
            rng=np.random.default_rng(9),
        )
        serial = solve_batch(batch, solver="min_power", workers=1)
        parallel = solve_batch(batch, solver="min_power", workers=2)
        assert [r.power for r in serial] == [r.power for r in parallel]
        assert [r.cost for r in serial] == [r.cost for r in parallel]


class TestValidationAndSerialization:
    def test_power_policy_requires_power_model(self):
        batch = random_batch(2, n_nodes=12, rng=np.random.default_rng(1))
        with pytest.raises(ConfigurationError, match="power model"):
            solve_batch(batch, solver="min_power")

    def test_instance_json_round_trip_with_power_fields(self):
        batch = [
            _power_instance(seed=s, with_modes=bool(s % 2)) for s in range(4)
        ]
        restored = batch_from_json(batch_to_json(batch))
        for a, b in zip(batch, restored, strict=True):
            assert a.tree == b.tree
            assert a.power_model == b.power_model
            assert a.modal_cost_model == b.modal_cost_model
            assert a.preexisting_modes == b.preexisting_modes
            assert a.preexisting == b.preexisting

    def test_schema1_batch_still_loads(self):
        batch = random_batch(2, n_nodes=10, rng=np.random.default_rng(0))
        text = batch_to_json(batch).replace('"schema": 2', '"schema": 1')
        assert len(batch_from_json(text)) == 2

    def test_preexisting_modes_validated(self):
        tree = paper_tree(10, rng=np.random.default_rng(4))
        with pytest.raises(ConfigurationError, match="invalid mode"):
            BatchInstance(
                tree, 10, power_model=PM, preexisting_modes=((1, 9),)
            )
        with pytest.raises(ConfigurationError, match="match"):
            BatchInstance(
                tree, 10, frozenset({1, 2}),
                preexisting_modes=((3, 0),),
            )

    def test_modal_cost_mode_count_validated(self):
        tree = paper_tree(10, rng=np.random.default_rng(4))
        with pytest.raises(ConfigurationError, match="modes"):
            BatchInstance(
                tree, 10, power_model=PM,
                modal_cost_model=ModalCostModel.uniform(3),
            )


class TestModeAwareCanonicalisation:
    def test_canonicalize_accepts_mode_mapping(self):
        tree = Tree([None, 0, 0], [(1, 4), (2, 4)])
        canon = canonicalize(tree, {1: 1, 2: 0})
        assert canon.preexisting == (1, 2)
        assert sorted(m for _, m in canon.preexisting_modes) == [0, 1]

    def test_symmetric_siblings_mode_swap_is_isomorphic(self):
        tree = Tree([None, 0, 0], [(1, 4), (2, 4)])
        a = canonicalize(tree, {1: 1, 2: 0})
        b = canonicalize(tree, {1: 0, 2: 1})
        assert a.parents == b.parents
        assert a.preexisting_modes == b.preexisting_modes
