"""Tests for :mod:`repro.dynamics.migration`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.dynamics.migration import MigrationStep, StepKind, plan_migration
from repro.exceptions import ConfigurationError


class TestPlanFromSets:
    def test_diff_kinds(self):
        plan = plan_migration({1, 2, 3}, {2, 3, 4})
        assert {s.node for s in plan.by_kind(StepKind.CREATE)} == {4}
        assert {s.node for s in plan.by_kind(StepKind.DELETE)} == {1}
        assert {s.node for s in plan.by_kind(StepKind.KEEP)} == {2, 3}
        assert (plan.n_created, plan.n_deleted, plan.n_kept) == (1, 1, 2)

    def test_ordering_make_before_break(self):
        plan = plan_migration({1}, {2})
        kinds = [s.kind for s in plan.steps]
        assert kinds.index(StepKind.CREATE) < kinds.index(StepKind.DELETE)

    def test_empty_plan(self):
        plan = plan_migration(set(), set())
        assert plan.steps == ()
        assert str(plan) == "(no changes)"

    def test_uniform_cost_matches_equation2(self):
        cm = UniformCostModel(0.3, 0.07)
        old, new = {1, 2, 5}, {2, 5, 7, 8}
        plan = plan_migration(old, new)
        assert plan.cost(cm) == pytest.approx(cm.of_placement(new, old))

    @settings(max_examples=60, deadline=None)
    @given(
        st.frozensets(st.integers(0, 15)),
        st.frozensets(st.integers(0, 15)),
        st.floats(0, 2),
        st.floats(0, 2),
    )
    def test_cost_identity_any_sets(self, old, new, create, delete):
        cm = UniformCostModel(create, delete)
        assert plan_migration(old, new).cost(cm) == pytest.approx(
            cm.of_placement(new, old)
        )


class TestPlanFromModes:
    def test_upgrade_downgrade_detected(self):
        plan = plan_migration({1: 0, 2: 1, 3: 1}, {1: 1, 2: 0, 3: 1, 4: 0})
        assert plan.by_kind(StepKind.UPGRADE) == (
            MigrationStep(StepKind.UPGRADE, 1, 0, 1),
        )
        assert plan.by_kind(StepKind.DOWNGRADE) == (
            MigrationStep(StepKind.DOWNGRADE, 2, 1, 0),
        )
        assert plan.n_mode_changes == 2
        assert plan.n_created == 1

    def test_modal_cost_matches_equation4(self):
        cm = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
        old = {1: 0, 2: 1, 9: 1}
        new = {1: 1, 2: 1, 4: 0}
        plan = plan_migration(old, new)
        assert plan.cost(cm) == pytest.approx(cm.of_modal_placement(new, old))

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(st.integers(0, 10), st.integers(0, 1), max_size=8),
        st.dictionaries(st.integers(0, 10), st.integers(0, 1), max_size=8),
    )
    def test_modal_cost_identity_any_configs(self, old, new):
        cm = ModalCostModel.uniform(2, create=0.2, delete=0.05, changed=0.01)
        assert plan_migration(old, new).cost(cm) == pytest.approx(
            cm.of_modal_placement(new, old)
        )

    def test_modal_cost_requires_modes(self):
        cm = ModalCostModel.uniform(2)
        plan = plan_migration({1}, {2})  # set-based, no modes
        with pytest.raises(ConfigurationError, match="modes"):
            plan.cost(cm)

    def test_step_str_readable(self):
        plan = plan_migration({1: 0}, {1: 1, 2: 0})
        text = str(plan)
        assert "create server on node 2" in text
        assert "upgrade server on node 1: mode 0 -> 1" in text
