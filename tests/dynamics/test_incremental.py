"""Incremental delta re-solve engine (PR 8).

The tentpole contract, each piece pinned here:

* **byte-identity** — after arbitrary delta sequences, the incremental
  frontier's ``(cost, power)`` pairs equal a cold solve of the evolved
  tree, for both kernels, and every witness placement survives the
  ``from_records(verify=True)`` re-pricing path;
* **delta semantics** — ``apply_deltas`` applies batches in order
  against the evolving state, computes the dirty-node seed set, and
  rejects invalid deltas before touching anything;
* **store reuse** — untouched subtrees are answered from the retained
  front store (hits grow, reuse counters surface in ``ApplyResult``),
  and ``close()`` releases every retained table;
* **satellites** — the bounded ``cached_subtree_codes`` memo and the
  explicit ``seed=`` plumbing of ``run_session``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.canonical import cached_subtree_codes, labelled_subtree_codes
from repro.core.costs import ModalCostModel
from repro.dynamics import (
    AddClient,
    DPUpdateStrategy,
    MigrateSubtree,
    RandomWalkRequests,
    RemoveClient,
    SessionState,
    SetRequests,
    apply_deltas,
    delta_from_dict,
    delta_to_dict,
    run_session,
)
from repro.exceptions import (
    ConfigurationError,
    TreeStructureError,
    WorkloadError,
)
from repro.power.frontstore import FrontStore
from repro.power.kernels import KERNELS
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree

from tests.conftest import small_trees

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
MAX_LOAD = max(PM.modes.capacities)


def _build_delta(tree: Tree, seed: tuple[int, int, int]):
    """Map a drawn integer seed to one delta that is valid for ``tree``.

    Keeps per-node direct client load within ``MAX_LOAD`` so the evolved
    instance stays solvable by construction.
    """
    kind_pick, a, b = seed
    kinds = ["add", "migrate"]
    if tree.clients:
        kinds += ["remove", "set"]
    kind = kinds[kind_pick % len(kinds)]
    loads = tree.client_loads
    if kind == "remove":
        return RemoveClient(a % len(tree.clients))
    if kind == "set":
        idx = a % len(tree.clients)
        cl = tree.clients[idx]
        cap = MAX_LOAD - int(loads[cl.node]) + cl.requests
        if cap < 1:
            return RemoveClient(idx)
        return SetRequests(idx, 1 + (b % min(6, cap)))
    if kind == "migrate" and tree.n_nodes > 1:
        for off in range(tree.n_nodes):
            v = 1 + (a + off) % (tree.n_nodes - 1)
            q = (b + off) % tree.n_nodes
            if q != tree.parents[v] and not tree.is_ancestor(v, q):
                return MigrateSubtree(v, q)
    candidates = [v for v in range(tree.n_nodes) if int(loads[v]) < MAX_LOAD]
    if not candidates:
        return RemoveClient(a % len(tree.clients))
    node = candidates[a % len(candidates)]
    return AddClient(node, 1 + (b % min(6, MAX_LOAD - int(loads[node]))))


@st.composite
def incremental_cases(draw, max_nodes: int = 8, max_deltas: int = 5):
    """(tree, pre_modes, delta seeds) triples for the identity suite."""
    tree = draw(small_trees(max_nodes=max_nodes, max_requests=4))
    pre = draw(
        st.dictionaries(
            st.integers(0, tree.n_nodes - 1), st.integers(0, 1), max_size=3
        )
    )
    seeds = draw(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 1_000_000),
                st.integers(0, 1_000_000),
            ),
            min_size=1,
            max_size=max_deltas,
        )
    )
    return tree, pre, seeds


class TestDeltaWire:
    def test_round_trip_all_kinds(self):
        for delta in (
            AddClient(3, 2),
            RemoveClient(1),
            SetRequests(0, 5),
            MigrateSubtree(4, 2),
        ):
            assert delta_from_dict(delta_to_dict(delta)) == delta

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown delta kind"):
            delta_from_dict({"kind": "teleport", "node": 1})

    def test_malformed_delta_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            delta_from_dict({"kind": "add_client", "node": 1})
        with pytest.raises(ConfigurationError, match="malformed"):
            delta_from_dict({"kind": "migrate", "node": "x", "new_parent": 0})


class TestApplyDeltas:
    def test_add_remove_set_semantics(self, chain_tree):
        new, dirty = apply_deltas(chain_tree, [AddClient(1, 5)])
        assert dirty == {1}
        assert new.clients[-1] == Client(1, 5)

        new, dirty = apply_deltas(chain_tree, [RemoveClient(0)])
        assert dirty == {0}
        assert len(new.clients) == len(chain_tree.clients) - 1

        new, dirty = apply_deltas(chain_tree, [SetRequests(2, 1)])
        assert dirty == {chain_tree.clients[2].node}
        assert new.clients[2].requests == 1

    def test_batch_applies_in_order(self, chain_tree):
        # The second index addresses the client tuple *after* the pop.
        new, dirty = apply_deltas(
            chain_tree, [RemoveClient(0), SetRequests(0, 6)]
        )
        assert new.clients[0].requests == 6
        assert dirty == {0, chain_tree.clients[1].node}

    def test_migrate_dirties_both_parents(self, star5_tree):
        new, dirty = apply_deltas(star5_tree, [MigrateSubtree(2, 1)])
        assert new.parents[2] == 1
        assert dirty == {0, 1}

    def test_migrate_root_rejected(self, chain_tree):
        with pytest.raises(TreeStructureError, match="root cannot"):
            apply_deltas(chain_tree, [MigrateSubtree(0, 1)])

    def test_migrate_under_own_descendant_rejected(self, chain_tree):
        with pytest.raises(TreeStructureError, match="own descendant"):
            apply_deltas(chain_tree, [MigrateSubtree(1, 2)])

    def test_bad_indices_rejected(self, chain_tree):
        with pytest.raises(WorkloadError, match="unknown internal node"):
            apply_deltas(chain_tree, [AddClient(99, 1)])
        with pytest.raises(WorkloadError, match="out of range"):
            apply_deltas(chain_tree, [RemoveClient(99)])
        with pytest.raises(WorkloadError, match="out of range"):
            apply_deltas(chain_tree, [SetRequests(99, 1)])

    def test_original_tree_untouched(self, chain_tree):
        before = (chain_tree.parents, chain_tree.clients)
        apply_deltas(chain_tree, [AddClient(0, 1), MigrateSubtree(2, 0)])
        assert (chain_tree.parents, chain_tree.clients) == before


class TestByteIdentity:
    """The acceptance criterion: incremental == cold, both kernels."""

    @given(case=incremental_cases())
    @settings(max_examples=40, deadline=None)
    def test_delta_resolve_matches_cold(self, case):
        tree, pre, seeds = case
        for kernel in ("tuple", "array"):
            state = SessionState(tree, PM, CM, pre, kernel=kernel)
            cold0 = KERNELS[kernel](tree, PM, CM, pre)
            assert state.frontier().pairs() == cold0.pairs()
            for seed in seeds:
                delta = _build_delta(state.tree, seed)
                result = state.apply([delta])
                cold = KERNELS[kernel](state.tree, PM, CM, pre)
                assert result.frontier.pairs() == cold.pairs()
            state.close()

    @given(case=incremental_cases(max_deltas=3))
    @settings(max_examples=15, deadline=None)
    def test_incremental_placements_reprice_exactly(self, case):
        tree, pre, seeds = case
        state = SessionState(tree, PM, CM, pre, kernel="array")
        for seed in seeds:
            delta = _build_delta(state.tree, seed)
            frontier = state.apply([delta]).frontier
            rebuilt = type(frontier).from_records(
                state.tree, frontier.to_records(), PM, CM, pre, verify=True
            )
            assert rebuilt.pairs() == frontier.pairs()
        state.close()

    @given(case=incremental_cases(max_deltas=4))
    @settings(max_examples=20, deadline=None)
    def test_batched_deltas_equal_single_steps(self, case):
        tree, pre, seeds = case
        batched = SessionState(tree, PM, CM, pre, kernel="array")
        stepped = SessionState(tree, PM, CM, pre, kernel="array")
        deltas = []
        preview = tree
        for seed in seeds:
            delta = _build_delta(preview, seed)
            preview, _ = apply_deltas(preview, [delta])
            deltas.append(delta)
        batched.apply(deltas)
        for delta in deltas:
            stepped.apply([delta])
        assert batched.frontier().pairs() == stepped.frontier().pairs()
        assert batched.tree.parents == stepped.tree.parents
        batched.close()
        stepped.close()


class TestSessionState:
    def test_localized_delta_reuses_untouched_fronts(self):
        tree = paper_tree(120, rng=7)
        state = SessionState(tree, PM, CM, kernel="array")
        state.frontier()
        result = state.apply([AddClient(tree.n_nodes - 1, 1)])
        # A one-node edit must answer most subtrees from the store.
        assert result.fronts_reused > 0
        assert result.fronts_reused >= result.fronts_invalidated
        assert state.stats.solves == 2
        state.close()

    def test_invalid_delta_leaves_session_untouched(self, chain_tree):
        state = SessionState(chain_tree, PM, CM, kernel="array")
        before = state.frontier().pairs()
        tree_before = state.tree
        with pytest.raises(WorkloadError):
            state.apply([AddClient(0, 1), RemoveClient(99)])
        assert state.tree is tree_before
        assert state.frontier().pairs() == before
        assert state.stats.deltas_applied == 0
        state.close()

    def test_close_releases_tables_and_disables_session(self, chain_tree):
        state = SessionState(chain_tree, PM, CM, kernel="tuple")
        state.frontier()
        store = state.store
        assert len(store) > 0
        state.close()
        assert len(store) == 0
        assert store.labels_retained == 0
        with pytest.raises(ConfigurationError, match="closed"):
            state.apply([AddClient(0, 1)])
        with pytest.raises(ConfigurationError, match="closed"):
            state.solve()
        state.close()  # idempotent

    def test_store_kernel_binding_enforced(self, chain_tree):
        store = FrontStore("tuple")
        with pytest.raises(ConfigurationError, match="bound to"):
            SessionState(chain_tree, PM, CM, kernel="array", store=store)

    def test_unknown_kernel_rejected(self, chain_tree):
        with pytest.raises(ConfigurationError):
            SessionState(chain_tree, PM, CM, kernel="quantum")


class TestCachedSubtreeCodes:
    """Satellite: bounded per-process relabelling memo."""

    def test_identity_hit_same_tree(self, chain_tree):
        first = cached_subtree_codes(chain_tree)
        second = cached_subtree_codes(chain_tree)
        assert first is second

    def test_distinct_pre_sets_are_distinct_entries(self, chain_tree):
        plain = cached_subtree_codes(chain_tree)
        marked = cached_subtree_codes(chain_tree, frozenset({1}))
        assert plain is not marked
        assert plain.codes != marked.codes

    def test_matches_uncached_relabelling(self, star5_tree):
        cached = cached_subtree_codes(star5_tree, {2: 1})
        fresh = labelled_subtree_codes(star5_tree, {2: 1})
        assert cached.codes == fresh.codes
        assert cached.table_keys == fresh.table_keys

    def test_equal_shape_different_identity_not_conflated(self):
        a = Tree([None, 0], [Client(1, 2)])
        b = Tree([None, 0], [Client(1, 2)])
        codes_a = cached_subtree_codes(a)
        codes_b = cached_subtree_codes(b)
        assert codes_a.codes == codes_b.codes  # same canonical content


class TestRunSessionSeed:
    """Satellite: explicit ``seed=`` plumbing for ``run_session``."""

    def test_seed_equals_rng_seed(self):
        tree = paper_tree(30, rng=5)
        evo = RandomWalkRequests()
        strategies = {"DP": DPUpdateStrategy()}
        by_seed = run_session(tree, 10, 4, evo, strategies, seed=99)
        by_rng = run_session(tree, 10, 4, evo, strategies, rng=99)
        assert by_seed.tracks == by_rng.tracks

    def test_seed_and_rng_mutually_exclusive(self):
        tree = paper_tree(10, rng=5)
        with pytest.raises(ConfigurationError, match="not both"):
            run_session(
                tree,
                10,
                2,
                RandomWalkRequests(),
                {"DP": DPUpdateStrategy()},
                rng=1,
                seed=2,
            )
