"""Tests for :mod:`repro.dynamics.evolution`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.evolution import HotspotShift, RandomWalkRequests, RedrawRequests
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree


@pytest.fixture()
def workload(rng):
    return paper_tree(30, client_prob=1.0, request_range=(1, 6), rng=rng)


class TestRedrawRequests:
    def test_structure_preserved(self, workload, rng):
        evolved = RedrawRequests((1, 6)).evolve(workload, rng)
        assert evolved.parents == workload.parents
        assert [c.node for c in evolved.clients] == [c.node for c in workload.clients]

    def test_range_respected(self, workload, rng):
        evolved = RedrawRequests((2, 3)).evolve(workload, rng)
        assert all(2 <= c.requests <= 3 for c in evolved.clients)

    def test_deterministic_with_seed(self, workload):
        a = RedrawRequests((1, 6)).evolve(workload, np.random.default_rng(1))
        b = RedrawRequests((1, 6)).evolve(workload, np.random.default_rng(1))
        assert a == b

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            RedrawRequests((0, 5))
        with pytest.raises(ConfigurationError):
            RedrawRequests((5, 2))


class TestRandomWalkRequests:
    def test_step_bound(self, workload, rng):
        evolved = RandomWalkRequests(step=1, minimum=1, maximum=6).evolve(workload, rng)
        for old, new in zip(workload.clients, evolved.clients, strict=True):
            assert abs(new.requests - old.requests) <= 1

    def test_clipping(self, workload, rng):
        evolved = RandomWalkRequests(step=10, minimum=2, maximum=4).evolve(workload, rng)
        assert all(2 <= c.requests <= 4 for c in evolved.clients)

    def test_zero_step_identity(self, workload, rng):
        evolved = RandomWalkRequests(step=0).evolve(workload, rng)
        assert evolved == workload

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWalkRequests(step=-1)
        with pytest.raises(ConfigurationError):
            RandomWalkRequests(minimum=5, maximum=2)
        with pytest.raises(ConfigurationError):
            RandomWalkRequests(minimum=0)


class TestHotspotShift:
    def test_requests_in_union_of_ranges(self, workload, rng):
        evolved = HotspotShift(hot_range=(5, 6), cold_range=(1, 2)).evolve(workload, rng)
        assert all(c.requests in (1, 2, 5, 6) for c in evolved.clients)

    def test_some_hotspot_exists(self, workload):
        # With a fixed seed a hotspot subtree gets the hot range.
        evolved = HotspotShift(hot_range=(6, 6), cold_range=(1, 1)).evolve(
            workload, np.random.default_rng(3)
        )
        values = {c.requests for c in evolved.clients}
        assert 1 in values  # cold clients exist on a 30-node tree

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotspotShift(hot_range=(0, 3))
        with pytest.raises(ConfigurationError):
            HotspotShift(cold_range=(4, 2))
