"""Tests for :mod:`repro.dynamics.session`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import UniformCostModel
from repro.dynamics.evolution import RedrawRequests
from repro.dynamics.session import (
    DPUpdateStrategy,
    GreedyStrategy,
    run_session,
)
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree

STRATS = {"DP": DPUpdateStrategy(), "GR": GreedyStrategy()}


@pytest.fixture()
def tree(rng):
    return paper_tree(40, rng=rng)


class TestRunSession:
    def test_tracks_and_lengths(self, tree):
        res = run_session(tree, 10, 5, RedrawRequests(), STRATS, rng=0)
        assert set(res.tracks) == {"DP", "GR"}
        assert len(res.tracks["DP"]) == 5
        assert len(res.workloads) == 5

    def test_first_step_no_reuse(self, tree):
        res = run_session(tree, 10, 3, RedrawRequests(), STRATS, rng=0)
        for name in STRATS:
            assert res.tracks[name][0].n_reused == 0

    def test_same_replica_counts_every_step(self, tree):
        # §5.1: both algorithms reach the same total number of servers.
        res = run_session(tree, 10, 6, RedrawRequests(), STRATS, rng=1)
        for rec_dp, rec_gr in zip(res.tracks["DP"], res.tracks["GR"], strict=True):
            assert rec_dp.n_replicas == rec_gr.n_replicas

    def test_dp_cumulative_reuse_dominates(self, tree):
        res = run_session(tree, 10, 8, RedrawRequests(), STRATS, rng=2)
        dp = res.cumulative_reuse("DP")
        gr = res.cumulative_reuse("GR")
        assert dp[-1] >= gr[-1]
        assert all(a <= b for a, b in zip(dp, dp[1:], strict=False))  # non-decreasing

    def test_preexisting_carries_over(self, tree):
        res = run_session(tree, 10, 4, RedrawRequests(), {"DP": DPUpdateStrategy()}, rng=3)
        recs = res.tracks["DP"]
        for prev, cur in zip(recs, recs[1:], strict=False):
            # reused servers at step t are exactly R_t ∩ R_{t-1}
            assert cur.n_reused == len(cur.replicas & prev.replicas)

    def test_initial_preexisting_respected(self, tree):
        from repro.core.greedy import greedy_placement

        start = greedy_placement(tree, 10).replicas
        res = run_session(
            tree, 10, 1, RedrawRequests(), {"DP": DPUpdateStrategy()},
            rng=4, initial_preexisting=start,
        )
        assert res.tracks["DP"][0].n_reused > 0

    def test_reuse_gaps(self, tree):
        res = run_session(tree, 10, 5, RedrawRequests(), STRATS, rng=5)
        gaps = res.reuse_gaps("DP", "GR")
        assert len(gaps) == 5
        assert gaps[0] == 0  # both start from scratch

    def test_costs_priced_with_shared_model(self, tree):
        cm = UniformCostModel(0.5, 0.25)
        res = run_session(
            tree, 10, 2, RedrawRequests(), STRATS, rng=6, cost_model=cm
        )
        for name in STRATS:
            rec = res.tracks[name][1]
            prev = res.tracks[name][0]
            assert rec.cost == pytest.approx(
                cm.total(rec.n_replicas, rec.n_reused, prev.n_replicas)
            )

    def test_validation(self, tree):
        with pytest.raises(ConfigurationError):
            run_session(tree, 10, 0, RedrawRequests(), STRATS)
        with pytest.raises(ConfigurationError):
            run_session(tree, 10, 3, RedrawRequests(), {})

    def test_reproducible(self, tree):
        a = run_session(tree, 10, 4, RedrawRequests(), STRATS, rng=9)
        b = run_session(tree, 10, 4, RedrawRequests(), STRATS, rng=9)
        assert a.workloads == b.workloads
        assert [r.replicas for r in a.tracks["DP"]] == [
            r.replicas for r in b.tracks["DP"]
        ]
