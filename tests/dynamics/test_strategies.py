"""Tests for :mod:`repro.dynamics.strategies` (update-timing policies)."""

from __future__ import annotations

import pytest

from repro.core.costs import UniformCostModel
from repro.dynamics.evolution import RandomWalkRequests, RedrawRequests
from repro.dynamics.session import DPUpdateStrategy
from repro.dynamics.strategies import (
    LazyPolicy,
    PeriodicPolicy,
    SystematicPolicy,
    compare_policies,
    generate_workloads,
    run_policy,
)
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree


@pytest.fixture()
def workloads(rng):
    tree = paper_tree(40, client_prob=0.8, rng=rng)
    return generate_workloads(tree, 10, RedrawRequests(), rng=rng)


class TestPolicies:
    def test_systematic_always_updates(self):
        p = SystematicPolicy()
        assert p.should_update(0, True) and p.should_update(3, False)

    def test_lazy_updates_only_when_invalid(self):
        p = LazyPolicy()
        assert not p.should_update(4, True)
        assert p.should_update(4, False)

    def test_periodic_schedule(self):
        p = PeriodicPolicy(period=3)
        assert p.should_update(0, True)
        assert not p.should_update(1, True)
        assert p.should_update(3, True)
        assert p.should_update(2, False)  # forced by invalidity

    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicPolicy(period=0)


class TestRunPolicy:
    def test_systematic_updates_every_step(self, workloads):
        run = run_policy(workloads, 10, SystematicPolicy(), DPUpdateStrategy())
        assert run.updates == len(workloads)
        assert len(run.records) == len(workloads)

    def test_lazy_updates_less_often(self, workloads):
        lazy = run_policy(workloads, 10, LazyPolicy(), DPUpdateStrategy())
        syst = run_policy(workloads, 10, SystematicPolicy(), DPUpdateStrategy())
        assert lazy.updates <= syst.updates
        assert lazy.updates >= 1  # step 0 always places

    def test_kept_steps_cost_operating_only(self, workloads):
        run = run_policy(
            workloads, 10, LazyPolicy(), DPUpdateStrategy(),
            cost_model=UniformCostModel(0.5, 0.5),
        )
        kept = [r for r in run.records if r.n_created == 0 and r.n_deleted == 0]
        for rec in kept:
            assert rec.cost == pytest.approx(rec.n_replicas)

    def test_every_step_has_valid_placement(self, workloads):
        from repro.core.solution import evaluate_placement

        run = run_policy(workloads, 10, LazyPolicy(), DPUpdateStrategy())
        for tree, rec in zip(workloads, run.records, strict=True):
            assert evaluate_placement(tree, rec.replicas, 10).ok

    def test_totals(self, workloads):
        run = run_policy(workloads, 10, SystematicPolicy(), DPUpdateStrategy())
        assert run.total_cost == pytest.approx(sum(r.cost for r in run.records))
        assert run.mean_servers > 0

    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            run_policy([], 10, LazyPolicy(), DPUpdateStrategy())


class TestComparePolicies:
    def test_three_policies_paired(self, workloads):
        runs = compare_policies(
            workloads, 10,
            [SystematicPolicy(), LazyPolicy(), PeriodicPolicy(period=4)],
            DPUpdateStrategy(),
        )
        assert set(runs) == {"systematic", "lazy", "periodic"}
        assert runs["lazy"].updates <= runs["periodic"].updates <= runs[
            "systematic"
        ].updates

    def test_systematic_never_uses_more_servers_on_average(self, rng):
        # Small-amplitude walk: lazy keeps stale placements, systematic
        # re-optimises; mean server count must not favour lazy.
        tree = paper_tree(40, client_prob=0.9, rng=rng)
        workloads = generate_workloads(
            tree, 12, RandomWalkRequests(step=2), rng=rng
        )
        runs = compare_policies(
            workloads, 10, [SystematicPolicy(), LazyPolicy()], DPUpdateStrategy()
        )
        assert (
            runs["systematic"].mean_servers <= runs["lazy"].mean_servers + 1e-9
        )


class TestGenerateWorkloads:
    def test_length_and_head(self, rng):
        tree = paper_tree(20, rng=rng)
        seq = generate_workloads(tree, 5, RedrawRequests(), rng=rng)
        assert len(seq) == 5 and seq[0] == tree

    def test_validation(self, rng):
        tree = paper_tree(10, rng=rng)
        with pytest.raises(ConfigurationError):
            generate_workloads(tree, 0, RedrawRequests(), rng=rng)
