"""Equivalence suite pinning the Pareto kernels (PR 5 / PR 7).

Two production kernels solve the same DP — the row-tuple oracle
(``power_frontier``) and the structure-of-arrays rebuild
(``power_frontier_array``) — and both must be *observationally
identical*: same (cost, power) frontier as the paper-faithful
count-vector DP on arbitrary instances, byte-identical across kernels
and with/without AHU subtree memoization, reconstructable placements
that survive the ``from_records(verify=True)`` re-pricing path (the
PR-4 cache contract), and bisect-based bound queries that agree with
the linear scans they replaced.  Witness placements may differ between
kernels at equal-optimum ties; every witness must still re-price
exactly.
"""

from __future__ import annotations

import contextlib
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ModalCostModel
from repro.exceptions import InfeasibleError
from repro.perf.stats import ParetoDPStats
from repro.power.dp_power_array import power_frontier_array
from repro.power.dp_power_counts import power_frontier_counts
from repro.power.dp_power_pareto import power_frontier
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree

from tests.conftest import small_trees

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
PM3 = PowerModel(ModeSet((3, 6, 12)), static_power=2.0, alpha=2.0)
CM3 = ModalCostModel.uniform(3, create=0.2, delete=0.05, changed=0.01)


def both_kernels(tree, pm, cm, pre):
    """Frontier across both kernels, memoization on and off.

    All four solves must agree byte-for-byte on the (cost, power)
    frontier; returns the memoized tuple-kernel frontier.
    """
    with_memo = power_frontier(tree, pm, cm, pre, memoize=True)
    without = power_frontier(tree, pm, cm, pre, memoize=False)
    assert with_memo.pairs() == without.pairs()
    arr_memo = power_frontier_array(tree, pm, cm, pre, memoize=True)
    arr_plain = power_frontier_array(tree, pm, cm, pre, memoize=False)
    assert arr_memo.pairs() == with_memo.pairs()
    assert arr_plain.pairs() == with_memo.pairs()
    return with_memo


def assert_roundtrip(frontier, tree, pm, cm, pre):
    """to_records -> from_records(verify=True) re-verifies every point."""
    rebuilt = type(frontier).from_records(
        tree, frontier.to_records(), pm, cm, pre, verify=True
    )
    assert rebuilt.pairs() == frontier.pairs()


class TestKernelEqualsCountsOracle:
    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=9, max_requests=6), st.data())
    def test_random_trees_with_pre_modes(self, tree, data):
        pre_nodes = data.draw(
            st.lists(
                st.integers(0, tree.n_nodes - 1), max_size=4, unique=True
            )
        )
        pre = {v: data.draw(st.integers(0, 1)) for v in pre_nodes}
        try:
            frontier = both_kernels(tree, PM, CM, pre)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                power_frontier_counts(tree, PM, CM, pre)
            return
        assert frontier.pairs() == power_frontier_counts(tree, PM, CM, pre)
        assert_roundtrip(frontier, tree, PM, CM, pre)

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=8, max_requests=6))
    def test_three_modes(self, tree):
        try:
            frontier = both_kernels(tree, PM3, CM3, {})
        except InfeasibleError:
            return
        assert frontier.pairs() == power_frontier_counts(tree, PM3, CM3)
        assert_roundtrip(frontier, tree, PM3, CM3, {})

    @settings(max_examples=25, deadline=None)
    @given(small_trees(max_nodes=8, max_requests=5))
    def test_negative_reuse_credit(self, tree):
        # delete > 1 + changed makes reuse prices negative, defeating the
        # identity fast path's non-negative-price condition — the branch
        # the count oracle must still agree with.
        dear = ModalCostModel.uniform(2, create=0.0, delete=5.0, changed=0.0)
        pre = {v: 0 for v in range(0, tree.n_nodes, 2)}
        frontier = both_kernels(tree, PM, dear, pre)
        assert frontier.pairs() == power_frontier_counts(tree, PM, dear, pre)
        assert_roundtrip(frontier, tree, PM, dear, pre)


class TestDegenerateInstances:
    def test_single_node(self):
        t = Tree([None], [Client(0, 4)])
        frontier = both_kernels(t, PM, CM, {})
        assert frontier.pairs() == power_frontier_counts(t, PM, CM)
        assert_roundtrip(frontier, t, PM, CM, {})

    def test_single_node_no_clients(self):
        t = Tree([None])
        frontier = both_kernels(t, PM, CM, {})
        assert frontier.pairs() == power_frontier_counts(t, PM, CM)

    def test_all_nodes_preexisting(self):
        t = Tree(
            [None, 0, 0, 1, 1],
            [Client(1, 3), Client(3, 2), Client(4, 5)],
        )
        pre = {v: v % 2 for v in range(t.n_nodes)}
        frontier = both_kernels(t, PM, CM, pre)
        assert frontier.pairs() == power_frontier_counts(t, PM, CM, pre)
        assert_roundtrip(frontier, t, PM, CM, pre)

    def test_load_exactly_w_max(self):
        # One client saturating the top mode: feasible, but only just —
        # every subtree flow sits at the w_max boundary the merge prunes
        # against.
        t = Tree([None, 0], [Client(1, 10)])
        frontier = both_kernels(t, PM, CM, {})
        assert frontier.pairs() == power_frontier_counts(t, PM, CM)

    def test_load_above_w_max_infeasible_same_error(self):
        t = Tree([None, 0], [Client(1, 11)])
        for kernel in (power_frontier, power_frontier_array):
            for memoize in (True, False):
                with pytest.raises(InfeasibleError):
                    kernel(t, PM, CM, memoize=memoize)

    def test_every_node_saturated(self):
        # Every node carries exactly w_max of direct load: feasible only
        # by placing a replica on every node.
        t = Tree([None, 0, 0], [Client(1, 10), Client(2, 10), Client(0, 10)])
        frontier = both_kernels(t, PM, CM, {})
        assert frontier.pairs() == power_frontier_counts(t, PM, CM)
        best = frontier.min_power()
        assert set(best.server_modes) == {0, 1, 2}

    def test_deep_chain(self):
        n = 60
        t = Tree(
            [None] + list(range(n - 1)),
            [Client(v, 1) for v in range(0, n, 7)],
        )
        frontier = both_kernels(t, PM, CM, {n - 1: 1})
        assert_roundtrip(frontier, t, PM, CM, {n - 1: 1})


class TestMemoization:
    def _star_of_stars(self):
        # Root with 4 identical 4-leaf stars: maximal repeated structure.
        parents: list[int | None] = [None]
        clients = []
        for _ in range(4):
            hub = len(parents)
            parents.append(0)
            for _ in range(4):
                leaf = len(parents)
                parents.append(hub)
                clients.append(Client(leaf, 2))
        return Tree(parents, clients)

    def test_identical_subtrees_share_tables(self):
        t = self._star_of_stars()
        stats = ParetoDPStats()
        frontier = power_frontier(t, PM, CM, stats=stats)
        assert stats.memo_hits >= 3  # hubs 2..4 answered from hub 1's table
        assert stats.memo_labels_shared > 0
        assert frontier.pairs() == power_frontier_counts(t, PM, CM)
        # Placements reconstructed through memo aliases must re-verify.
        assert_roundtrip(frontier, t, PM, CM, {})

    def test_memo_respects_pre_modes(self):
        # Same shape, but one hub's subtree contains a pre-existing server:
        # its table must NOT be shared with the plain hubs.
        t = self._star_of_stars()
        pre = {2: 1}  # a leaf of the first hub
        stats = ParetoDPStats()
        frontier = power_frontier(t, PM, CM, pre, stats=stats)
        plain = power_frontier(t, PM, CM, pre, memoize=False)
        assert frontier.pairs() == plain.pairs()
        assert frontier.pairs() == power_frontier_counts(t, PM, CM, pre)
        assert_roundtrip(frontier, t, PM, CM, pre)

    def test_load_split_across_clients_still_shares(self):
        # The memo keys on per-node load *sums*: one 4-request client and
        # two 2-request clients are the same subtree to the DP.  Hubs 1
        # and 2 root one-leaf subtrees whose leaf loads split differently.
        parents = [None, 0, 0, 1, 2]
        t1 = Tree(parents, [Client(3, 4), Client(4, 4)])
        t2 = Tree(parents, [Client(3, 4), Client(4, 2), Client(4, 2)])
        s2 = ParetoDPStats()
        f2 = power_frontier(t2, PM, CM, stats=s2)
        f1 = power_frontier(t1, PM, CM)
        assert f1.pairs() == f2.pairs()
        assert s2.memo_hits >= 1  # hub 2 shares hub 1's table

    def test_memo_only_retains_recurring_tables(self):
        # On a structure-free caterpillar no table key recurs; the memo
        # must not pin every node's fronts for the whole solve (the
        # tables should be freeable as the DFS unwinds).
        parents: list[int | None] = [None]
        clients = []
        for k in range(10):
            spine = len(parents)
            parents.append(spine - 1 if k else 0)
            leaf = len(parents)
            parents.append(spine)
            clients.append(Client(leaf, (k % 5) + 1))
        t = Tree(parents, clients)
        stats = ParetoDPStats()
        frontier = power_frontier(t, PM, CM, stats=stats)
        assert stats.memo_hits == 0
        assert frontier.pairs() == power_frontier(
            t, PM, CM, memoize=False
        ).pairs()

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=12, max_requests=3, client_prob=0.5))
    def test_memo_never_changes_the_frontier(self, tree):
        # Low request diversity makes collisions (hence memo hits) likely;
        # the frontier must not care.
        with contextlib.suppress(InfeasibleError):
            both_kernels(tree, PM, CM, {})


class TestZeroModePowerUnderflow:
    """The alias-soundness guard: ``p == 0.0`` does not imply "no
    placements" when every mode power underflows to exactly 0.0."""

    PM0 = PowerModel(
        ModeSet((5, 10)), static_power=0.0, alpha=2500.0, capacity_scale=100.0
    )

    def test_underflowed_powers_are_exactly_zero(self):
        assert [self.PM0.mode_power(m) for m in (0, 1)] == [0.0, 0.0]

    def test_frontier_matches_counts_oracle(self):
        t = Tree(
            [None, 0, 0, 1, 2],
            [Client(3, 6), Client(4, 6), Client(0, 6)],
        )
        frontier = both_kernels(t, self.PM0, CM, {})
        assert frontier.pairs() == power_frontier_counts(t, self.PM0, CM)
        # Every point must re-verify (a dropped placement cost would
        # fail the from_records re-pricing).
        assert_roundtrip(frontier, t, self.PM0, CM, {})

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=8, max_requests=6))
    def test_underflow_hypothesis(self, tree):
        try:
            frontier = both_kernels(tree, self.PM0, CM, {})
        except InfeasibleError:
            return
        assert frontier.pairs() == power_frontier_counts(tree, self.PM0, CM)


class TestBisectQueries:
    def _long_frontier(self):
        # A caterpillar with increasing loads yields many frontier points.
        parents: list[int | None] = [None]
        clients = []
        for k in range(12):
            spine = len(parents)
            parents.append(spine - 1 if k else 0)
            leaf = len(parents)
            parents.append(spine)
            clients.append(Client(leaf, (k % 5) + 1))
        return Tree(parents, clients)

    def test_queries_match_linear_reference(self):
        t = self._long_frontier()
        frontier = power_frontier(t, PM, CM)
        pairs = frontier.pairs()
        assert len(pairs) >= 4
        eps = 1e-9
        bounds = [pairs[0][0] - 1.0]
        for cost, _power in pairs:
            bounds += [cost - 1e-3, cost, cost + 1e-3]
        for bound in bounds:
            got = frontier.best_under_cost(bound)
            want = None
            for cost, power in pairs:
                if cost <= bound + eps:
                    want = (cost, power)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert (got.cost, got.power) == pytest.approx(want)
        power_bounds = [pairs[-1][1] - 1.0]
        for _cost, power in pairs:
            power_bounds += [power - 1e-3, power, power + 1e-3]
        for bound in power_bounds:
            got = frontier.best_under_power(bound)
            want = None
            for cost, power in pairs:
                if power <= bound + eps:
                    want = (cost, power)
                    break
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert (got.cost, got.power) == pytest.approx(want)

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=9, max_requests=6), st.floats(0.0, 40.0))
    def test_bound_queries_hypothesis(self, tree, bound):
        try:
            frontier = power_frontier(tree, PM, CM)
        except InfeasibleError:
            return
        pairs = frontier.pairs()
        got = frontier.best_under_cost(bound)
        want = [c for c, _ in pairs if c <= bound + 1e-9]
        if not want:
            assert got is None
        else:
            assert got is not None and got.cost == pytest.approx(want[-1])

    def test_shuffled_record_rejected(self):
        from repro.exceptions import SolverError
        from repro.power.dp_power_pareto import PowerFrontier

        t = self._long_frontier()
        frontier = power_frontier(t, PM, CM)
        records = frontier.to_records()
        assert len(records) >= 3
        records[0], records[-1] = records[-1], records[0]
        with pytest.raises(SolverError, match="cost-ascending"):
            PowerFrontier.from_records(t, records, PM, CM, {}, verify=True)


class TestStatsCoherence:
    def test_counter_relations(self):
        t = Tree(
            [None, 0, 0, 1, 1, 2, 2],
            [Client(v, (v % 4) + 1) for v in range(7)],
        )
        stats = ParetoDPStats()
        power_frontier(t, PM, CM, {3: 1}, stats=stats)
        assert stats.labels_created >= stats.labels_generated
        assert stats.merge_rejected >= 0
        assert stats.labels_generated >= stats.merge_rejected
        assert stats.memo_hits + stats.memo_misses >= 1
        assert 0.0 <= stats.prune_ratio <= 1.0
        assert 0.0 <= stats.generation_ratio <= 1.0

    def test_absorb_aggregates(self):
        t = Tree([None, 0], [Client(1, 3)])
        a = ParetoDPStats()
        power_frontier(t, PM, CM, stats=a)
        total = ParetoDPStats()
        total.absorb(a.as_dict()).absorb(a.as_dict())
        assert total.labels_created == 2 * a.labels_created
        assert total.merges == 2 * a.merges
        assert total.max_flow_keys == a.max_flow_keys

    def test_kernel_solve_labels(self):
        t = Tree([None, 0], [Client(1, 3)])
        st_t, st_a = ParetoDPStats(), ParetoDPStats()
        power_frontier(t, PM, CM, stats=st_t)
        power_frontier_array(t, PM, CM, stats=st_a)
        assert st_t.kernel_solves == {"tuple": 1}
        assert st_a.kernel_solves == {"array": 1}
        total = ParetoDPStats()
        total.absorb(st_t.as_dict()).absorb(st_a.as_dict()).absorb(
            st_a.as_dict()
        )
        assert total.kernel_solves == {"array": 2, "tuple": 1}
        assert total.as_dict()["kernel_solves"] == {"array": 2, "tuple": 1}

    def test_cross_kernel_mirror(self):
        # The array kernel is a *re-expression* of the tuple kernel, not
        # an approximation: the dominance-structure counters (merges,
        # created/kept labels, memo behaviour) must mirror exactly.
        # labels_generated / merge_rejected legitimately differ — the
        # array kernel's certain-reject prefilter changes how many
        # candidates are materialised, never which ones survive.
        t = Tree(
            [None, 0, 0, 1, 1, 2, 2],
            [Client(v, (v % 4) + 1) for v in range(7)],
        )
        st_t, st_a = ParetoDPStats(), ParetoDPStats()
        ft = power_frontier(t, PM, CM, {3: 1}, stats=st_t)
        fa = power_frontier_array(t, PM, CM, {3: 1}, stats=st_a)
        assert ft.pairs() == fa.pairs()
        for field in (
            "merges",
            "labels_created",
            "labels_kept",
            "memo_hits",
            "memo_misses",
            "memo_labels_shared",
        ):
            assert getattr(st_t, field) == getattr(st_a, field), field


class TestArrayKernelContract:
    """Array-kernel specifics: lazy placements, columnar wire format,
    and the ``kernel=`` selection knob."""

    def _instance(self):
        parents = [None, 0, 0, 1, 1, 2, 2, 3, 4]
        clients = [Client(v, (v % 5) + 1) for v in range(3, 9)]
        return Tree(parents, clients), {2: 1, 5: 0}

    def test_lazy_placements_reverify(self):
        # Array-kernel points decode placements on demand from the
        # provenance log; every decoded witness must re-price exactly
        # through the from_records(verify=True) path.
        t, pre = self._instance()
        frontier = power_frontier_array(t, PM, CM, pre)
        assert_roundtrip(frontier, t, PM, CM, pre)

    def test_placements_price_correctly(self):
        t, pre = self._instance()
        fa = power_frontier_array(t, PM, CM, pre)
        for pt in fa.points:
            modes = pt.placement()
            if pt._root_mode is not None:
                modes[t.root] = pt._root_mode
            assert pt.power == pytest.approx(
                sum(PM.mode_power(m) for m in modes.values()), abs=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=9, max_requests=6), st.data())
    def test_roundtrip_hypothesis(self, tree, data):
        pre_nodes = data.draw(
            st.lists(
                st.integers(0, tree.n_nodes - 1), max_size=4, unique=True
            )
        )
        pre = {v: data.draw(st.integers(0, 1)) for v in pre_nodes}
        try:
            frontier = power_frontier_array(tree, PM, CM, pre)
        except InfeasibleError:
            return
        assert_roundtrip(frontier, tree, PM, CM, pre)

    def test_columnar_roundtrip(self):
        from repro.power.serialize import (
            frontier_from_columnar,
            frontier_to_columnar,
        )

        t, pre = self._instance()
        frontier = power_frontier_array(t, PM, CM, pre)
        data = frontier_to_columnar(frontier)
        rebuilt = frontier_from_columnar(t, data, PM, CM, pre, verify=True)
        assert rebuilt.pairs() == frontier.pairs()
        for a, b in zip(rebuilt.points, frontier.points, strict=True):
            full = b.placement()
            if b._root_mode is not None:
                full[t.root] = b._root_mode
            assert a.placement() == full
        # Encoding is deterministic: same frontier, same bytes.
        assert frontier_to_columnar(rebuilt) == data

    def test_columnar_rejects_foreign_dtype(self):
        from repro.exceptions import ConfigurationError
        from repro.power.serialize import (
            frontier_from_columnar,
            frontier_to_columnar,
        )

        t, pre = self._instance()
        data = frontier_to_columnar(power_frontier_array(t, PM, CM, pre))
        assert data["dtype"] == "<f8"
        bad = dict(data, dtype=">f8")
        with pytest.raises(ConfigurationError, match="dtype"):
            frontier_from_columnar(t, bad, PM, CM, pre)
        unknown = dict(data, columnar_schema=99)
        with pytest.raises(ConfigurationError, match="schema"):
            frontier_from_columnar(t, unknown, PM, CM, pre)

    def test_resolve_kernel_precedence(self, monkeypatch):
        from repro.exceptions import ConfigurationError
        from repro.power.kernels import DEFAULT_KERNEL, resolve_kernel

        monkeypatch.delenv("REPRO_POWER_KERNEL", raising=False)
        assert resolve_kernel() == DEFAULT_KERNEL == "array"
        assert resolve_kernel("tuple") == "tuple"
        monkeypatch.setenv("REPRO_POWER_KERNEL", "tuple")
        assert resolve_kernel() == "tuple"
        assert resolve_kernel("array") == "array"  # argument wins
        with pytest.raises(ConfigurationError, match="unknown power kernel"):
            resolve_kernel("simd")
