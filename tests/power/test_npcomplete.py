"""Tests for :mod:`repro.power.npcomplete` (Theorem 2's reduction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError
from repro.power.dp_power_pareto import min_power
from repro.power.npcomplete import (
    build_reduction,
    partition_from_placement,
    solve_two_partition_via_minpower,
    two_partition_reference,
)


class TestReference:
    def test_satisfiable(self):
        subset = two_partition_reference([3, 5, 4, 6, 2, 4])
        assert subset is not None
        vals = [3, 5, 4, 6, 2, 4]
        assert sum(vals[i] for i in subset) == 12

    def test_unsatisfiable_odd_sum(self):
        assert two_partition_reference([1, 2]) is None

    def test_unsatisfiable_even_sum(self):
        assert two_partition_reference([2, 2, 2, 2, 4, 10]) is None

    def test_single_item(self):
        assert two_partition_reference([4]) is None

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(1, 30), min_size=1, max_size=12))
    def test_certificates_always_balanced(self, vals):
        subset = two_partition_reference(vals)
        if subset is not None:
            assert sum(vals[i] for i in subset) == sum(vals) // 2


class TestConstruction:
    def test_gadget_shape(self):
        red = build_reduction([3, 5, 4, 6, 2, 4])
        n = 6
        assert red.tree.n_nodes == 2 * n + 1
        assert red.tree.root == 0
        for i in range(n):
            assert red.tree.parent(red.a_nodes[i]) == 0
            assert red.tree.parent(red.b_nodes[i]) == red.a_nodes[i]
        # modes: W1, one per distinct item, plus W_{n+2}
        distinct = len(set([3, 5, 4, 6, 2, 4]))
        assert red.power_model.modes.n_modes == distinct + 2

    def test_scaled_loads(self):
        vals = [2, 4, 4, 6]
        red = build_reduction(vals)
        k = 4 * 16 * 16  # n·S²
        sigma = 2 * k
        assert red.scale == sigma
        assert red.tree.client_load(0) == sigma * k + sum(vals) // 2
        for i, a in enumerate(vals):
            assert red.tree.client_load(red.a_nodes[i]) == a
            assert red.tree.client_load(red.b_nodes[i]) == sigma * k

    def test_rejects_bad_instances(self):
        with pytest.raises(ConfigurationError):
            build_reduction([])
        with pytest.raises(ConfigurationError):
            build_reduction([0, 2])
        with pytest.raises(ConfigurationError, match="odd"):
            build_reduction([1, 2])
        # Paper erratum guard: an item >= S/2 breaks the gadget.
        with pytest.raises(ConfigurationError, match="max"):
            build_reduction([1, 1, 2, 4])


class TestTheorem2BothDirections:
    def test_yes_instance_lands_under_pmax(self):
        vals = [3, 5, 4, 6, 2, 4]
        red = build_reduction(vals)
        free = ModalCostModel.uniform(
            red.power_model.modes.n_modes, create=0.0, delete=0.0, changed=0.0
        )
        opt = min_power(red.tree, red.power_model, free)
        assert opt.power <= red.p_max + 1e-6
        subset = partition_from_placement(red, opt.server_modes)
        assert sum(vals[i] for i in subset) == sum(vals) // 2
        # Structure from the proof: exactly one server per branch + root.
        assert opt.n_replicas == len(vals) + 1
        assert 0 in opt.server_modes

    def test_no_instance_stays_above_pmax(self):
        vals = [2, 2, 2, 2, 4, 10]  # even sum 22, all even, target 11 odd
        red = build_reduction(vals)
        free = ModalCostModel.uniform(
            red.power_model.modes.n_modes, create=0.0, delete=0.0, changed=0.0
        )
        opt = min_power(red.tree, red.power_model, free)
        assert opt.power > red.p_max + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 10), min_size=2, max_size=5))
    def test_decision_matches_reference(self, vals):
        via_power = solve_two_partition_via_minpower(vals)
        ref = two_partition_reference(vals)
        assert (via_power is None) == (ref is None)
        if via_power is not None:
            assert sum(vals[i] for i in via_power) == sum(vals) // 2

    def test_degenerate_items_handled_directly(self):
        # max == S/2: trivially satisfiable by the singleton.
        assert solve_two_partition_via_minpower([1, 1, 2, 4]) == {3}
        # max > S/2: trivially unsatisfiable.
        assert solve_two_partition_via_minpower([1, 1, 8]) is None
        # odd sum: unsatisfiable.
        assert solve_two_partition_via_minpower([1, 2]) is None
