"""Tests for :mod:`repro.power.modes`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.power.modes import ModeSet, PowerModel


class TestModeSet:
    def test_basic_properties(self):
        ms = ModeSet((5, 10))
        assert ms.n_modes == 2
        assert ms.max_capacity == 10
        assert ms.capacity(0) == 5 and ms.capacity(1) == 10
        assert list(ms) == [5, 10]

    def test_mode_of_boundaries(self):
        ms = ModeSet((5, 10))
        assert ms.mode_of(0) == 0  # idle servers run the lowest mode
        assert ms.mode_of(1) == 0
        assert ms.mode_of(5) == 0  # W_{i-1} < req <= W_i, inclusive right
        assert ms.mode_of(6) == 1
        assert ms.mode_of(10) == 1

    def test_mode_of_three_modes(self):
        ms = ModeSet((3, 7, 12))
        assert [ms.mode_of(x) for x in (0, 3, 4, 7, 8, 12)] == [0, 0, 1, 1, 2, 2]

    def test_mode_of_errors(self):
        ms = ModeSet((5, 10))
        with pytest.raises(ConfigurationError):
            ms.mode_of(-1)
        with pytest.raises(ConfigurationError, match="exceeds"):
            ms.mode_of(11)

    def test_capacity_index_errors(self):
        ms = ModeSet((5,))
        with pytest.raises(ConfigurationError):
            ms.capacity(1)
        with pytest.raises(ConfigurationError):
            ms.capacity(-1)

    def test_construction_errors(self):
        with pytest.raises(ConfigurationError):
            ModeSet(())
        with pytest.raises(ConfigurationError, match="increasing"):
            ModeSet((5, 5))
        with pytest.raises(ConfigurationError, match="increasing"):
            ModeSet((10, 5))
        with pytest.raises(ConfigurationError):
            ModeSet((0, 5))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(1, 100), min_size=1, max_size=5, unique=True))
    def test_mode_of_is_smallest_covering(self, caps):
        ms = ModeSet(tuple(sorted(caps)))
        for load in range(0, ms.max_capacity + 1):
            m = ms.mode_of(load)
            assert ms.capacity(m) >= load
            if m > 0:
                assert ms.capacity(m - 1) < load


class TestPowerModel:
    def test_equation3(self):
        pm = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
        assert pm.mode_power(0) == pytest.approx(12.5 + 125.0)
        assert pm.mode_power(1) == pytest.approx(12.5 + 1000.0)

    def test_paper_experiment3_constants(self):
        pm = PowerModel.paper_experiment3()
        # §5.2: P_i = W₁³/10 + W_i³ with W₁=5, W₂=10.
        assert pm.mode_power(0) == pytest.approx(137.5)
        assert pm.mode_power(1) == pytest.approx(1012.5)

    def test_load_power_uses_load_determined_mode(self):
        pm = PowerModel.paper_experiment3()
        assert pm.load_power(3) == pm.mode_power(0)
        assert pm.load_power(8) == pm.mode_power(1)

    def test_placement_power_mapping_and_iterable(self):
        pm = PowerModel.paper_experiment3()
        assert pm.placement_power({1: 0, 2: 1}) == pytest.approx(137.5 + 1012.5)
        assert pm.placement_power([0, 0]) == pytest.approx(275.0)

    def test_capacity_scale(self):
        pm = PowerModel(ModeSet((10, 20)), static_power=0.0, alpha=2.0, capacity_scale=10.0)
        assert pm.mode_power(0) == pytest.approx(1.0)
        assert pm.mode_power(1) == pytest.approx(4.0)

    def test_power_strictly_increasing_in_mode(self):
        pm = PowerModel(ModeSet((2, 5, 9)), static_power=1.0, alpha=2.5)
        powers = [pm.mode_power(m) for m in range(3)]
        assert powers == sorted(powers) and len(set(powers)) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModel(ModeSet((5,)), static_power=-1.0)
        with pytest.raises(ConfigurationError):
            PowerModel(ModeSet((5,)), alpha=0.0)
        with pytest.raises(ConfigurationError):
            PowerModel(ModeSet((5,)), capacity_scale=0.0)
