"""Tests for :mod:`repro.power.dp_power_pareto` (the production engine)."""

from __future__ import annotations

import pytest

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.power.dp_power_pareto import (
    min_power,
    min_power_bounded_cost,
    power_frontier,
)
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


class TestFrontierShape:
    def test_frontier_monotone(self, chain_tree):
        pairs = power_frontier(chain_tree, PM, CM).pairs()
        costs = [c for c, _ in pairs]
        powers = [p for _, p in pairs]
        assert costs == sorted(costs)
        assert powers == sorted(powers, reverse=True)
        assert len(set(costs)) == len(costs)

    def test_single_node(self):
        t = Tree([None], [Client(0, 4)])
        frontier = power_frontier(t, PM, CM)
        assert frontier.pairs() == [(pytest.approx(1.1), pytest.approx(137.5))]

    def test_no_clients_empty_solution(self):
        t = Tree([None, 0])
        frontier = power_frontier(t, PM, CM, {1: 1})
        # Cheapest: delete the unused pre-existing server.
        assert frontier.min_cost() == pytest.approx(0.01)
        best = frontier.best_under_cost(10)
        assert best is not None and best.server_modes == {}

    def test_min_power_balances_modes(self):
        # 8 requests total: one W2 server costs 1012.5, two W1 servers only
        # 275 — the optimum load-balances across slow modes (§4.1's moral).
        t = Tree([None, 0, 0], [Client(1, 4), Client(2, 4)])
        res = min_power(t, PM, CM)
        assert res.power == pytest.approx(2 * 137.5)
        assert set(res.server_modes.values()) == {0}

    def test_reconstruction_matches_frontier_points(self, chain_tree):
        frontier = power_frontier(chain_tree, PM, CM, {0: 1})
        for cost, power in frontier.pairs():
            sol = frontier.best_under_cost(cost)
            assert sol is not None
            assert sol.cost == pytest.approx(cost)
            assert sol.power == pytest.approx(power)


class TestBoundQueries:
    def test_best_under_cost_none_below_min(self, chain_tree):
        frontier = power_frontier(chain_tree, PM, CM)
        assert frontier.best_under_cost(frontier.min_cost() - 0.5) is None

    def test_best_under_cost_at_exact_cost(self, chain_tree):
        frontier = power_frontier(chain_tree, PM, CM)
        best = frontier.best_under_cost(frontier.min_cost())
        assert best is not None

    def test_min_power_bounded_cost_raises(self, chain_tree):
        with pytest.raises(InfeasibleError, match="cheapest"):
            min_power_bounded_cost(chain_tree, PM, CM, 0.1)

    def test_min_power_bounded_cost_solves(self, chain_tree):
        res = min_power_bounded_cost(chain_tree, PM, CM, 100.0)
        assert res.power == power_frontier(chain_tree, PM, CM).pairs()[-1][1]

    def test_best_under_power_dual_query(self, chain_tree):
        frontier = power_frontier(chain_tree, PM, CM)
        pairs = frontier.pairs()
        # Loose power cap -> cheapest point; tight cap -> dearest point.
        loose = frontier.best_under_power(pairs[0][1])
        assert loose is not None and loose.cost == pytest.approx(pairs[0][0])
        tight = frontier.best_under_power(pairs[-1][1])
        assert tight is not None and tight.cost == pytest.approx(pairs[-1][0])
        assert frontier.best_under_power(pairs[-1][1] - 1.0) is None

    def test_dual_query_consistent_with_exhaustive(self):
        from repro.core.exhaustive import iter_valid_placements
        from repro.power.result import modal_from_replicas

        t = Tree([None, 0, 0], [Client(1, 4), Client(2, 7), Client(0, 2)])
        frontier = power_frontier(t, PM, CM)
        for _, power_cap in frontier.pairs():
            got = frontier.best_under_power(power_cap)
            assert got is not None
            best_cost = min(
                modal_from_replicas(t, r, PM, CM).cost
                for r, _ in iter_valid_placements(t, 10)
                if modal_from_replicas(t, r, PM, CM).power <= power_cap + 1e-9
            )
            assert got.cost == pytest.approx(best_cost)


class TestPreexistingHandling:
    def test_reuse_lowers_cost(self, chain_tree):
        without = power_frontier(chain_tree, PM, CM).min_cost()
        with_pre = power_frontier(chain_tree, PM, CM, {0: 1}).min_cost()
        assert with_pre < without

    def test_idle_preexisting_kept_when_deletion_expensive(self):
        t = Tree([None, 0], [Client(1, 4)])
        dear = ModalCostModel.uniform(2, create=0.0, delete=5.0, changed=0.0)
        frontier = power_frontier(t, PM, dear, {0: 0, 1: 0})
        best = frontier.best_under_cost(3.0)
        assert best is not None
        # Keeping both (cost 2) beats one server + one deletion (cost 6).
        assert best.replicas == {0, 1}

    def test_mode_change_priced(self):
        t = Tree([None], [Client(0, 9)])  # forces mode 1
        cm = ModalCostModel(
            create=(0.1, 0.1),
            delete=(0.0, 0.0),
            changed=((0.0, 7.0), (0.0, 0.0)),
        )
        frontier = power_frontier(t, PM, cm, {0: 0})
        # Upgrading the pre-existing mode-0 server to mode 1 costs 1 + 7.
        assert frontier.min_cost() == pytest.approx(8.0)

    def test_invalid_preexisting_rejected(self, chain_tree):
        with pytest.raises(ConfigurationError):
            power_frontier(chain_tree, PM, CM, {99: 0})
        with pytest.raises(ConfigurationError):
            power_frontier(chain_tree, PM, CM, {0: 9})


class TestErrors:
    def test_infeasible_load(self):
        t = Tree([None], [Client(0, 11)])
        with pytest.raises(InfeasibleError):
            power_frontier(t, PM, CM)

    def test_mode_count_mismatch(self, chain_tree):
        with pytest.raises(ConfigurationError, match="modes"):
            power_frontier(chain_tree, PM, ModalCostModel.uniform(3))


class TestThreeModes:
    def test_three_mode_instance(self):
        pm3 = PowerModel(ModeSet((3, 6, 12)), static_power=5.0, alpha=2.0)
        cm3 = ModalCostModel.uniform(3, create=0.1, delete=0.01, changed=0.001)
        t = Tree(
            [None, 0, 0, 1],
            [Client(1, 3), Client(2, 6), Client(3, 3), Client(0, 2)],
        )
        frontier = power_frontier(t, pm3, cm3, {1: 2})
        pairs = frontier.pairs()
        assert pairs  # non-empty and monotone
        best = frontier.min_power()
        assert all(0 <= m <= 2 for m in best.server_modes.values())
