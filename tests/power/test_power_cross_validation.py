"""Cross-validation of the power solvers.

The Pareto-label engine, the paper-faithful count-vector DP and the
exhaustive oracle must produce identical (cost, power) frontiers; GR must
never beat the frontier.  This is the machine-checked proof of the Pareto
solver's dominance argument (DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ModalCostModel
from repro.exceptions import InfeasibleError
from repro.power.dp_power_counts import power_frontier_counts
from repro.power.dp_power_pareto import power_frontier
from repro.power.exhaustive_power import exhaustive_min_power, exhaustive_power_frontier
from repro.power.greedy_power import greedy_power_candidates
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting_modes

from tests.conftest import small_trees

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


def _preexisting(draw_ints, tree):
    return {v: m for v, m in draw_ints if v < tree.n_nodes}


def assert_frontiers_equal(a, b):
    assert len(a) == len(b), (a, b)
    for (c1, p1), (c2, p2) in zip(a, b, strict=True):
        assert c1 == pytest.approx(c2, abs=1e-6)
        assert p1 == pytest.approx(p2, abs=1e-6)


class TestFrontierAgreement:
    @settings(max_examples=60, deadline=None)
    @given(small_trees(max_nodes=8, max_requests=5), st.data())
    def test_pareto_equals_counts_equals_exhaustive(self, tree, data):
        pre_nodes = data.draw(
            st.lists(st.integers(0, tree.n_nodes - 1), max_size=3, unique=True)
        )
        pre = {v: data.draw(st.integers(0, 1)) for v in pre_nodes}
        try:
            par = power_frontier(tree, PM, CM, pre).pairs()
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                exhaustive_power_frontier(tree, PM, CM, pre)
            return
        cnt = power_frontier_counts(tree, PM, CM, pre)
        exh = exhaustive_power_frontier(tree, PM, CM, pre)
        assert_frontiers_equal(par, cnt)
        assert_frontiers_equal(par, exh)

    @settings(max_examples=30, deadline=None)
    @given(small_trees(max_nodes=7, max_requests=5))
    def test_three_mode_agreement(self, tree):
        pm = PowerModel(ModeSet((3, 6, 10)), static_power=2.0, alpha=2.0)
        cm = ModalCostModel.uniform(3, create=0.2, delete=0.05, changed=0.01)
        try:
            par = power_frontier(tree, pm, cm).pairs()
        except InfeasibleError:
            return
        assert_frontiers_equal(par, power_frontier_counts(tree, pm, cm))
        assert_frontiers_equal(par, exhaustive_power_frontier(tree, pm, cm))

    @settings(max_examples=40, deadline=None)
    @given(small_trees(max_nodes=8, max_requests=5), st.floats(1.0, 30.0))
    def test_bounded_query_matches_exhaustive(self, tree, bound):
        try:
            expected = exhaustive_min_power(tree, PM, CM, cost_bound=bound)
        except InfeasibleError:
            frontier = power_frontier(tree, PM, CM)
            assert frontier.best_under_cost(bound) is None
            return
        got = power_frontier(tree, PM, CM).best_under_cost(bound)
        assert got is not None
        assert got.power == pytest.approx(expected.power)
        assert got.cost <= bound + 1e-9


class TestGreedyNeverBeatsOptimal:
    @settings(max_examples=50, deadline=None)
    @given(small_trees(max_nodes=9, max_requests=5))
    def test_gr_dominated_by_frontier(self, tree):
        try:
            frontier = power_frontier(tree, PM, CM).pairs()
        except InfeasibleError:
            return
        for cost, power in greedy_power_candidates(tree, PM, CM).pairs():
            assert any(
                fc <= cost + 1e-6 and fp <= power + 1e-6 for fc, fp in frontier
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_paper_scale_dp_at_least_as_good(self, seed):
        rng = np.random.default_rng(seed)
        tree = paper_tree(50, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, 5, 2, rng=rng, mode=1)
        frontier = power_frontier(tree, PM, CM, pre)
        gr = greedy_power_candidates(tree, PM, CM, pre)
        for bound in range(10, 50, 5):
            dp_best = frontier.best_under_cost(bound)
            gr_best = gr.best_under_cost(bound)
            if gr_best is not None:
                assert dp_best is not None
                assert dp_best.power <= gr_best.power + 1e-6
