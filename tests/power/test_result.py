"""Tests for :mod:`repro.power.result`."""

from __future__ import annotations

import pytest

from repro.core.costs import ModalCostModel
from repro.exceptions import InfeasibleError
from repro.power.modes import ModeSet, PowerModel
from repro.power.result import modal_from_replicas
from repro.tree.model import Client, Tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


class TestModalFromReplicas:
    def test_modes_are_load_determined(self, chain_tree):
        # replicas {0, 2}: node 2 serves 4 (mode 0), node 0 serves 5 (mode 0)
        res = modal_from_replicas(chain_tree, [0, 2], PM, CM)
        assert res.server_modes == {0: 0, 2: 0}
        assert res.loads == {0: 5, 2: 4}

    def test_high_mode_when_needed(self, chain_tree):
        res = modal_from_replicas(chain_tree, [0], PM, CM)
        assert res.server_modes == {0: 1}  # 9 requests -> mode W2

    def test_power_and_cost(self, chain_tree):
        res = modal_from_replicas(chain_tree, [0], PM, CM, {0: 0})
        assert res.power == pytest.approx(PM.mode_power(1))
        # reused with upgrade 0 -> 1: 1 + changed
        assert res.cost == pytest.approx(1 + 0.001)

    def test_bookkeeping_sets(self, chain_tree):
        res = modal_from_replicas(chain_tree, [0, 2], PM, CM, {2: 1, 1: 0})
        assert res.reused == {2}
        assert res.created == {0}
        assert res.deleted == {1}
        assert res.n_replicas == 2
        assert res.replicas == {0, 2}

    def test_unserved_raises(self, chain_tree):
        with pytest.raises(InfeasibleError, match="unserved"):
            modal_from_replicas(chain_tree, [2], PM, CM)

    def test_overload_raises(self):
        t = Tree([None], [Client(0, 11)])
        with pytest.raises(InfeasibleError, match="exceed"):
            modal_from_replicas(t, [0], PM, CM)

    def test_extra_payload_preserved(self, chain_tree):
        res = modal_from_replicas(chain_tree, [0], PM, CM, extra={"tag": 7})
        assert res.extra["tag"] == 7
