"""Tests for :mod:`repro.power.heuristics` (§6 future-work heuristics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import ModalCostModel
from repro.power.dp_power_pareto import power_frontier
from repro.power.greedy_power import greedy_power_candidates
from repro.power.heuristics import local_search_power, reuse_aware_greedy_power
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting_modes
from repro.tree.model import Client, Tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


class TestReuseAwareGreedy:
    def test_reuse_never_worse_on_cost(self):
        rng = np.random.default_rng(5)
        tree = paper_tree(50, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, 8, 2, rng=rng, mode=1)
        plain = greedy_power_candidates(tree, PM, CM, pre)
        aware = reuse_aware_greedy_power(tree, PM, CM, pre)
        assert min(c.cost for c in aware.candidates) <= min(
            c.cost for c in plain.candidates
        ) + 1e-9


class TestLocalSearch:
    def test_improves_or_matches_greedy(self):
        rng = np.random.default_rng(9)
        tree = paper_tree(30, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, 4, 2, rng=rng, mode=1)
        bound = 40.0
        seed = greedy_power_candidates(tree, PM, CM, pre).best_under_cost(bound)
        assert seed is not None
        improved = local_search_power(tree, PM, CM, bound, pre)
        assert improved is not None
        assert improved.power <= seed.power + 1e-9
        assert improved.cost <= bound + 1e-9

    def test_never_beats_optimal(self):
        rng = np.random.default_rng(11)
        tree = paper_tree(20, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, 3, 2, rng=rng, mode=1)
        bound = 30.0
        optimal = power_frontier(tree, PM, CM, pre).best_under_cost(bound)
        heur = local_search_power(tree, PM, CM, bound, pre)
        assert optimal is not None and heur is not None
        assert heur.power >= optimal.power - 1e-9

    def test_returns_none_without_feasible_start(self, chain_tree):
        assert local_search_power(chain_tree, PM, CM, 0.1) is None

    def test_respects_explicit_initial(self, chain_tree):
        start = greedy_power_candidates(chain_tree, PM, CM).min_power()
        assert start is not None
        res = local_search_power(
            chain_tree, PM, CM, 100.0, initial=start, max_rounds=1
        )
        assert res is not None
        assert res.power <= start.power + 1e-9

    def test_reaches_known_optimum_on_toy(self):
        # Two W1 servers beat one W2 server; a 1-step slide/add finds it.
        t = Tree([None, 0, 0], [Client(1, 4), Client(2, 4)])
        res = local_search_power(t, PM, CM, 100.0)
        assert res is not None
        assert res.power == pytest.approx(2 * 137.5)

    def test_round_metadata(self, chain_tree):
        res = local_search_power(chain_tree, PM, CM, 100.0)
        assert res is not None
        assert res.extra["rounds"] >= 1
        assert res.extra["evaluations"] > 0
