"""Tests for :mod:`repro.power.greedy_power` (the GR §5.2 baseline)."""

from __future__ import annotations

import pytest

from repro.core.costs import ModalCostModel
from repro.power.greedy_power import greedy_power_candidates
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


class TestSweep:
    def test_candidates_generated_and_deduped(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, PM, CM)
        assert len(cands.candidates) >= 1
        placements = [c.replicas for c in cands.candidates]
        assert len(placements) == len(set(placements))

    def test_sweep_capacity_recorded(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, PM, CM)
        assert all("sweep_capacity" in c.extra for c in cands.candidates)

    def test_small_capacities_skipped_when_infeasible(self):
        # Node with direct load 7: capacities 5 and 6 are infeasible for GR
        # but the sweep must survive and return the feasible candidates.
        t = Tree([None, 0], [Client(1, 7)])
        cands = greedy_power_candidates(t, PM, CM)
        assert len(cands.candidates) >= 1

    def test_modes_are_load_determined(self):
        # "when a server has 5 requests or less, we operate it under W1".
        t = Tree([None, 0, 0], [Client(1, 4), Client(2, 9)])
        cands = greedy_power_candidates(t, PM, CM)
        for cand in cands.candidates:
            for node, mode in cand.server_modes.items():
                assert mode == PM.modes.mode_of(cand.loads[node])

    def test_explicit_capacities(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, PM, CM, capacities=[10])
        assert len(cands.candidates) == 1

    def test_out_of_range_capacities_ignored(self, chain_tree):
        cands = greedy_power_candidates(
            chain_tree, PM, CM, capacities=[0, 10, 99]
        )
        assert len(cands.candidates) == 1


class TestBestUnderCost:
    def test_bound_filters(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, PM, CM)
        cheapest = min(c.cost for c in cands.candidates)
        assert cands.best_under_cost(cheapest - 0.5) is None
        best = cands.best_under_cost(cheapest)
        assert best is not None and best.cost <= cheapest + 1e-9

    def test_min_power_over_all(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, PM, CM)
        mp = cands.min_power()
        assert mp is not None
        assert all(mp.power <= c.power + 1e-9 for c in cands.candidates)

    def test_pairs_expose_sweep(self, chain_tree):
        cands = greedy_power_candidates(chain_tree, PM, CM)
        assert len(cands.pairs()) == len(cands.candidates)


class TestCapacitySweepEffect:
    def test_lower_capacity_spreads_load(self):
        # Chain with 10 requests: W'=10 gives one mode-1 server; W'=5 forces
        # two mode-0 servers with lower total power.
        t = Tree([None, 0], [Client(1, 5), Client(0, 5)])
        cands = greedy_power_candidates(t, PM, CM)
        powers = sorted(c.power for c in cands.candidates)
        assert powers[0] == pytest.approx(2 * 137.5)
        assert powers[-1] == pytest.approx(1012.5)
