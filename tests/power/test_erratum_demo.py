"""Computational demonstration of the Theorem-2 erratum (DESIGN.md).

`build_reduction` refuses instances with ``max(a) >= S/2``; this test
builds the gadget for one anyway — bypassing the guard — and shows the
paper's argument genuinely breaks there: the power-optimal placement fits
under ``P_max`` while inducing an *unbalanced* partition.  That is exactly
why the guard (and the implicit restriction in the paper's proof) is
needed, and why NP-completeness survives: the excluded family is trivially
decidable.
"""

from __future__ import annotations

import pytest

from repro.core.costs import ModalCostModel
from repro.power.dp_power_pareto import min_power
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree

VALUES = (1, 1, 2, 4)  # S = 8, S/2 = 4 = max(a): the degenerate family


def _build_unguarded():
    """Replicate build_reduction's construction for the excluded instance."""
    vals = VALUES
    n = len(vals)
    s = sum(vals)
    k = n * s * s
    sigma = 2 * k  # alpha = 2 scaling
    caps = {sigma * k}
    for a in vals:
        caps.add(sigma * k + a)
    caps.add(sigma * k + s)
    modes = ModeSet(tuple(sorted(caps)))
    power_model = PowerModel(
        modes=modes, static_power=0.0, alpha=2.0, capacity_scale=float(sigma)
    )
    parents: list[int | None] = [None]
    a_nodes, b_nodes = [], []
    for _ in range(n):
        a_nodes.append(len(parents))
        parents.append(0)
    for i in range(n):
        b_nodes.append(len(parents))
        parents.append(a_nodes[i])
    clients = [Client(0, sigma * k + s // 2)]
    for i, a in enumerate(vals):
        clients.append(Client(a_nodes[i], a))
        clients.append(Client(b_nodes[i], sigma * k))
    tree = Tree(parents, clients)
    kf = float(k)
    xf = 1.0 / sigma
    p_max = (kf + s * xf) ** 2 + n * kf**2 + s / 2 + (n - 1) / n
    return tree, power_model, p_max, a_nodes


class TestErratumCounterexample:
    def test_unbalanced_placement_slips_under_pmax(self):
        tree, power_model, p_max, a_nodes = _build_unguarded()
        free = ModalCostModel.uniform(
            power_model.modes.n_modes, create=0.0, delete=0.0, changed=0.0
        )
        opt = min_power(tree, power_model, free)
        # The optimum fits under the paper's P_max …
        assert opt.power <= p_max + 1e-6
        # … but the induced subset I = {i : replica on A_i} is NOT
        # balanced: the root runs at the cheap mode W_{1+j} (a_j = S/2
        # covers its own client), so *all* branches put replicas on A_i.
        subset = {i for i, a in enumerate(a_nodes) if a in opt.server_modes}
        assert sum(VALUES[i] for i in subset) != sum(VALUES) // 2

    def test_analytic_margin_matches(self):
        # DESIGN.md's numbers: I = {all} costs 5K² + 12 + epsilon against
        # P_max = 5K² + 12.75 + epsilon'.
        tree, power_model, p_max, _ = _build_unguarded()
        free = ModalCostModel.uniform(
            power_model.modes.n_modes, create=0.0, delete=0.0, changed=0.0
        )
        opt = min_power(tree, power_model, free)
        k = float(len(VALUES) * sum(VALUES) ** 2)
        slack = p_max - opt.power
        assert slack == pytest.approx(0.75, abs=0.01)
        assert opt.power == pytest.approx(5 * k * k + 12, rel=1e-9)
