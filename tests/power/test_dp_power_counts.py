"""Tests for :mod:`repro.power.dp_power_counts` (paper-faithful reference)."""

from __future__ import annotations

import pytest

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.power.dp_power_counts import power_frontier_counts
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree
from repro.tree.model import Client, Tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)


class TestBasics:
    def test_single_node_frontier(self):
        t = Tree([None], [Client(0, 7)])
        pairs = power_frontier_counts(t, PM, CM)
        assert pairs == [(pytest.approx(1.1), pytest.approx(1012.5))]

    def test_frontier_monotone(self, chain_tree):
        pairs = power_frontier_counts(chain_tree, PM, CM, {1: 1})
        costs = [c for c, _ in pairs]
        powers = [p for _, p in pairs]
        assert costs == sorted(costs)
        assert powers == sorted(powers, reverse=True)

    def test_preexisting_deletions_priced(self):
        t = Tree([None])
        pairs = power_frontier_counts(t, PM, CM, {0: 1})
        # no clients: best is to delete the pre-existing server
        assert pairs[0][0] == pytest.approx(0.01)
        assert pairs[0][1] == pytest.approx(0.0)


class TestGuards:
    def test_size_guard(self):
        big = paper_tree(70, rng=0)
        with pytest.raises(ConfigurationError, match="capped"):
            power_frontier_counts(big, PM, CM)

    def test_mode_mismatch(self, chain_tree):
        with pytest.raises(ConfigurationError):
            power_frontier_counts(chain_tree, PM, ModalCostModel.uniform(3))

    def test_bad_preexisting(self, chain_tree):
        with pytest.raises(ConfigurationError):
            power_frontier_counts(chain_tree, PM, CM, {99: 0})
        with pytest.raises(ConfigurationError):
            power_frontier_counts(chain_tree, PM, CM, {0: 7})

    def test_infeasible(self):
        t = Tree([None], [Client(0, 11)])
        with pytest.raises(InfeasibleError):
            power_frontier_counts(t, PM, CM)
