"""Tests for Experiment 2 (Figure 5/7 runner)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.exp2_dynamic import Exp2Config, run_experiment2

SMALL = Exp2Config(n_trees=3, n_nodes=30, n_steps=6, seed=11)


@pytest.fixture(scope="module")
def result():
    return run_experiment2(SMALL)


class TestConfig:
    def test_defaults_are_paper_scale(self):
        c = Exp2Config()
        assert (c.n_trees, c.n_steps) == (200, 20)

    def test_high_trees(self):
        assert Exp2Config().high_trees().children_range == (2, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Exp2Config(n_trees=0)
        with pytest.raises(ConfigurationError):
            Exp2Config(n_steps=0)


class TestResultShape:
    def test_lengths(self, result):
        assert len(result.steps) == SMALL.n_steps
        assert len(result.dp_cumulative) == SMALL.n_steps

    def test_cumulative_nondecreasing(self, result):
        dp = [s.mean for s in result.dp_cumulative]
        gr = [s.mean for s in result.gr_cumulative]
        assert dp == sorted(dp)
        assert gr == sorted(gr)

    def test_dp_dominates_gr_cumulative(self, result):
        # Figure 5/7 left: DP makes better reuse of pre-existing replicas.
        assert result.dp_cumulative[-1].mean >= result.gr_cumulative[-1].mean

    def test_first_step_zero_reuse(self, result):
        assert result.dp_cumulative[0].mean == 0.0
        assert result.gr_cumulative[0].mean == 0.0

    def test_histogram_mass_equals_steps(self, result):
        # Mean counts per tree over all gap values must sum to n_steps.
        assert sum(result.gap_histogram.values()) == pytest.approx(SMALL.n_steps)

    def test_histogram_mean_positive(self, result):
        # Figure 5/7 right: the gap distribution leans positive.
        mean_gap = sum(k * v for k, v in result.gap_histogram.items())
        assert mean_gap >= 0.0

    def test_count_mismatches_zero(self, result):
        assert result.count_mismatches == 0

    def test_rows(self, result):
        rows = result.rows()
        assert len(rows) == SMALL.n_steps
        assert rows[0][0] == 0
