"""Tests for :mod:`repro.experiments.parallel`."""

from __future__ import annotations

import pytest

from repro.analysis.stats import merge_series, summarize
from repro.exceptions import ConfigurationError
from repro.experiments import (
    Exp1Config,
    Exp2Config,
    Exp3Config,
    run_experiment1_parallel,
    run_experiment2_parallel,
    run_experiment3_parallel,
    split_config,
)


class TestMergeSeries:
    def test_matches_single_pass(self):
        a = [1.0, 2.0, 5.0]
        b = [3.0, 3.0]
        merged = merge_series([summarize(a), summarize(b)])
        direct = summarize(a + b)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.std == pytest.approx(direct.std)
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum

    def test_empty_parts_skipped(self):
        m = merge_series([summarize([]), summarize([2.0])])
        assert m.n == 1 and m.mean == 2.0

    def test_all_empty(self):
        assert merge_series([]).n == 0


class TestSplitConfig:
    def test_tree_counts_preserved(self):
        chunks = split_config(Exp1Config(n_trees=10, seed=5), 3)
        assert sum(c.n_trees for c in chunks) == 10
        assert len({c.seed for c in chunks}) == len(chunks)

    def test_more_chunks_than_trees(self):
        chunks = split_config(Exp1Config(n_trees=2), 8)
        assert len(chunks) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_config(Exp1Config(n_trees=2), 0)


class TestParallelRunners:
    """Parallel results must aggregate the same number of samples and
    satisfy the same figure-shape invariants as sequential runs."""

    def test_exp1_parallel(self):
        cfg = Exp1Config(n_trees=4, n_nodes=25, e_values=(0, 5, 15), seed=3)
        res = run_experiment1_parallel(cfg, n_workers=2)
        assert all(s.n == 4 for s in res.dp_reuse)
        assert res.count_mismatches == 0
        for dp, gr in zip(res.dp_reuse, res.gr_reuse, strict=True):
            assert dp.mean >= gr.mean - 1e-9

    def test_exp1_single_worker_equals_sequential(self):
        from repro.experiments import run_experiment1

        cfg = Exp1Config(n_trees=3, n_nodes=20, e_values=(0, 5), seed=9)
        seq = run_experiment1(cfg)
        par = run_experiment1_parallel(cfg, n_workers=1)
        assert [s.mean for s in par.dp_reuse] == pytest.approx(
            [s.mean for s in seq.dp_reuse]
        )
        assert par.mean_gap == pytest.approx(seq.mean_gap)

    def test_exp2_parallel(self):
        cfg = Exp2Config(n_trees=4, n_nodes=25, n_steps=4, seed=3)
        res = run_experiment2_parallel(cfg, n_workers=2)
        assert all(s.n == 4 for s in res.dp_cumulative)
        assert sum(res.gap_histogram.values()) == pytest.approx(cfg.n_steps)
        assert res.dp_cumulative[-1].mean >= res.gr_cumulative[-1].mean

    def test_exp3_parallel(self):
        cfg = Exp3Config(
            n_trees=4, n_nodes=20, cost_bounds=(10.0, 20.0, 40.0), seed=3
        )
        res = run_experiment3_parallel(cfg, n_workers=2)
        assert all(s.n == 4 for s in res.dp_inverse)
        assert res.dp_inverse[-1].mean == pytest.approx(1.0)
        for dp, gr in zip(res.dp_inverse, res.gr_inverse, strict=True):
            assert dp.mean >= gr.mean - 1e-9
        assert all(0.0 <= r <= 1.0 for r in res.dp_success)

    def test_bad_workers(self):
        with pytest.raises(ConfigurationError):
            run_experiment1_parallel(Exp1Config(n_trees=2), n_workers=0)


class TestDeterminism:
    """A fixed ``(seed, n_workers)`` pair must reproduce bit-identical
    merged series (the module docstring's reproducibility contract)."""

    def test_exp1_same_seed_workers_identical(self):
        cfg = Exp1Config(n_trees=4, n_nodes=20, e_values=(0, 5, 10), seed=11)
        a = run_experiment1_parallel(cfg, n_workers=2)
        b = run_experiment1_parallel(cfg, n_workers=2)
        assert a.dp_reuse == b.dp_reuse
        assert a.gr_reuse == b.gr_reuse
        assert a.gap == b.gap
        assert a.mean_gap == b.mean_gap
        assert a.max_gap == b.max_gap

    def test_exp2_same_seed_workers_identical(self):
        cfg = Exp2Config(n_trees=4, n_nodes=20, n_steps=3, seed=11)
        a = run_experiment2_parallel(cfg, n_workers=2)
        b = run_experiment2_parallel(cfg, n_workers=2)
        assert a.dp_cumulative == b.dp_cumulative
        assert a.gr_cumulative == b.gr_cumulative
        assert a.gap_histogram == b.gap_histogram

    def test_exp3_same_seed_workers_identical(self):
        cfg = Exp3Config(
            n_trees=4, n_nodes=15, cost_bounds=(10.0, 30.0), seed=11
        )
        a = run_experiment3_parallel(cfg, n_workers=2)
        b = run_experiment3_parallel(cfg, n_workers=2)
        assert a.dp_inverse == b.dp_inverse
        assert a.gr_inverse == b.gr_inverse
        assert a.dp_success == b.dp_success
        assert a.gr_success == b.gr_success
