"""Pin the paper's Figures 1 and 2 claims (§3.1, §4.1)."""

from __future__ import annotations

import pytest

from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.core.solution import server_loads
from repro.experiments.worked_examples import figure1_example, figure2_example
from repro.power.dp_power_pareto import min_power

COST = UniformCostModel(0.1, 0.01)


class TestFigure1:
    def test_local_flows_match_prose(self):
        ex = figure1_example(2)
        # keep B -> 7 requests traverse A
        _, unserved = server_loads(ex.tree, [ex.node_b])
        assert unserved == 7 + 2
        loads, _ = server_loads(ex.tree, [ex.node_b, ex.root])
        assert loads[ex.root] == 7 + 2
        # new server on C -> only 4 requests traverse A
        loads, _ = server_loads(ex.tree, [ex.node_c, ex.root])
        assert loads[ex.node_c] == 7 and loads[ex.root] == 4 + 2

    def test_two_requests_keeps_b(self):
        ex = figure1_example(2)
        res = replica_update(ex.tree, ex.capacity, ex.preexisting, COST)
        assert res.replicas == {ex.root, ex.node_b}
        assert res.n_reused == 1
        assert res.cost == pytest.approx(2.1)

    def test_four_requests_deletes_b(self):
        ex = figure1_example(4)
        res = replica_update(ex.tree, ex.capacity, ex.preexisting, COST)
        assert res.replicas == {ex.root, ex.node_c}
        assert res.n_reused == 0
        assert res.cost == pytest.approx(2 + 2 * 0.1 + 0.01)

    def test_keeping_b_with_four_requests_is_infeasible_pairwise(self):
        # {B, r} would force the root to serve 7 + 4 = 11 > 10.
        ex = figure1_example(4)
        loads, _ = server_loads(ex.tree, [ex.node_b, ex.root])
        assert loads[ex.root] == 11


class TestFigure2:
    def test_power_constants_match_prose(self):
        ex = figure2_example(4)
        # §4.1: 20 + 2·7² = 118 > 10 + 10² = 110
        two_w1 = 2 * ex.power_model.mode_power(0)
        one_w2 = ex.power_model.mode_power(1)
        assert two_w1 == pytest.approx(118.0)
        assert one_w2 == pytest.approx(110.0)
        assert two_w1 > one_w2

    def test_four_requests_lets_three_through(self):
        ex = figure2_example(4)
        res = min_power(ex.tree, ex.power_model, ex.cost_model)
        assert set(res.server_modes) == {ex.node_c, ex.root}
        assert res.server_modes[ex.node_c] == 0
        assert res.server_modes[ex.root] == 0  # serves 3 + 4 = 7 <= W1
        assert res.power == pytest.approx(118.0)

    def test_ten_requests_blocks_subtree(self):
        ex = figure2_example(10)
        res = min_power(ex.tree, ex.power_model, ex.cost_model)
        assert set(res.server_modes) == {ex.node_a, ex.root}
        assert res.server_modes[ex.node_a] == 1  # absorbs all 10
        assert res.power == pytest.approx(220.0)
