"""Tests for :mod:`repro.experiments.presets`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import PRESETS, make_preset, preset_names
from repro.tree.metrics import tree_stats


class TestPresets:
    def test_names_cover_paper_figures(self):
        assert {"fig4", "fig6", "fig8", "fig10"} <= set(preset_names())

    @pytest.mark.parametrize("name", ["fig4", "fig6", "fig8", "fig10", "zipf"])
    def test_presets_build(self, name):
        tree = make_preset(name, rng=1)
        assert tree.n_nodes in (50, 100)

    def test_fig4_parameters(self):
        tree = make_preset("fig4", rng=2)
        s = tree_stats(tree)
        assert s.n_nodes == 100
        assert s.max_direct_load <= 6

    def test_fig10_is_high(self):
        fat = make_preset("fig8", rng=3)
        high = make_preset("fig10", rng=3)
        assert high.height > fat.height

    def test_zipf_volumes_heavy_tailed(self):
        tree = make_preset("zipf", rng=4)
        ones = sum(1 for c in tree.clients if c.requests == 1)
        sixes = sum(1 for c in tree.clients if c.requests == 6)
        # Zipf(1.5) puts ~55% of the mass on volume 1 and ~4% on volume 6.
        assert ones >= tree.n_clients // 3
        assert ones > sixes

    def test_deterministic(self):
        assert make_preset("fig4", rng=5) == make_preset("fig4", rng=5)

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_preset("fig99")

    def test_descriptions_present(self):
        assert all(p.description for p in PRESETS.values())

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(6)
        tree = make_preset("fig8", rng=rng)
        assert tree.n_nodes == 50
