"""Tests for the scalability harness (§5.2 prose)."""

from __future__ import annotations

from repro.experiments.scaling import run_scaling


class TestRunScaling:
    def test_small_sweep(self):
        points = run_scaling(
            cost_sizes=((30, 8),),
            power_nopre_sizes=(30,),
            power_withpre_sizes=((30, 3),),
            seed=5,
        )
        regimes = [p.regime for p in points]
        assert regimes == ["cost", "power-nopre", "power-withpre"]
        assert all(p.seconds >= 0.0 for p in points)
        assert all(p.detail for p in points)

    def test_sizes_recorded(self):
        points = run_scaling(
            cost_sizes=((20, 5), (40, 10)),
            power_nopre_sizes=(),
            power_withpre_sizes=(),
            seed=1,
        )
        assert [(p.n_nodes, p.n_preexisting) for p in points] == [(20, 5), (40, 10)]
