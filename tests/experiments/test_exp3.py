"""Tests for Experiment 3 (Figure 8–11 runner)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.exp3_power import Exp3Config, run_experiment3

SMALL = Exp3Config(
    n_trees=4,
    n_nodes=30,
    cost_bounds=tuple(float(b) for b in range(8, 40, 4)),
    seed=17,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment3(SMALL)


class TestConfig:
    def test_defaults_match_paper(self):
        c = Exp3Config()
        assert c.mode_capacities == (5, 10)
        assert c.static_power == pytest.approx(12.5)
        assert (c.create, c.delete, c.changed) == (0.1, 0.01, 0.001)
        assert c.cost_bounds[0] == 15.0 and c.cost_bounds[-1] == 45.0

    def test_variants(self):
        assert Exp3Config().no_preexisting().n_preexisting == 0
        assert Exp3Config().high_trees().children_range == (2, 4)
        exp = Exp3Config().expensive_costs()
        assert (exp.create, exp.delete, exp.changed) == (1.0, 1.0, 0.1)

    def test_models_built_from_config(self):
        c = Exp3Config()
        assert c.power_model().mode_power(0) == pytest.approx(137.5)
        assert c.cost_model().n_modes == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Exp3Config(n_trees=0)
        with pytest.raises(ConfigurationError):
            Exp3Config(n_preexisting=99)
        with pytest.raises(ConfigurationError):
            Exp3Config(preexisting_mode=5)


class TestResultShape:
    def test_lengths(self, result):
        n = len(SMALL.cost_bounds)
        assert len(result.dp_inverse) == n
        assert len(result.gr_inverse) == n
        assert len(result.dp_success) == n

    def test_inverse_in_unit_range(self, result):
        for s in result.dp_inverse + result.gr_inverse:
            assert 0.0 <= s.mean <= 1.0 + 1e-9

    def test_dp_dominates_gr(self, result):
        # Figure 8: the optimal DP curve is never below GR's.
        for dp, gr in zip(result.dp_inverse, result.gr_inverse, strict=True):
            assert dp.mean >= gr.mean - 1e-9

    def test_curves_nondecreasing_in_bound(self, result):
        dp = [s.mean for s in result.dp_inverse]
        assert all(a <= b + 1e-9 for a, b in zip(dp, dp[1:], strict=False))

    def test_loose_bound_reaches_optimum(self, result):
        # The largest bound admits the unconstrained optimum: inverse = 1.
        assert result.dp_inverse[-1].mean == pytest.approx(1.0)
        assert result.dp_success[-1] == pytest.approx(1.0)

    def test_ratio_at_least_one(self, result):
        for s in result.gr_over_dp:
            if s.n > 0:
                assert s.mean >= 1.0 - 1e-9
        assert result.peak_gr_overhead() >= 1.0

    def test_success_rates_monotone(self, result):
        assert list(result.dp_success) == sorted(result.dp_success)

    def test_dp_succeeds_whenever_gr_does(self, result):
        for dp_ok, gr_ok in zip(result.dp_success, result.gr_success, strict=True):
            assert dp_ok >= gr_ok - 1e-9

    def test_rows(self, result):
        rows = result.rows()
        assert len(rows) == len(SMALL.cost_bounds)
        assert rows[0][0] == SMALL.cost_bounds[0]
