"""Tests for :mod:`repro.experiments.store` (result persistence)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    Exp1Config,
    Exp2Config,
    Exp3Config,
    load_result,
    result_from_json,
    result_to_json,
    run_experiment1,
    run_experiment2,
    run_experiment3,
    save_result,
)


@pytest.fixture(scope="module")
def exp1_result():
    return run_experiment1(Exp1Config(n_trees=2, n_nodes=20, e_values=(0, 5), seed=1))


@pytest.fixture(scope="module")
def exp2_result():
    return run_experiment2(Exp2Config(n_trees=2, n_nodes=20, n_steps=3, seed=1))


@pytest.fixture(scope="module")
def exp3_result():
    return run_experiment3(
        Exp3Config(n_trees=2, n_nodes=15, cost_bounds=(10.0, 30.0), seed=1)
    )


class TestRoundTrips:
    def test_exp1(self, exp1_result):
        restored = result_from_json(result_to_json(exp1_result))
        assert restored == exp1_result

    def test_exp2(self, exp2_result):
        restored = result_from_json(result_to_json(exp2_result))
        assert restored == exp2_result

    def test_exp3(self, exp3_result):
        restored = result_from_json(result_to_json(exp3_result))
        assert restored == exp3_result

    def test_file_round_trip(self, exp1_result, tmp_path):
        path = tmp_path / "exp1.json"
        save_result(exp1_result, str(path))
        assert load_result(str(path)) == exp1_result

    def test_restored_results_still_compute(self, exp3_result):
        restored = result_from_json(result_to_json(exp3_result))
        assert restored.rows() == exp3_result.rows()
        assert restored.peak_gr_overhead() == exp3_result.peak_gr_overhead()


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            result_from_json("{nope")

    def test_unknown_schema(self, exp1_result):
        import json

        payload = json.loads(result_to_json(exp1_result))
        payload["schema"] = 42
        with pytest.raises(ConfigurationError, match="schema"):
            result_from_json(json.dumps(payload))

    def test_unknown_kind(self, exp1_result):
        import json

        payload = json.loads(result_to_json(exp1_result))
        payload["kind"] = "exp99"
        with pytest.raises(ConfigurationError, match="kind"):
            result_from_json(json.dumps(payload))

    def test_unsupported_type(self):
        with pytest.raises(ConfigurationError, match="unsupported"):
            result_to_json(object())  # type: ignore[arg-type]
