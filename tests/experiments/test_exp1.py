"""Tests for Experiment 1 (Figure 4/6 runner)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.exp1_reuse import Exp1Config, run_experiment1

SMALL = Exp1Config(n_trees=4, n_nodes=40, e_values=(0, 10, 20, 40), seed=7)


@pytest.fixture(scope="module")
def result():
    return run_experiment1(SMALL)


class TestConfig:
    def test_defaults_are_paper_scale(self):
        c = Exp1Config()
        assert c.n_trees == 200
        assert c.n_nodes == 100
        assert c.children_range == (6, 9)
        assert c.e_values[-1] == 100

    def test_high_trees_variant(self):
        assert Exp1Config().high_trees().children_range == (2, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Exp1Config(n_trees=0)
        with pytest.raises(ConfigurationError):
            Exp1Config(n_nodes=10, e_values=(50,))


class TestResultShape:
    def test_series_lengths(self, result):
        assert len(result.dp_reuse) == len(SMALL.e_values)
        assert len(result.gr_reuse) == len(SMALL.e_values)
        assert all(s.n == SMALL.n_trees for s in result.dp_reuse)

    def test_figure4_shape(self, result):
        # No pre-existing servers -> nothing to reuse; DP >= GR everywhere.
        assert result.dp_reuse[0].mean == 0.0
        assert result.gr_reuse[0].mean == 0.0
        for dp, gr in zip(result.dp_reuse, result.gr_reuse, strict=True):
            assert dp.mean >= gr.mean - 1e-9

    def test_same_replica_counts(self, result):
        assert result.count_mismatches == 0

    def test_gap_consistency(self, result):
        for dp, gr, gap in zip(result.dp_reuse, result.gr_reuse, result.gap, strict=True):
            assert gap.mean == pytest.approx(dp.mean - gr.mean)
        assert result.mean_gap >= 0.0
        assert result.max_gap >= 0

    def test_full_preexisting_reuse_equals_servers(self):
        # With E = N both algorithms reuse every server they place.
        cfg = Exp1Config(n_trees=2, n_nodes=30, e_values=(30,), seed=3)
        res = run_experiment1(cfg)
        assert res.gap[0].mean == pytest.approx(0.0)

    def test_rows_and_series_align(self, result):
        rows = result.rows()
        series = result.series()
        assert len(rows) == len(SMALL.e_values)
        assert [xy[1] for xy in series["DP"]] == [r[1] for r in rows]

    def test_progress_callback(self):
        seen = []
        run_experiment1(
            Exp1Config(n_trees=2, n_nodes=20, e_values=(0, 5), seed=1),
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_deterministic(self):
        cfg = Exp1Config(n_trees=2, n_nodes=25, e_values=(5, 10), seed=42)
        a, b = run_experiment1(cfg), run_experiment1(cfg)
        assert a.rows() == b.rows()
