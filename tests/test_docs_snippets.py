"""Keep the documentation honest: README/usage code paths must run.

These tests re-execute the documented snippets (inlined, not parsed) so a
refactor that breaks the README breaks the build.
"""

from __future__ import annotations

import numpy as np
import pytest


class TestReadmeQuickstart:
    def test_cost_quickstart(self):
        from repro import (
            UniformCostModel,
            greedy_placement,
            paper_tree,
            replica_update,
        )
        from repro.dynamics import RedrawRequests

        tree = paper_tree(n_nodes=100, rng=np.random.default_rng(0))
        day0 = greedy_placement(tree, capacity=10)
        day1_workload = RedrawRequests((1, 6)).evolve(tree, np.random.default_rng(1))
        day1 = replica_update(
            day1_workload,
            capacity=10,
            preexisting=day0.replicas,
            cost_model=UniformCostModel(create=0.1, delete=0.01),
        )
        assert day1.n_replicas > 0
        assert day1.cost is not None

    def test_power_quickstart(self):
        from repro import ModalCostModel, greedy_placement, paper_tree
        from repro.power import PowerModel, power_frontier

        tree = paper_tree(n_nodes=50, request_range=(1, 5), rng=np.random.default_rng(0))
        day0 = greedy_placement(tree, capacity=10)
        power_model = PowerModel.paper_experiment3()
        cost_model = ModalCostModel.uniform(
            2, create=0.1, delete=0.01, changed=0.001
        )
        pre_modes = {v: 1 for v in day0.replicas}
        frontier = power_frontier(tree, power_model, cost_model, pre_modes)
        assert frontier.pairs()
        best = frontier.best_under_cost(1e9)
        assert best is not None and best.power > 0


class TestReadmeRegistrySection:
    def test_batch_and_power_policy_usage(self):
        # README "Batch solving and caching" + "Solver-policy registry".
        import numpy as np

        from repro.batch import (
            BatchInstance,
            ResultCache,
            available_solvers,
            random_batch,
            solve_batch,
        )
        from repro.power import PowerModel

        batch = random_batch(8, duplicate_rate=0.5, rng=np.random.default_rng(0))
        cache = ResultCache(max_entries=4096)
        results = solve_batch(batch, solver="dp", workers=1, cache=cache)
        assert len(results) == 8
        assert "duplicates_folded" in cache.stats.as_dict()

        for name in ("min_power", "power_frontier", "greedy_power"):
            assert name in available_solvers()
        pm = PowerModel.paper_experiment3()
        power_batch = [
            BatchInstance(i.tree, i.capacity, i.preexisting, power_model=pm)
            for i in batch
        ]
        powered = solve_batch(power_batch, solver="min_power")
        assert all(r.power > 0 for r in powered)


class TestPackageDocstringExample:
    def test_runs_as_documented(self):
        import repro

        # The >>> block in repro.__doc__ (also asserted in test_api).
        tree = repro.paper_tree(n_nodes=30, rng=np.random.default_rng(0))
        gr = repro.greedy_placement(tree, capacity=10)
        dp = repro.replica_update(tree, capacity=10, preexisting=set(gr.replicas))
        assert dp.n_replicas == gr.n_replicas


class TestUsageGuideRecipes:
    def test_tree_building_forms(self):
        from repro import Client, Tree, TreeBuilder
        from repro.experiments import make_preset
        from repro.tree import paper_tree, tree_from_json, tree_to_json

        b = TreeBuilder()
        root = b.add_root()
        site = b.add_node(root)
        b.add_client(site, requests=4)
        assert b.build().total_requests == 4

        t = Tree([None, 0, 0], [Client(1, 5), (2, 3)])
        assert t.total_requests == 8
        assert make_preset("fig8", rng=0).n_nodes == 50
        t2 = paper_tree(20, rng=0)
        assert tree_from_json(tree_to_json(t2)) == t2

    def test_validation_recipes(self):
        from repro.analysis import locality_report, render_tree
        from repro.core import evaluate_placement
        from repro.sim import simulate_placement
        from repro.tree import paper_tree
        from repro.core import greedy_placement

        tree = paper_tree(25, rng=3)
        placement = greedy_placement(tree, 10)
        assert evaluate_placement(tree, placement.replicas, 10).ok
        report = simulate_placement(tree, placement.replicas, 10, duration=5)
        assert report.max_backlog == 0
        assert "n0" in render_tree(tree, replicas=placement.replicas)
        assert locality_report(tree, placement.replicas).unserved_requests == 0
