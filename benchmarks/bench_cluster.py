"""Cluster scale-out: digest-routed multi-worker vs a single worker.

Solve-bound, cache-miss traffic (every instance unique — no coalescing,
no cache wins) is exactly the load a single :class:`BatchServer` cannot
speed up: the GIL serialises the DP solves.  The cluster router shards
that storm across N ``repro serve`` *processes* (the
:class:`~repro.serve.SubprocessSpawner` backend), so the solves run
genuinely in parallel; this bench fires the same storm at a 1-worker and
an N-worker cluster and asserts the throughput multiple.

The floor is a hard local gate (≥2x with three workers), relaxed for
shared/low-core CI runners via ``REPRO_BENCH_MIN_CLUSTER_SPEEDUP``; the
byte-equivalence check (every routed response identical to the direct
``solve_batch`` answer) is never relaxed.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from repro.analysis import format_table
from repro.batch import get_policy, random_batch, solve_batch
from repro.serve import (
    ClusterRouter,
    ServeClient,
    SubprocessSpawner,
    WorkerConfig,
)

N_REQUESTS = 60
N_NODES = 150
FLEET = 3
SEED = 2011
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_CLUSTER_SPEEDUP", "2.0"))


def _storm():
    return random_batch(
        N_REQUESTS,
        duplicate_rate=0.0,  # all-unique: solve-bound, zero cache help
        n_nodes=N_NODES,
        n_preexisting=40,
        rng=np.random.default_rng(SEED),
    )


def _run_cluster(storm, n_workers: int):
    """One storm through a fresh n-worker cluster; returns (responses, s)."""

    async def run():
        router = ClusterRouter(
            SubprocessSpawner(),
            n_workers,
            WorkerConfig(max_delay=0.002),
            fallbacks=1,
        )
        async with router:
            host, port = await router.listen()
            client = await ServeClient.connect(host, port)
            try:
                t0 = time.perf_counter()
                responses = await client.solve_many(storm, solver="dp")
                elapsed = time.perf_counter() - t0
            finally:
                await client.close()
            return responses, elapsed, router.stats.as_dict()

    return asyncio.run(run())


def test_cluster_throughput_vs_single_worker(emit, emit_json):
    storm = _storm()
    policy = get_policy("dp")
    expected = [
        json.dumps(policy.result_to_wire(r), sort_keys=True)
        for r in solve_batch(storm, solver="dp")
    ]

    timings: dict[int, float] = {}
    for n_workers in (1, FLEET):
        responses, elapsed, stats = _run_cluster(storm, n_workers)
        timings[n_workers] = elapsed
        # Exactness is not relaxed: every routed response byte-matches
        # the direct batch pipeline, whatever the fleet size.
        assert len(responses) == N_REQUESTS
        for response, want in zip(responses, expected, strict=True):
            assert json.dumps(response["result"], sort_keys=True) == want
        assert stats["requests_routed"] == N_REQUESTS
        assert stats["rejected"] == 0

    speedup = timings[1] / timings[FLEET]
    rows = [
        (
            n,
            f"{timings[n]:.2f}s",
            f"{N_REQUESTS / timings[n]:.1f}",
            f"{timings[1] / timings[n]:.2f}x",
        )
        for n in (1, FLEET)
    ]
    table = format_table(("workers", "seconds", "rps", "speedup"), rows)
    emit(
        "cluster_throughput",
        f"{table}\n"
        f"storm: {N_REQUESTS} unique {N_NODES}-node dp instances "
        f"(cache-miss, solve-bound)\n"
        f"speedup {FLEET}w vs 1w: {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP}, host cpus={os.cpu_count()})",
    )
    emit_json(
        "cluster",
        {
            "requests": N_REQUESTS,
            "nodes": N_NODES,
            "fleet": FLEET,
            "cpus": os.cpu_count(),
            "seconds_1_worker": timings[1],
            f"seconds_{FLEET}_workers": timings[FLEET],
            "rps_1_worker": N_REQUESTS / timings[1],
            f"rps_{FLEET}_workers": N_REQUESTS / timings[FLEET],
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"cluster speedup {speedup:.2f}x under the {MIN_SPEEDUP}x floor "
        f"({FLEET} workers, {os.cpu_count()} cpus)"
    )
