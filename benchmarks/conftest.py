"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark measures the experiment runtime with pytest-benchmark *and*
emits the regenerated figure (ASCII chart + data table) both to the
terminal (bypassing capture) and to ``benchmarks/results/<name>.txt`` so
the series survive in the repository.  EXPERIMENTS.md is written from those
files.

Benchmarks that feed the nightly workflow additionally persist a
machine-readable ``benchmarks/results/BENCH_<name>.json`` via
``emit_json`` — the files the scheduled run uploads as artifacts and
summarises in the job step summary.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def emit(capsys):
    """Print a named report through the capture barrier and persist it."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


@pytest.fixture()
def emit_json():
    """Persist a named JSON report as ``results/BENCH_<name>.json``."""

    def _emit(name: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    return _emit
