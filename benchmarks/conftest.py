"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark measures the experiment runtime with pytest-benchmark *and*
emits the regenerated figure (ASCII chart + data table) both to the
terminal (bypassing capture) and to ``benchmarks/results/<name>.txt`` so
the series survive in the repository.  EXPERIMENTS.md is written from those
files.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def emit(capsys):
    """Print a named report through the capture barrier and persist it."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
