"""Figure 11 — Experiment 3 with expensive creations/deletions.

Paper configuration: ``create = delete = 1``, ``changed = 0.1``.
Observation: "the ratio between DP and GR is better for lowest cost,
because GR find less solution than DP.  DP indeed can find solution with
lower cost, taking pre-existing replicas into account" — reuse keeps DP
under bounds where GR (which re-creates from scratch) cannot fit.
"""

from __future__ import annotations

from repro.analysis import format_table, line_plot
from repro.experiments import Exp3Config, run_experiment3

CONFIG = Exp3Config(n_trees=100, seed=2013).expensive_costs()


def test_fig11_power_expensive_costs(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment3, args=(CONFIG,), rounds=1, iterations=1
    )

    for dp, gr in zip(result.dp_inverse, result.gr_inverse, strict=True):
        assert dp.mean >= gr.mean - 1e-9
    # The reuse advantage must show up as a success-rate gap at tight
    # bounds: DP finds solutions on strictly more trees than GR somewhere.
    assert any(
        dp_ok > gr_ok + 1e-9
        for dp_ok, gr_ok in zip(result.dp_success, result.gr_success, strict=True)
    )

    chart = line_plot(
        result.series(),
        title="Figure 11: inverse power vs cost bound (create=delete=1, changed=0.1)",
        xlabel="cost bound",
        ylabel="P_opt/P (0=no solution)",
    )
    table = format_table(
        ("bound", "DP_inv", "GR_inv", "DP_ok", "GR_ok", "GR/DP"),
        result.rows(),
    )
    first_dp = next(
        (b for b, ok in zip(result.bounds, result.dp_success, strict=True) if ok > 0), None
    )
    first_gr = next(
        (b for b, ok in zip(result.bounds, result.gr_success, strict=True) if ok > 0), None
    )
    emit(
        "fig11_power_costs",
        f"{chart}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}; first bound with any solution: "
        f"DP={first_dp} GR={first_gr} (DP fits earlier thanks to reuse)",
    )
