"""Warm-vs-cold batch throughput with a persistent cache directory.

CI persists ``REPRO_WARM_CACHE_DIR`` across runs (``actions/cache``), so
the warm pass measures cross-run cache reuse: on the first run the warm
directory is empty and the two passes match; on later runs the warm pass
is served from disk without a single solve.  Cache records are versioned
by ``repro.__version__`` — bumping the version or the digest schema
cleanly invalidates the persisted store, so drift can never serve stale
records (the report then shows a cold-ish warm pass for one run).

The batch is seed-fixed so digests are stable across runs of the same
code version.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis import format_table
from repro.batch import ResultCache, random_batch, solve_batch

N_INSTANCES = 30
N_NODES = 90
DUP_RATE = 0.5
SEED = 777

WARM_DIR = os.environ.get(
    "REPRO_WARM_CACHE_DIR", "benchmarks/results/warm-cache-dir"
)


def _batch():
    return random_batch(
        N_INSTANCES,
        duplicate_rate=DUP_RATE,
        n_nodes=N_NODES,
        n_preexisting=20,
        rng=np.random.default_rng(SEED),
    )


def _run(cache_dir):
    cache = ResultCache(max_entries=512, cache_dir=cache_dir)
    t0 = time.perf_counter()
    results = solve_batch(_batch(), solver="dp", cache=cache)
    elapsed = time.perf_counter() - t0
    return results, elapsed, cache.stats


def test_warm_vs_cold_throughput(emit, tmp_path):
    cold_results, t_cold, cold = _run(tmp_path / "cold")
    warm_results, t_warm, warm = _run(WARM_DIR)

    # Warm-tier correctness: the persisted records must reproduce the
    # cold solve exactly.
    assert [r.cost for r in warm_results] == [r.cost for r in cold_results]
    # A persisted store can only remove work, never add it.
    assert warm.unique_solved <= cold.unique_solved

    rows = [
        (
            "cold",
            cold.unique_solved,
            cold.disk_hits,
            f"{N_INSTANCES / t_cold:.0f}",
        ),
        (
            "warm",
            warm.unique_solved,
            warm.disk_hits,
            f"{N_INSTANCES / t_warm:.0f}",
        ),
    ]
    emit(
        "warm_cache",
        format_table(("pass", "unique_solved", "disk_hits", "solves/s"), rows)
        + f"\n\nbatch={N_INSTANCES} instances, N={N_NODES}, "
        f"dup_rate={DUP_RATE:.0%}, warm dir={WARM_DIR}\n"
        f"warm/cold throughput: {t_cold / t_warm:.2f}x "
        f"(1.0x expected on a first run with an empty warm dir)",
    )

    # Second in-process pass over the now-populated warm dir must be
    # entirely solve-free regardless of CI cache state.
    rerun = ResultCache(max_entries=512, cache_dir=WARM_DIR)
    solve_batch(_batch(), solver="dp", cache=rerun)
    assert rerun.stats.unique_solved == 0
    assert rerun.stats.disk_hits > 0
