"""Figure 8 — Experiment 3: power vs cost bound, fat trees, 5 pre-existing.

Paper series: average normalised inverse power over 100 trees (N=50, modes
{5,10}, P_i = W₁³/10 + W_i³, create=0.1 delete=0.01 changed=0.001) for the
optimal bi-criteria DP and the GR capacity sweep, across cost bounds 15..45.
Headline: "GR consumes in average more than 30% more power than DP" for
intermediate bounds.  Runs at full paper scale (the Pareto engine makes it
cheap).
"""

from __future__ import annotations

from repro.analysis import format_table, line_plot
from repro.experiments import Exp3Config, run_experiment3

CONFIG = Exp3Config(n_trees=100, seed=2013)


def test_fig8_power_fat_trees(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment3, args=(CONFIG,), rounds=1, iterations=1
    )

    # Paper shape: DP dominates GR everywhere; both reach the optimum at
    # loose bounds; mid-range GR burns >20% more power on average.
    for dp, gr in zip(result.dp_inverse, result.gr_inverse, strict=True):
        assert dp.mean >= gr.mean - 1e-9
    assert result.dp_inverse[-1].mean == 1.0
    assert result.peak_gr_overhead() > 1.2

    chart = line_plot(
        result.series(),
        title="Figure 8: normalised inverse power vs cost bound (fat trees, E=5)",
        xlabel="cost bound",
        ylabel="P_opt/P (0=no solution)",
    )
    table = format_table(
        ("bound", "DP_inv", "GR_inv", "DP_ok", "GR_ok", "GR/DP"),
        result.rows(),
    )
    emit(
        "fig8_power_fat",
        f"{chart}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, N={CONFIG.n_nodes}, E={CONFIG.n_preexisting}; "
        f"peak mean GR/DP power ratio = {result.peak_gr_overhead():.3f} "
        f"(paper: >1.30 mid-range)",
    )
