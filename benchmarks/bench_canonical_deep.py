"""Canonicalisation on path-heavy trees: the AHU-interning regression.

The original AHU encoding concatenated child code *strings*, which is
O(N²) characters on a depth-N path; interned integer codes keep the
encoding near-linear (see :mod:`repro.batch.canonical`).  This bench
times a depth-1000 path (the ROADMAP regression case), checks digest
invariance under the worst-case reversal relabelling, and asserts a
generous near-linearity bound on the depth-1000 → depth-4000 scaling so
an accidental return to quadratic growth fails loudly.
"""

from __future__ import annotations

import time

from repro.batch.canonical import canonicalize, instance_digest, relabel_tree
from repro.tree.model import Tree

DEPTH = 1000
SCALE_DEPTH = 4000
# Quadratic growth would be 16x work at 4x depth; allow generous noise
# headroom over the linear 4x on shared runners.
MAX_SCALE_RATIO = 10.0


def _path_tree(depth: int) -> Tree:
    parents = [None] + list(range(depth - 1))
    clients = [(depth - 1, 3), (depth // 2, 2), (depth // 3, 5)]
    return Tree(parents, clients, validate=False)


def _timed(fn, repeats: int = 3):
    best = None
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return out, best


def test_deep_path_canonicalisation(emit):
    tree = _path_tree(DEPTH)
    canon, t_deep = _timed(lambda: canonicalize(tree))

    # Correctness on the regression shape: the reversal permutation makes
    # the old string encoding touch its longest codes first.
    reversed_tree, _ = relabel_tree(tree, list(range(DEPTH - 1, -1, -1)))
    assert instance_digest(canonicalize(reversed_tree), 10, None, "dp") == (
        instance_digest(canon, 10, None, "dp")
    )

    big = _path_tree(SCALE_DEPTH)
    _, t_big = _timed(lambda: canonicalize(big))
    ratio = t_big / t_deep
    emit(
        "canonical_deep",
        f"depth {DEPTH}: {t_deep * 1e3:.2f} ms   "
        f"depth {SCALE_DEPTH}: {t_big * 1e3:.2f} ms   "
        f"ratio {ratio:.1f}x (linear would be "
        f"{SCALE_DEPTH / DEPTH:.0f}x, quadratic "
        f"{(SCALE_DEPTH / DEPTH) ** 2:.0f}x)\n"
        f"acceptance: ratio <= {MAX_SCALE_RATIO:.0f}x",
    )
    assert ratio <= MAX_SCALE_RATIO


def test_micro_canonicalize_deep_path(benchmark):
    tree = _path_tree(DEPTH)
    canon = benchmark.pedantic(
        lambda: canonicalize(tree), rounds=3, iterations=1
    )
    assert len(canon.parents) == DEPTH
