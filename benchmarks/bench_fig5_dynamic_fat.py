"""Figure 5 — Experiment 2 on fat trees: 20 consecutive update steps.

Left panel: cumulative number of reused servers per step for DP and GR
(each algorithm evolves its *own* pre-existing set).  Right panel:
histogram of the per-step reuse gap DP−GR, averaged over trees.  Paper
observation: DP dominates cumulatively, with occasional negative samples
because the two algorithms start each step from different server sets.
"""

from __future__ import annotations

from repro.analysis import bar_plot, format_table, line_plot
from repro.experiments import Exp2Config, run_experiment2

CONFIG = Exp2Config(n_trees=20, seed=2012)


def test_fig5_dynamic_fat_trees(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment2, args=(CONFIG,), rounds=1, iterations=1
    )

    # Paper shape: same replica counts every step, DP cumulative reuse
    # dominates, gap histogram leans positive.
    assert result.count_mismatches == 0
    assert result.dp_cumulative[-1].mean >= result.gr_cumulative[-1].mean
    mean_gap = sum(k * v for k, v in result.gap_histogram.items())
    assert mean_gap > 0

    left = line_plot(
        result.series(),
        title="Figure 5 (left): cumulative reused servers (fat trees)",
        xlabel="update step",
        ylabel="partial sum of reused servers",
    )
    right = bar_plot(
        result.gap_histogram,
        title="Figure 5 (right): mean #steps at each (DP reuse - GR reuse)",
        xlabel="(reused in DP) - (reused in GR)",
    )
    table = format_table(("step", "DP_cumulative", "GR_cumulative"), result.rows())
    emit(
        "fig5_dynamic_fat",
        f"{left}\n\n{right}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, steps={CONFIG.n_steps}; "
        f"final cumulative reuse DP={result.dp_cumulative[-1].mean:.1f} "
        f"GR={result.gr_cumulative[-1].mean:.1f}",
    )
