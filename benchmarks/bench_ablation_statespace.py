"""Ablation 4 — measured state-space growth vs the paper's bounds.

Theorem 1 bounds the MinCost-WithPre work by ``O(N·(N-E+1)²·(E+1)²)``
table-cell operations; with subtree-bounded tables the *measured* totals
sit far below the bound.  For the power engine, the Pareto prune ratio
shows how much of the Theorem-3 count-vector space dominance eliminates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core.costs import ModalCostModel
from repro.perf import instrument_pareto_frontier, instrument_replica_update
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting, random_preexisting_modes

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
CORE_SIZES = ((50, 12), (100, 25), (200, 50), (400, 100))
POWER_SIZES = (25, 50, 100, 200)


def _measure():
    rng = np.random.default_rng(2017)
    core_rows = []
    for n, e in CORE_SIZES:
        tree = paper_tree(n, rng=rng)
        pre = random_preexisting(tree, e, rng=rng)
        _, stats = instrument_replica_update(tree, 10, pre)
        bound = n * (n - e + 1) ** 2 * (e + 1) ** 2
        core_rows.append(
            (n, e, stats.total_cells, bound, stats.total_cells / bound,
             stats.max_cells)
        )
    power_rows = []
    for n in POWER_SIZES:
        tree = paper_tree(n, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, max(2, n // 10), 2, rng=rng, mode=1)
        _, stats = instrument_pareto_frontier(tree, PM, CM, pre)
        power_rows.append(
            (n, stats.labels_created, stats.labels_kept, stats.prune_ratio,
             stats.max_front_size)
        )
    return core_rows, power_rows


def test_ablation_state_space(benchmark, emit):
    core_rows, power_rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    # Subtree bounding keeps measured work far under the Theorem-1 bound,
    # increasingly so at scale.
    fractions = [r[4] for r in core_rows]
    assert all(f < 0.01 for f in fractions)
    assert fractions[-1] < fractions[0]
    # Dominance pruning discards a substantial share of candidate labels.
    assert all(r[3] > 0.1 for r in power_rows)

    core_table = format_table(
        ("N", "E", "measured_cells", "theorem1_bound", "fraction", "max_table"),
        core_rows,
        float_fmt="{:.2e}",
    )
    power_table = format_table(
        ("N", "labels_created", "labels_kept", "prune_ratio", "max_front"),
        power_rows,
    )
    emit(
        "ablation_statespace",
        "MinCost-WithPre table cells vs the O(N·(N-E+1)²·(E+1)²) bound:\n"
        f"{core_table}\n\nPower engine Pareto pruning:\n{power_table}",
    )
