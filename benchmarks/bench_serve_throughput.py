"""Serving throughput: coalescing vs a per-request solve loop.

The serving win on duplicate-heavy concurrent load has two parts: a
request joining an identical in-flight solve costs one fan-out instead
of one DP run, and a request arriving after the solve lands costs one
cache hit.  This bench fires a concurrent storm of relabelled-duplicate
requests at an in-process :class:`~repro.serve.BatchServer` and compares
against the naive per-request loop, asserting both the throughput floor
and the coalescing accounting (unique solves == unique instances).

Like the batch bench, the floor is a hard local gate relaxed for noisy
shared CI runners via ``REPRO_BENCH_MIN_SPEEDUP_SERVE``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from repro.analysis import format_table
from repro.batch import get_policy, random_batch, solve_batch
from repro.core.dp_withpre import replica_update
from repro.serve import BatchServer

N_REQUESTS = 60
N_NODES = 120
RATES = (0.5, 0.9)
SEED = 2011
MIN_SPEEDUP_90 = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_SERVE", "3.0")
)


def _make_storm(rate: float):
    return random_batch(
        N_REQUESTS,
        duplicate_rate=rate,
        n_nodes=N_NODES,
        n_preexisting=30,
        rng=np.random.default_rng(SEED),
    )


def _serve_storm(storm):
    """All requests concurrently against a fresh server; returns stats."""

    async def run():
        async with BatchServer(max_delay=0.002) as server:
            results = await asyncio.gather(
                *(server.submit(i, solver="dp") for i in storm)
            )
            return results, server

    return asyncio.run(run())


def test_serve_throughput_vs_naive_loop(emit, emit_json):
    rows = []
    speedups: dict[float, float] = {}
    series: dict[str, dict] = {}
    policy = get_policy("dp")
    for rate in RATES:
        storm = _make_storm(rate)

        t0 = time.perf_counter()
        naive = [
            replica_update(i.tree, i.capacity, i.preexisting, i.cost_model)
            for i in storm
        ]
        t_naive = time.perf_counter() - t0

        t0 = time.perf_counter()
        served, server = _serve_storm(storm)
        t_serve = time.perf_counter() - t0

        # Exactness first: serving is transparent — responses byte-match
        # the direct batch pipeline, and match the naive DP on cost (the
        # canonical solve may pick a different equal-cost optimum).
        direct = solve_batch(storm, solver="dp")
        for a, b, c in zip(served, direct, naive, strict=True):
            assert json.dumps(policy.result_to_wire(a), sort_keys=True) == (
                json.dumps(policy.result_to_wire(b), sort_keys=True)
            )
            assert abs(a.cost - c.cost) < 1e-9
        stats = server.stats.policy("dp")
        assert stats.requests == N_REQUESTS
        # Coalescing is complete: one scheduled solve per unique instance.
        assert stats.solves_scheduled == server.cache.stats.unique_solved
        assert (
            stats.solves_scheduled + stats.coalesced_joins + stats.cache_hits
            == N_REQUESTS
        )

        speedups[rate] = t_naive / t_serve
        series[f"{rate:.2f}"] = {
            "solves_scheduled": stats.solves_scheduled,
            "coalesced_joins": stats.coalesced_joins,
            "cache_hits": stats.cache_hits,
            "naive_seconds": t_naive,
            "serve_seconds": t_serve,
            "speedup": speedups[rate],
            "p50_seconds": stats.latency_quantile(0.5),
            "p99_seconds": stats.latency_quantile(0.99),
        }
        rows.append(
            (
                f"{rate:.0%}",
                stats.solves_scheduled,
                stats.coalesced_joins,
                stats.cache_hits,
                f"{N_REQUESTS / t_naive:.0f}",
                f"{N_REQUESTS / t_serve:.0f}",
                f"{speedups[rate]:.1f}x",
                f"{(stats.latency_quantile(0.5) or 0.0) * 1e3:.1f}ms",
                f"{(stats.latency_quantile(0.99) or 0.0) * 1e3:.1f}ms",
            )
        )

    table = format_table(
        (
            "dup_rate",
            "solves",
            "joined",
            "cache",
            "naive_rps",
            "serve_rps",
            "speedup",
            "p50",
            "p99",
        ),
        rows,
    )
    emit(
        "serve_throughput",
        f"{table}\n\nstorm={N_REQUESTS} concurrent requests, N={N_NODES}, "
        f"solver=dp, in-process submit path\n"
        f"acceptance: speedup at 90% duplicates >= {MIN_SPEEDUP_90:.1f}x "
        f"(measured {speedups[0.9]:.1f}x)",
    )
    emit_json(
        "serve",
        {
            "n_requests": N_REQUESTS,
            "n_nodes": N_NODES,
            "solver": "dp",
            "min_speedup_90": MIN_SPEEDUP_90,
            "rates": series,
        },
    )
    assert speedups[0.9] >= MIN_SPEEDUP_90
