"""Pareto-DP kernel benchmark + thresholded perf smoke (PR 5).

Measures the rewritten dominance-aware row kernel
(:mod:`repro.power.dp_power_pareto`) against the frozen pre-rewrite
kernel (:mod:`_legacy_pareto`) on one instance per family, interleaving
the two timers so CPU-frequency drift cannot bias the ratio, and writes
``benchmarks/results/BENCH_pareto.json`` — per family: wall times for
both kernels, the speedup, and the kernel counters (labels created /
generated / rejected at merge, memo hits).  CI uploads the file as an
artifact, so the speedup history is inspectable per commit.

Two gates fail the build:

* **speedup floor** — the families marked ``hard`` (larger mode sets,
  bigger fronts: where the old materialise-then-prune kernel's cross
  products explode) must beat the legacy kernel by
  ``REPRO_BENCH_MIN_PARETO_SPEEDUP`` (default 3.0; CI relaxes on shared
  runners).  The small two-mode families are *recorded* but not gated:
  at ~50 nodes both kernels are bounded by the per-node skeleton, not by
  label work, and the honest ratio there is ~1.2-1.5x — measured, not a
  regression.  (The issue's ">=3x on the micro power cases" target is
  therefore met only where label work dominates; ``BENCH_pareto.json``
  records the per-family truth rather than gating a number the
  interpreter-bound micro case cannot reach.)
* **regression smoke** — the new kernel's wall time per family must stay
  within ``REPRO_PARETO_REGRESSION_FACTOR`` (default 1.5) of the
  committed baseline (``benchmarks/baselines/BENCH_pareto_baseline.json``),
  after rescaling by a pure-Python calibration loop measured on both
  machines — so a slower runner shifts the threshold instead of failing
  the build.

A third gate (PR 7, ``test_array_vs_tuple_kernel``) compares the
structure-of-arrays kernel (:mod:`repro.power.dp_power_array`) against
the row-tuple kernel on label-heavy diverse-cost families: frontiers
must be byte-identical and the ``hard`` families must beat the tuple
kernel by ``REPRO_BENCH_MIN_ARRAY_SPEEDUP`` (default 3.0).  Results land
in ``benchmarks/results/BENCH_pareto_array.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _legacy_pareto import legacy_power_frontier_pairs  # noqa: E402

from repro.analysis import format_table  # noqa: E402
from repro.core.costs import ModalCostModel  # noqa: E402
from repro.perf.stats import ParetoDPStats  # noqa: E402
from repro.power.dp_power_array import power_frontier_array  # noqa: E402
from repro.power.dp_power_pareto import power_frontier  # noqa: E402
from repro.power.modes import ModeSet, PowerModel  # noqa: E402
from repro.tree.generators import (  # noqa: E402
    paper_tree,
    random_preexisting_modes,
)
from repro.tree.model import Client, Tree  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "BENCH_pareto_baseline.json"
)

PM2 = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM2 = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
PM3 = PowerModel(ModeSet((3, 6, 12)), static_power=5.0, alpha=2.0)
CM3 = ModalCostModel.uniform(3, create=0.1, delete=0.01, changed=0.001)
PM4 = PowerModel(ModeSet((4, 8, 16, 32)), static_power=3.0, alpha=2.0)
CM4 = ModalCostModel.uniform(4, create=0.1, delete=0.01, changed=0.001)


def _balanced(branch: int, depth: int, load: int) -> Tree:
    parents: list[int | None] = [None]
    level = [0]
    for _ in range(depth):
        nxt = []
        for p in level:
            for _ in range(branch):
                nxt.append(len(parents))
                parents.append(p)
        level = nxt
    return Tree(parents, [Client(v, load) for v in level])


def _families() -> dict[str, dict]:
    """One representative instance per family.

    ``hard=True`` marks the families the ≥3x speedup gate applies to.
    ``reps`` bounds the interleaved timing repetitions (larger instances
    need fewer for a stable best-of).
    """
    f: dict[str, dict] = {}

    # The bench_micro_solvers power case, verbatim (fig-8 shape).
    t = paper_tree(50, request_range=(1, 5), rng=np.random.default_rng(44))
    pre = random_preexisting_modes(t, 5, 2, rng=np.random.default_rng(45), mode=1)
    f["micro_power50"] = dict(tree=t, pm=PM2, cm=CM2, pre=pre, reps=30, hard=False)

    # Fig-10 shape: high trees, pass-chains dominate.
    rng = np.random.default_rng(2013)
    t = paper_tree(50, children_range=(2, 4), request_range=(1, 5), rng=rng)
    pre = random_preexisting_modes(t, 5, 2, rng=rng, mode=1)
    f["high50"] = dict(tree=t, pm=PM2, cm=CM2, pre=pre, reps=30, hard=False)

    # Larger two-mode fat tree (batch/serve scale).
    t = paper_tree(400, request_range=(1, 5), rng=np.random.default_rng(7))
    pre = random_preexisting_modes(t, 40, 2, rng=np.random.default_rng(8), mode=1)
    f["fat400"] = dict(tree=t, pm=PM2, cm=CM2, pre=pre, reps=8, hard=False)

    # Self-similar structure: AHU memoization answers repeated subtrees.
    f["memo_balanced3x5"] = dict(
        tree=_balanced(3, 5, 3), pm=PM2, cm=CM2, pre={}, reps=8, hard=False
    )

    # Three modes: fronts widen, the cross products the legacy kernel
    # materialises grow — the dominance-aware merge's home turf.
    t = paper_tree(500, request_range=(1, 6), rng=np.random.default_rng(31))
    pre = random_preexisting_modes(t, 50, 3, rng=np.random.default_rng(32), mode=1)
    f["threemode500"] = dict(tree=t, pm=PM3, cm=CM3, pre=pre, reps=4, hard=True)

    # Four modes: the hardest family, output-sensitivity dominates.
    t = paper_tree(200, request_range=(1, 8), rng=np.random.default_rng(41))
    pre = random_preexisting_modes(t, 20, 4, rng=np.random.default_rng(42), mode=2)
    f["fourmode200"] = dict(tree=t, pm=PM4, cm=CM4, pre=pre, reps=4, hard=True)

    return f


def _diverse_instance(
    n_nodes: int, seed: int, caps: tuple[int, ...], requests: tuple[int, int]
):
    """A label-heavy instance: *mode-dependent* create/delete/changed
    prices keep sibling fronts distinct (uniform costs collapse them), so
    merge label work — the array kernel's target — dominates the solve."""
    rng = random.Random(seed)
    tree = paper_tree(n_nodes, rng=seed, request_range=requests)
    pm = PowerModel(ModeSet(caps), static_power=2.0, alpha=2.0)
    k = len(caps)
    cm = ModalCostModel(
        create=tuple(0.2 + 0.07 * m for m in range(k)),
        delete=tuple(0.05 + 0.013 * m for m in range(k)),
        changed=tuple(
            tuple(0.0 if a == b else 0.01 + 0.003 * abs(a - b) for b in range(k))
            for a in range(k)
        ),
    )
    pre = {
        v: rng.randrange(k)
        for v in tree.post_order()
        if v != tree.root and rng.random() < 0.25
    }
    return tree, pm, cm, pre


def _array_families() -> dict[str, dict]:
    """Instances for the array-vs-tuple comparison (PR 7).

    ``hard=True`` families carry the ``REPRO_BENCH_MIN_ARRAY_SPEEDUP``
    gate.  Small instances are deliberately absent: below ~10^6 labels
    both kernels are bounded by the per-node skeleton and numpy call
    overhead makes the array kernel *slower* — the knob exists so such
    workloads can keep the tuple kernel.
    """
    six = (1, 2, 4, 7, 11, 16)
    f: dict[str, dict] = {}
    tree, pm, cm, pre = _diverse_instance(400, 7, six, (1, 10))
    f["sixmode400_div"] = dict(
        tree=tree, pm=pm, cm=cm, pre=pre, reps=3, hard=False
    )
    tree, pm, cm, pre = _diverse_instance(800, 8, six, (1, 10))
    f["sixmode800_div"] = dict(
        tree=tree, pm=pm, cm=cm, pre=pre, reps=2, hard=True
    )
    return f


def _paired(fn_new, fn_old, reps: int) -> tuple[float, float]:
    """Interleaved best-of wall times (defeats CPU-frequency drift)."""
    best_new = best_old = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_new()
        best_new = min(best_new, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_old()
        best_old = min(best_old, time.perf_counter() - t0)
    return best_new, best_old


def _calibration_seconds() -> float:
    """Pure-Python workload for cross-machine threshold rescaling."""
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc += i * i % 7
        best = min(best, time.perf_counter() - t0)
    return best


def _run_families() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for name, spec in _families().items():
        tree, pm, cm, pre = spec["tree"], spec["pm"], spec["cm"], spec["pre"]
        stats = ParetoDPStats()
        frontier = power_frontier(tree, pm, cm, pre, stats=stats)
        legacy_pairs = legacy_power_frontier_pairs(tree, pm, cm, pre)
        assert frontier.pairs() == legacy_pairs, (
            f"{name}: kernel frontier diverged from the legacy kernel"
        )
        new_s, old_s = _paired(
            lambda: power_frontier(tree, pm, cm, pre),
            lambda: legacy_power_frontier_pairs(tree, pm, cm, pre),
            spec["reps"],
        )
        out[name] = {
            "n_nodes": tree.n_nodes,
            "n_modes": pm.modes.n_modes,
            "hard": spec["hard"],
            "points": len(frontier),
            "kernel_seconds": new_s,
            "legacy_seconds": old_s,
            "speedup": old_s / new_s,
            "stats": stats.as_dict(),
        }
    return out


def _run_array_families() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for name, spec in _array_families().items():
        tree, pm, cm, pre = spec["tree"], spec["pm"], spec["cm"], spec["pre"]
        arr_stats, tup_stats = ParetoDPStats(), ParetoDPStats()
        arr = power_frontier_array(tree, pm, cm, pre, stats=arr_stats)
        tup = power_frontier(tree, pm, cm, pre, stats=tup_stats)
        # Byte identity first — a fast wrong frontier is not a speedup.
        assert arr.pairs() == tup.pairs(), (
            f"{name}: array kernel frontier diverged from the tuple oracle"
        )
        arr_s, tup_s = _paired(
            lambda: power_frontier_array(tree, pm, cm, pre),
            lambda: power_frontier(tree, pm, cm, pre),
            spec["reps"],
        )
        out[name] = {
            "n_nodes": tree.n_nodes,
            "n_modes": pm.modes.n_modes,
            "hard": spec["hard"],
            "points": len(arr),
            "array_seconds": arr_s,
            "tuple_seconds": tup_s,
            "speedup": tup_s / arr_s,
            "labels_created": arr_stats.labels_created,
            "array_labels_generated": arr_stats.labels_generated,
            "tuple_labels_generated": tup_stats.labels_generated,
        }
    return out


def test_pareto_kernel_speedup_and_smoke(benchmark, emit):
    families = benchmark.pedantic(_run_families, rounds=1, iterations=1)
    calibration = _calibration_seconds()

    report = {
        "calibration_seconds": calibration,
        "families": families,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pareto.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    rows = [
        (
            name,
            fam["n_nodes"],
            fam["n_modes"],
            fam["points"],
            f"{fam['legacy_seconds'] * 1e3:.2f}",
            f"{fam['kernel_seconds'] * 1e3:.2f}",
            f"{fam['speedup']:.2f}x",
            fam["stats"]["labels_created"],
            fam["stats"]["labels_generated"],
            fam["stats"]["memo_hits"],
            "hard" if fam["hard"] else "",
        )
        for name, fam in families.items()
    ]
    table = format_table(
        (
            "family", "N", "M", "pts", "legacy_ms", "kernel_ms", "speedup",
            "created", "generated", "memo", "gate",
        ),
        rows,
    )
    emit(
        "pareto_kernel",
        f"{table}\n\nIdentical frontiers on every family; 'hard' families "
        "carry the speedup gate (label work dominates there — the small "
        "two-mode families are skeleton-bound in both kernels and are "
        "recorded ungated).",
    )

    # Gate 1: the label-bound families must keep the rewrite's speedup.
    floor = float(os.environ.get("REPRO_BENCH_MIN_PARETO_SPEEDUP", "3.0"))
    for name, fam in families.items():
        if fam["hard"]:
            assert fam["speedup"] >= floor, (
                f"{name}: speedup {fam['speedup']:.2f}x fell below the "
                f"{floor:.1f}x floor (legacy {fam['legacy_seconds']:.4f}s, "
                f"kernel {fam['kernel_seconds']:.4f}s)"
            )

    # Gate 2: wall-time regression vs the committed baseline, rescaled by
    # the calibration workload so runner speed shifts the threshold.
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        factor = float(os.environ.get("REPRO_PARETO_REGRESSION_FACTOR", "1.5"))
        scale = calibration / baseline["calibration_seconds"]
        for name, fam in families.items():
            ref = baseline["families"].get(name)
            if ref is None:
                continue
            limit = ref["kernel_seconds"] * scale * factor
            assert fam["kernel_seconds"] <= limit, (
                f"{name}: kernel took {fam['kernel_seconds']:.4f}s, over the "
                f"baseline-derived limit {limit:.4f}s "
                f"(baseline {ref['kernel_seconds']:.4f}s x scale "
                f"{scale:.2f} x factor {factor})"
            )


def test_array_vs_tuple_kernel(benchmark, emit, emit_json):
    """PR 7 gate: the structure-of-arrays kernel vs the tuple oracle.

    Byte-identical (cost, power) frontiers are asserted inside the
    runner; the ``hard`` label-heavy families must then beat the tuple
    kernel by ``REPRO_BENCH_MIN_ARRAY_SPEEDUP`` (default 3.0)."""
    families = benchmark.pedantic(_run_array_families, rounds=1, iterations=1)

    emit_json("pareto_array", {"families": families})
    rows = [
        (
            name,
            fam["n_nodes"],
            fam["n_modes"],
            fam["points"],
            fam["labels_created"],
            f"{fam['tuple_seconds'] * 1e3:.1f}",
            f"{fam['array_seconds'] * 1e3:.1f}",
            f"{fam['speedup']:.2f}x",
            "hard" if fam["hard"] else "",
        )
        for name, fam in families.items()
    ]
    table = format_table(
        (
            "family", "N", "M", "pts", "created", "tuple_ms", "array_ms",
            "speedup", "gate",
        ),
        rows,
    )
    emit(
        "pareto_array_kernel",
        f"{table}\n\nByte-identical frontiers on every family (asserted "
        "before timing).  'hard' families carry the array-speedup gate; "
        "diverse per-mode costs keep fronts wide so merge label work "
        "dominates — the regime the array kernel is built for.",
    )

    floor = float(os.environ.get("REPRO_BENCH_MIN_ARRAY_SPEEDUP", "3.0"))
    for name, fam in families.items():
        if fam["hard"]:
            assert fam["speedup"] >= floor, (
                f"{name}: array speedup {fam['speedup']:.2f}x fell below "
                f"the {floor:.1f}x floor (tuple {fam['tuple_seconds']:.4f}s, "
                f"array {fam['array_seconds']:.4f}s)"
            )
