"""Ablation 5 — access-policy hierarchy on paper workloads (extension).

Positions the paper's *closest* policy against the Upwards/Multiple
siblings of Benoit–Rehn-Sonigo–Robert (2008): how many replicas does each
policy need on the Experiment-1 tree family?  The theory guarantees
``Multiple <= Upwards <= Closest``; the bench quantifies the gaps.
Upwards is exact only on small instances (NP-hard), so the sweep uses
12-node trees and reports how often each inequality is strict.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core.exhaustive import exhaustive_min_replicas
from repro.exceptions import InfeasibleError
from repro.policies import multiple_min_replicas, upwards_min_replicas_exhaustive
from repro.tree.generators import paper_tree

N_TREES = 40


def _run():
    rng = np.random.default_rng(2018)
    rows = []
    strict_mu = strict_uc = 0
    solved = 0
    totals = {"multiple": 0, "upwards": 0, "closest": 0}
    for _ in range(N_TREES):
        tree = paper_tree(12, children_range=(2, 3), client_prob=0.8,
                          request_range=(1, 6), rng=rng)
        try:
            closest = exhaustive_min_replicas(tree, 10).n_replicas
            upwards = upwards_min_replicas_exhaustive(tree, 10).n_replicas
            multiple = multiple_min_replicas(tree, 10)
        except InfeasibleError:
            continue
        solved += 1
        totals["multiple"] += multiple
        totals["upwards"] += upwards
        totals["closest"] += closest
        strict_mu += multiple < upwards
        strict_uc += upwards < closest
    for policy in ("multiple", "upwards", "closest"):
        rows.append((policy, totals[policy] / max(solved, 1)))
    return rows, solved, strict_mu, strict_uc


def test_ablation_policy_hierarchy(benchmark, emit):
    rows, solved, strict_mu, strict_uc = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    means = {name: mean for name, mean in rows}

    assert solved > 0
    assert means["multiple"] <= means["upwards"] + 1e-9
    assert means["upwards"] <= means["closest"] + 1e-9

    table = format_table(("policy", "mean_min_replicas"), rows)
    emit(
        "ablation_policies",
        f"{table}\n\n{solved} feasible 12-node trees; Multiple < Upwards on "
        f"{strict_mu}, Upwards < Closest on {strict_uc} of them.\n"
        "The paper's closest policy pays a replica premium for its locality "
        "guarantee; splitting (Multiple) buys the most freedom.",
    )
