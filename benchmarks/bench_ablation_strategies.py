"""Ablation 3 — lazy vs periodic vs systematic update timing (§6).

The conclusion frames dynamic replica management as a lazy/systematic
trade-off governed by the variation amplitude.  This bench runs both
regimes the paper hypothesises about:

* small-amplitude random-walk demand — lazy should pay far fewer update
  charges at a modest server-count penalty;
* hotspot demand shifts — placements invalidate quickly, the policies
  converge and systematic's tight tracking wins.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core.costs import UniformCostModel
from repro.dynamics import (
    DPUpdateStrategy,
    HotspotShift,
    LazyPolicy,
    PeriodicPolicy,
    RandomWalkRequests,
    SystematicPolicy,
    compare_policies,
    generate_workloads,
)
from repro.tree.generators import paper_tree

N_TREES = 8
STEPS = 20
PRICING = UniformCostModel(create=0.5, delete=0.05)
POLICIES = (SystematicPolicy(), PeriodicPolicy(period=5), LazyPolicy())


def _run():
    rows = []
    for label, evolution in (
        ("random-walk", RandomWalkRequests(step=1)),
        ("hotspot", HotspotShift(hot_range=(4, 6), cold_range=(1, 2))),
    ):
        total = {p.name: [0.0, 0.0, 0] for p in POLICIES}
        rng = np.random.default_rng(2016)
        for _ in range(N_TREES):
            tree = paper_tree(60, children_range=(3, 5), client_prob=0.7,
                              request_range=(1, 4), rng=rng)
            workloads = generate_workloads(tree, STEPS, evolution, rng=rng)
            runs = compare_policies(
                workloads, 10, list(POLICIES), DPUpdateStrategy(),
                cost_model=PRICING,
            )
            for name, run in runs.items():
                total[name][0] += run.total_cost
                total[name][1] += run.mean_servers
                total[name][2] += run.updates
        for name, (cost, servers, updates) in total.items():
            rows.append(
                (label, name, cost / N_TREES, servers / N_TREES,
                 updates / N_TREES)
            )
    return rows


def test_ablation_update_strategies(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    walk = {r[1]: r for r in rows if r[0] == "random-walk"}
    hot = {r[1]: r for r in rows if r[0] == "hotspot"}

    # Lazy always updates the least; systematic the most.
    for regime in (walk, hot):
        assert regime["lazy"][4] <= regime["periodic"][4] <= regime["systematic"][4]
        assert 1.0 <= regime["lazy"][4] <= float(STEPS)
    # Systematic tracks demand: an optimal re-placement never needs more
    # servers than a kept stale-but-valid placement.
    for regime in (walk, hot):
        assert regime["systematic"][3] <= regime["lazy"][3] + 1e-9

    table = format_table(
        ("workload", "policy", "mean_total_cost", "mean_servers", "mean_updates"),
        rows,
    )
    emit(
        "ablation_strategies",
        f"{table}\n\n{N_TREES} trees x {STEPS} steps, optimal DP updates, "
        "pricing create=0.5 delete=0.05 (operating cost 1/server/step).",
    )
