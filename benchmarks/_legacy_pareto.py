"""Frozen copy of the pre-rewrite Pareto-DP kernel (measurement baseline).

This is the object-label, materialise-then-prune kernel that shipped
before the array-based dominance-aware rewrite of
:mod:`repro.power.dp_power_pareto` — one ``_Label`` object per partial
solution, the full ``|acc| × |options|`` cross product allocated before
pruning, and a fresh sort per flow bucket per merge.  It exists solely so
``bench_pareto_kernel.py`` can measure the rewrite's speedup against the
real predecessor on the same process and hardware; it is not part of the
library and returns bare ``(cost, power)`` pairs only.

Do not "improve" this file: its value is being a faithful baseline.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.costs import ModalCostModel
from repro.exceptions import InfeasibleError
from repro.power.modes import PowerModel
from repro.tree.model import Tree

_EPS = 1e-9


class _Label:
    __slots__ = ("flow", "g", "p", "back")

    def __init__(self, flow: int, g: float, p: float, back: tuple | None):
        self.flow = flow
        self.g = g
        self.p = p
        self.back = back


def _prune(labels: list[_Label]) -> list[_Label]:
    if len(labels) <= 1:
        return labels
    labels.sort(key=lambda L: (L.g, L.p))
    kept: list[_Label] = []
    best_p = float("inf")
    for lab in labels:
        if lab.p < best_p - _EPS:
            kept.append(lab)
            best_p = lab.p
    return kept


def legacy_power_frontier_pairs(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
) -> list[tuple[float, float]]:
    """The old kernel, verbatim modulo returning pairs instead of points."""
    modes = power_model.modes
    pre = dict(preexisting_modes or {})
    w_max = modes.max_capacity

    def place_price(node: int, flow: int) -> tuple[float, float, int]:
        m = modes.mode_of(flow)
        if node in pre:
            old = pre[node]
            dg = 1.0 + cost_model.changed[old][m] - cost_model.delete[old]
        else:
            dg = 1.0 + cost_model.create[m]
        return dg, power_model.mode_power(m), m

    tables: list[dict[int, list[_Label]] | None] = [None] * tree.n_nodes

    for v in tree.post_order():
        j = int(v)
        load = tree.client_load(j)
        if load > w_max:
            raise InfeasibleError(
                f"direct client load {load} at node {j} exceeds W={w_max}",
                node=j,
            )
        acc: dict[int, list[_Label]] = {load: [_Label(load, 0.0, 0.0, None)]}
        for child in tree.children(j):
            child_table = tables[child]
            assert child_table is not None
            tables[child] = None
            options: dict[int, list[_Label]] = {}
            for f, labs in child_table.items():
                dg, dp, m = place_price(child, f)
                for lab in labs:
                    options.setdefault(f, []).append(
                        _Label(f, lab.g, lab.p, ("pass", lab))
                    )
                    options.setdefault(0, []).append(
                        _Label(0, lab.g + dg, lab.p + dp, ("place", lab, child, m))
                    )
            for f in options:
                options[f] = _prune(options[f])
            merged: dict[int, list[_Label]] = {}
            for f1, labs1 in acc.items():
                for f2, labs2 in options.items():
                    f = f1 + f2
                    if f > w_max:
                        continue
                    bucket = merged.setdefault(f, [])
                    for l1 in labs1:
                        for l2 in labs2:
                            bucket.append(
                                _Label(f, l1.g + l2.g, l1.p + l2.p, ("merge", l1, l2))
                            )
            for f in merged:
                merged[f] = _prune(merged[f])
            acc = merged
        tables[j] = acc

    root = tree.root
    root_table = tables[root]
    assert root_table is not None
    delete_constant = sum(cost_model.delete[old] for old in pre.values())

    candidates: list[tuple[float, float]] = []
    for f, labs in root_table.items():
        for lab in labs:
            if f == 0:
                candidates.append(
                    (round(lab.g + delete_constant, 9), round(lab.p, 9))
                )
                if root in pre:
                    dg, dp, _ = place_price(root, 0)
                    candidates.append(
                        (round(lab.g + dg + delete_constant, 9), round(lab.p + dp, 9))
                    )
            else:
                dg, dp, _ = place_price(root, f)
                candidates.append(
                    (round(lab.g + dg + delete_constant, 9), round(lab.p + dp, 9))
                )
    if not candidates:
        raise InfeasibleError("no valid replica placement exists")

    candidates.sort()
    frontier: list[tuple[float, float]] = []
    best_power = float("inf")
    for cost, power in candidates:
        if power < best_power - _EPS:
            frontier.append((cost, power))
            best_power = power
    return frontier
