"""Ablation 1 — Pareto-label DP vs the paper-faithful count-vector DP.

DESIGN.md argues the Pareto engine is exact; the tests prove equality of
frontiers.  This bench quantifies why the engineering matters: runtime of
both solvers on the same instances, and the state-space sizes involved.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.core.costs import ModalCostModel
from repro.power.dp_power_counts import power_frontier_counts
from repro.power.dp_power_pareto import power_frontier
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting_modes

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
SIZES = (10, 20, 30, 45)


def _run_both():
    rows = []
    rng = np.random.default_rng(77)
    for n in SIZES:
        tree = paper_tree(n, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, min(3, n // 5), 2, rng=rng, mode=1)
        t0 = time.perf_counter()
        par = power_frontier(tree, PM, CM, pre).pairs()
        t_par = time.perf_counter() - t0
        t0 = time.perf_counter()
        cnt = power_frontier_counts(tree, PM, CM, pre)
        t_cnt = time.perf_counter() - t0
        agree = len(par) == len(cnt) and all(
            abs(a[0] - b[0]) < 1e-6 and abs(a[1] - b[1]) < 1e-6
            for a, b in zip(par, cnt, strict=True)
        )
        rows.append((n, t_par, t_cnt, t_cnt / max(t_par, 1e-9), agree))
    return rows


def test_ablation_pareto_vs_counts(benchmark, emit):
    rows = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    assert all(agree for *_, agree in rows)
    # The count-vector DP must be measurably slower at the largest size.
    assert rows[-1][2] > rows[-1][1]

    table = format_table(
        ("N", "pareto_s", "counts_s", "slowdown", "frontiers_equal"),
        rows,
        float_fmt="{:.4f}",
    )
    emit(
        "ablation_pareto",
        f"{table}\n\nIdentical frontiers; the Theorem-3 count-vector state "
        "space pays an increasing factor over Pareto labels.",
    )
