"""Figure 6 — Experiment 1 on high trees (2–4 children per node).

Same protocol as Figure 4; the paper notes "the shape of the trees does not
seem to modify the general behaviour".  The bench asserts exactly that: the
dominance pattern survives on tall skinny trees.
"""

from __future__ import annotations

from repro.analysis import format_table, line_plot
from repro.experiments import Exp1Config, run_experiment1

CONFIG = Exp1Config(
    n_trees=30, e_values=tuple(range(0, 101, 10)), seed=2011
).high_trees()


def test_fig6_reuse_high_trees(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment1, args=(CONFIG,), rounds=1, iterations=1
    )

    assert result.count_mismatches == 0
    for dp, gr in zip(result.dp_reuse, result.gr_reuse, strict=True):
        assert dp.mean >= gr.mean - 1e-9
    assert result.mean_gap > 0.5

    chart = line_plot(
        result.series(),
        title="Figure 6: reused pre-existing servers vs E (high trees)",
        xlabel="number of pre-existing servers E",
        ylabel="mean reused",
    )
    table = format_table(
        ("E", "DP_reuse", "GR_reuse", "gap(DP-GR)"), result.rows()
    )
    emit(
        "fig6_reuse_high",
        f"{chart}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, children 2-4\n"
        f"mean gap = {result.mean_gap:.2f} servers, max gap = {result.max_gap}",
    )
