"""Figure 4 — Experiment 1 on fat trees: reused servers vs E.

Paper series: mean number of pre-existing servers reused by DP and GR over
200 trees with N=100, E ∈ 0..100.  Headline: DP reuses on average 4.13 more
servers than GR (up to 15 more), while both place the same minimal number
of replicas.  The bench runs 30 trees with an E-step of 10 (scale recorded
in EXPERIMENTS.md); the curve shape and the DP ≥ GR dominance are asserted.
"""

from __future__ import annotations

from repro.analysis import format_table, line_plot
from repro.experiments import Exp1Config, run_experiment1

CONFIG = Exp1Config(n_trees=30, e_values=tuple(range(0, 101, 10)), seed=2011)


def test_fig4_reuse_fat_trees(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment1, args=(CONFIG,), rounds=1, iterations=1
    )

    # Paper shape: identical replica counts, DP reuse dominates GR, gap
    # vanishes at the extremes E=0 and E=N.
    assert result.count_mismatches == 0
    for dp, gr in zip(result.dp_reuse, result.gr_reuse, strict=True):
        assert dp.mean >= gr.mean - 1e-9
    assert result.gap[0].mean == 0.0
    assert result.gap[-1].mean == 0.0
    assert result.mean_gap > 0.5  # strictly better in between
    assert result.max_gap >= 5

    chart = line_plot(
        result.series(),
        title="Figure 4: reused pre-existing servers vs E (fat trees)",
        xlabel="number of pre-existing servers E",
        ylabel="mean reused",
    )
    table = format_table(
        ("E", "DP_reuse", "GR_reuse", "gap(DP-GR)"), result.rows()
    )
    emit(
        "fig4_reuse_fat",
        f"{chart}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, N={CONFIG.n_nodes}, W={CONFIG.capacity}\n"
        f"mean gap = {result.mean_gap:.2f} servers (paper: 4.13), "
        f"max gap = {result.max_gap} (paper: 15)",
    )
