"""Ablation 2 — §6 future-work heuristics vs the optimal bi-criteria DP.

The conclusion proposes cheap heuristics that "perform some local
optimizations to better load-balance the number of requests per replica".
This bench measures, on the Figure-8 workload, how much of the DP's power
advantage the heuristics recover and at what runtime:

* GR           — the paper's baseline (capacity sweep);
* GR+reuse     — reuse-preferring tie-break;
* local search — hill climbing seeded by GR;
* DP           — the optimal frontier (reference).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.core.costs import ModalCostModel
from repro.power.dp_power_pareto import power_frontier
from repro.power.greedy_power import greedy_power_candidates
from repro.power.heuristics import local_search_power, reuse_aware_greedy_power
from repro.power.modes import PowerModel, ModeSet
from repro.tree.generators import paper_tree, random_preexisting_modes

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
N_TREES = 15
BOUNDS = (18.0, 22.0, 26.0, 30.0)


def _run():
    rng = np.random.default_rng(2015)
    sums = {name: 0.0 for name in ("DP", "GR", "GR+reuse", "local")}
    times = {name: 0.0 for name in sums}
    solved = {name: 0 for name in sums}
    for _ in range(N_TREES):
        tree = paper_tree(50, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, 5, 2, rng=rng, mode=1)
        t0 = time.perf_counter()
        frontier = power_frontier(tree, PM, CM, pre)
        times["DP"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        gr = greedy_power_candidates(tree, PM, CM, pre)
        times["GR"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        gr_reuse = reuse_aware_greedy_power(tree, PM, CM, pre)
        times["GR+reuse"] += time.perf_counter() - t0
        for bound in BOUNDS:
            dp_best = frontier.best_under_cost(bound)
            if dp_best is None:
                continue
            sums["DP"] += dp_best.power
            solved["DP"] += 1
            for name, cands in (("GR", gr), ("GR+reuse", gr_reuse)):
                best = cands.best_under_cost(bound)
                if best is not None:
                    sums[name] += best.power
                    solved[name] += 1
            t0 = time.perf_counter()
            ls = local_search_power(tree, PM, CM, bound, pre, max_rounds=30)
            times["local"] += time.perf_counter() - t0
            if ls is not None:
                sums["local"] += ls.power
                solved["local"] += 1
    rows = []
    dp_mean = sums["DP"] / max(solved["DP"], 1)
    for name in ("DP", "GR", "GR+reuse", "local"):
        mean_p = sums[name] / max(solved[name], 1)
        rows.append((name, solved[name], mean_p, mean_p / dp_mean, times[name]))
    return rows


def test_ablation_heuristics_vs_optimal(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}

    # The optimal DP lower-bounds every heuristic's mean power.
    for name in ("GR", "GR+reuse", "local"):
        assert by_name[name][3] >= 1.0 - 1e-9
    # Local search must close part of GR's gap to the optimum.
    assert by_name["local"][3] <= by_name["GR"][3] + 1e-9

    table = format_table(
        ("solver", "solved", "mean_power", "vs_DP", "total_seconds"),
        rows,
        float_fmt="{:.3f}",
    )
    emit(
        "ablation_heuristics",
        f"{table}\n\nFigure-8 workload, {N_TREES} trees x bounds {BOUNDS}; "
        "'vs_DP' is the mean-power ratio against the optimal frontier.",
    )
