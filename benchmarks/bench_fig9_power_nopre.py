"""Figure 9 — Experiment 3 without pre-existing replicas.

Paper observation: "For low bound costs the two curves are close together
because DP finds a solution if and only if GR finds a solution … and there
is no significant difference for other costs."  Without reuse to exploit,
the optimal DP's edge over GR nearly vanishes.
"""

from __future__ import annotations

from repro.analysis import format_table, line_plot
from repro.experiments import Exp3Config, run_experiment3

CONFIG = Exp3Config(n_trees=100, seed=2013).no_preexisting()


def test_fig9_power_no_preexisting(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment3, args=(CONFIG,), rounds=1, iterations=1
    )

    for dp, gr in zip(result.dp_inverse, result.gr_inverse, strict=True):
        assert dp.mean >= gr.mean - 1e-9
    # Paper: "DP finds a solution if and only if GR finds a solution" when
    # E = 0 — success rates must match at every bound (they diverge in
    # Figures 8/11 where reuse lets DP fit under tighter bounds).
    for dp_ok, gr_ok in zip(result.dp_success, result.gr_success, strict=True):
        assert dp_ok == gr_ok
    # "no significant difference for other costs": both curves reach the
    # unconstrained optimum at loose bounds.
    assert result.dp_inverse[-1].mean == 1.0
    assert result.gr_inverse[-1].mean == 1.0
    assert result.gr_over_dp[-1].mean == 1.0

    chart = line_plot(
        result.series(),
        title="Figure 9: normalised inverse power vs cost bound (no pre-existing)",
        xlabel="cost bound",
        ylabel="P_opt/P (0=no solution)",
    )
    table = format_table(
        ("bound", "DP_inv", "GR_inv", "DP_ok", "GR_ok", "GR/DP"),
        result.rows(),
    )
    emit(
        "fig9_power_nopre",
        f"{chart}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, E=0; DP and GR succeed on identical tree "
        "sets at every bound (the paper's iff) and coincide at loose "
        f"bounds; measured residual mid-range gap: peak mean GR/DP = "
        f"{result.peak_gr_overhead():.3f} (paper's Figure 9 shows "
        "near-coincident curves; see EXPERIMENTS.md).",
    )
