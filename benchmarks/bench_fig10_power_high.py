"""Figure 10 — Experiment 3 on high trees (2–4 children per node).

Paper observation: the DP advantage *widens* on high trees — "when the
bound cost is between 22 and 27, GR consumes up in average more than 40%
more power than DP, and 60% between 23 and 25".  Deeper trees give the
optimal algorithm more placement freedom than the greedy can exploit.
"""

from __future__ import annotations

from repro.analysis import format_table, line_plot
from repro.experiments import Exp3Config, run_experiment3

CONFIG = Exp3Config(n_trees=100, seed=2013).high_trees()


def test_fig10_power_high_trees(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment3, args=(CONFIG,), rounds=1, iterations=1
    )

    for dp, gr in zip(result.dp_inverse, result.gr_inverse, strict=True):
        assert dp.mean >= gr.mean - 1e-9
    assert result.dp_inverse[-1].mean == 1.0
    assert result.peak_gr_overhead() > 1.25

    chart = line_plot(
        result.series(),
        title="Figure 10: normalised inverse power vs cost bound (high trees)",
        xlabel="cost bound",
        ylabel="P_opt/P (0=no solution)",
    )
    table = format_table(
        ("bound", "DP_inv", "GR_inv", "DP_ok", "GR_ok", "GR/DP"),
        result.rows(),
    )
    emit(
        "fig10_power_high",
        f"{chart}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, children 2-4, E={CONFIG.n_preexisting}; "
        f"peak mean GR/DP power ratio = {result.peak_gr_overhead():.3f} "
        f"(paper: 1.4-1.6 mid-range)",
    )
