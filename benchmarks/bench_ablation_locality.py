"""Ablation 6 — what does optimal reuse cost in locality?

The closest policy exists so requests are served near the edge (§1).  The
DP maximises *reuse* among minimum-replica solutions while GR follows pure
flow greed; this bench measures whether that difference shows up in the
request-weighted client→server hop distance on the Experiment-1 workload.
Both algorithms place the same number of servers, so any locality gap is a
pure placement-quality effect.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.analysis.locality import locality_report
from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.tree.generators import paper_tree, random_preexisting

N_TREES = 25
E_VALUES = (0, 25, 50)
MINCOUNT = UniformCostModel(1e-4, 1e-5)


def _run():
    rng = np.random.default_rng(2019)
    rows = []
    for e in E_VALUES:
        dp_hops: list[float] = []
        gr_hops: list[float] = []
        dp_near: list[float] = []
        gr_near: list[float] = []
        for _ in range(N_TREES):
            tree = paper_tree(100, rng=rng)
            pre = random_preexisting(tree, e, rng=rng)
            gr = greedy_placement(tree, 10, preexisting=pre)
            dp = replica_update(tree, 10, pre, MINCOUNT)
            rep_gr = locality_report(tree, gr.replicas)
            rep_dp = locality_report(tree, dp.replicas)
            gr_hops.append(rep_gr.mean_hops)
            dp_hops.append(rep_dp.mean_hops)
            gr_near.append(rep_gr.fraction_within(1))
            dp_near.append(rep_dp.fraction_within(1))
        rows.append(
            (
                e,
                float(np.mean(dp_hops)),
                float(np.mean(gr_hops)),
                float(np.mean(dp_near)),
                float(np.mean(gr_near)),
            )
        )
    return rows


def test_ablation_locality(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Without pre-existing servers both algorithms place min-count
    # solutions of similar locality; hop distances stay small either way.
    for _, dp_mean, gr_mean, _, _ in rows:
        assert dp_mean < 3.0 and gr_mean < 3.0
    # Mean hops are non-negative and the within-1-hop fractions sane.
    for _, _, _, dp_near, gr_near in rows:
        assert 0.0 <= dp_near <= 1.0 and 0.0 <= gr_near <= 1.0

    table = format_table(
        ("E", "DP_mean_hops", "GR_mean_hops", "DP_within1", "GR_within1"),
        rows,
    )
    emit(
        "ablation_locality",
        f"{table}\n\n{N_TREES} fat trees (N=100), request-weighted hop "
        "distances; equal replica counts, so differences are placement "
        "quality only.",
    )
