"""Scalability — the §5.2 closing prose, measured.

Paper reference points (authors' implementation):

* cost-only DP: 500 nodes / 125 pre-existing in ~30 minutes;
* power DP, no pre-existing: 300 nodes in ~1 hour;
* power DP with pre-existing: 70 nodes / 10 pre-existing in ~1 hour.

This bench times the same three regimes at the same sizes.  Absolute times
are hardware/implementation-dependent (ours are orders of magnitude faster
thanks to subtree-bounded tables and Pareto pruning); the assertions only
pin feasibility at the paper's sizes.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import run_scaling


def test_scaling_paper_reference_sizes(benchmark, emit):
    points = benchmark.pedantic(
        run_scaling,
        kwargs=dict(
            cost_sizes=((100, 25), (200, 50), (500, 125)),
            power_nopre_sizes=(50, 100, 300),
            power_withpre_sizes=((50, 5), (70, 10), (100, 10)),
            seed=2014,
        ),
        rounds=1,
        iterations=1,
    )

    by_regime: dict[str, list] = {}
    for p in points:
        by_regime.setdefault(p.regime, []).append(p)

    # Every paper reference size must complete (well under its hour budget).
    assert all(p.seconds < 300 for p in points)
    # Times grow with instance size within each regime.
    for regime, pts in by_regime.items():
        secs = [p.seconds for p in pts]
        assert secs[0] <= secs[-1] * 1.5 + 0.1, regime

    table = format_table(
        ("regime", "N", "E", "seconds", "detail"),
        [(p.regime, p.n_nodes, p.n_preexisting, p.seconds, p.detail) for p in points],
        float_fmt="{:.4f}",
    )
    emit(
        "scaling",
        f"{table}\n\npaper references: cost 500/125 ~30min, power-nopre 300 "
        "~1h, power-withpre 70/10 ~1h (authors' implementation)",
    )
