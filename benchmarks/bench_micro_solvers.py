"""Micro-benchmarks: per-solver latency distributions on fixed instances.

Unlike the figure benches (single-shot experiment campaigns), these run
each solver many times under pytest-benchmark so regressions in the hot
paths (min-plus merges, label pruning, greedy flows) show up as
statistically meaningful timing shifts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.core.dp_nopre import dp_nopre_placement
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.power.dp_power_pareto import power_frontier
from repro.power.greedy_power import greedy_power_candidates
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting, random_preexisting_modes

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
PM3 = PowerModel(ModeSet((3, 6, 12)), static_power=5.0, alpha=2.0)
CM3 = ModalCostModel.uniform(3, create=0.1, delete=0.01, changed=0.001)
MINCOUNT = UniformCostModel(1e-4, 1e-5)


@pytest.fixture(scope="module")
def fat100():
    return paper_tree(100, rng=np.random.default_rng(42))


@pytest.fixture(scope="module")
def fat100_pre(fat100):
    return random_preexisting(fat100, 25, rng=np.random.default_rng(43))


@pytest.fixture(scope="module")
def power50():
    return paper_tree(50, request_range=(1, 5), rng=np.random.default_rng(44))


@pytest.fixture(scope="module")
def power50_pre(power50):
    return random_preexisting_modes(
        power50, 5, 2, rng=np.random.default_rng(45), mode=1
    )


def test_micro_greedy_n100(benchmark, fat100):
    result = benchmark(greedy_placement, fat100, 10)
    assert result.n_replicas > 0


def test_micro_dp_nopre_n100(benchmark, fat100):
    result = benchmark(dp_nopre_placement, fat100, 10)
    assert result.n_replicas > 0


def test_micro_dp_withpre_n100_e25(benchmark, fat100, fat100_pre):
    result = benchmark(replica_update, fat100, 10, fat100_pre, MINCOUNT)
    assert result.n_replicas > 0


def test_micro_power_frontier_n50_e5(benchmark, power50, power50_pre):
    frontier = benchmark(power_frontier, power50, PM, CM, power50_pre)
    assert len(frontier) > 0


@pytest.fixture(scope="module")
def power100_three_mode():
    return paper_tree(100, request_range=(1, 6), rng=np.random.default_rng(46))


@pytest.fixture(scope="module")
def power100_pre(power100_three_mode):
    return random_preexisting_modes(
        power100_three_mode, 10, 3, rng=np.random.default_rng(47), mode=1
    )


def test_micro_power_frontier_three_mode_n100(
    benchmark, power100_three_mode, power100_pre
):
    # Wider mode set -> wider fronts: exercises the dominance-aware merge
    # where label work (not traversal skeleton) dominates the runtime.
    frontier = benchmark(
        power_frontier, power100_three_mode, PM3, CM3, power100_pre
    )
    assert len(frontier) > 0


def test_micro_greedy_power_sweep_n50(benchmark, power50, power50_pre):
    cands = benchmark(greedy_power_candidates, power50, PM, CM, power50_pre)
    assert len(cands.candidates) > 0
