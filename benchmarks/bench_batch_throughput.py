"""Batch serving throughput: canonical dedupe + cache vs the naive loop.

Serving traffic is duplicate-heavy (the same tree families are re-solved
across request vectors and relabellings), so the batch layer's win scales
with the duplicate rate.  This bench measures MinCost-WithPre solves/sec
at 0%, 50% and 90% duplicates — the duplicates are *relabelled isomorphic
copies*, so the canonical hashing does real work — and asserts the
acceptance floor: >= 5x over the per-instance loop at 90% duplicates.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.batch import ResultCache, random_batch, solve_batch
from repro.core.dp_withpre import replica_update

N_INSTANCES = 40
N_NODES = 120
N_PRE = 30
RATES = (0.0, 0.5, 0.9)
SEED = 2011
# Acceptance floor for the 90%-duplicates speedup.  Locally this is a hard
# 5x; CI smoke runs on noisy shared runners and relaxes it via the env var
# (a wall-clock ratio on a throttled VM is not a code regression signal).
MIN_SPEEDUP_90 = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


def _make_batch(rate: float):
    return random_batch(
        N_INSTANCES,
        duplicate_rate=rate,
        n_nodes=N_NODES,
        n_preexisting=N_PRE,
        rng=np.random.default_rng(SEED),
    )


def _naive_loop(batch):
    return [
        replica_update(i.tree, i.capacity, i.preexisting, i.cost_model)
        for i in batch
    ]


def _timed(fn, repeats: int = 3):
    """Best-of-``repeats`` wall time (noise on shared machines is one-sided)."""
    best = None
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return out, best


def test_batch_throughput_vs_naive(emit, emit_json):
    rows = []
    speedups: dict[float, float] = {}
    series: dict[str, dict] = {}
    for rate in RATES:
        batch = _make_batch(rate)
        naive, t_naive = _timed(lambda: _naive_loop(batch))

        # Fresh cache per repeat: we measure cold-batch throughput, where
        # only *within-batch* dedupe helps (warm-cache reuse is covered by
        # test_warm_cache_is_solve_free).
        last_cache: list[ResultCache] = []

        def _run_batch():
            last_cache[:] = [ResultCache(max_entries=256)]
            return solve_batch(batch, solver="dp", cache=last_cache[0])

        batched, t_batch = _timed(_run_batch)
        cache = last_cache[0]

        # The batch path must be *exact*: same optimal cost per instance.
        for a, b in zip(batched, naive, strict=True):
            assert a.cost == pytest.approx(b.cost)
            assert a.n_replicas == b.n_replicas
        stats = cache.stats
        assert stats.unique_solved == stats.misses
        assert stats.duplicates_folded == N_INSTANCES - (
            stats.hits + stats.misses
        )

        speedups[rate] = t_naive / t_batch
        series[f"{rate:.2f}"] = {
            "unique_solved": stats.unique_solved,
            "duplicates_folded": stats.duplicates_folded,
            "naive_seconds": t_naive,
            "batch_seconds": t_batch,
            "speedup": speedups[rate],
        }
        rows.append(
            (
                f"{rate:.0%}",
                stats.unique_solved,
                stats.duplicates_folded,
                f"{N_INSTANCES / t_naive:.0f}",
                f"{N_INSTANCES / t_batch:.0f}",
                f"{speedups[rate]:.1f}x",
            )
        )

    table = format_table(
        ("dup_rate", "unique", "folded", "naive_sps", "batch_sps", "speedup"),
        rows,
    )
    emit(
        "batch_throughput",
        f"{table}\n\nbatch={N_INSTANCES} instances, N={N_NODES}, "
        f"E={N_PRE}, solver=dp (MinCost-WithPre)\n"
        f"acceptance: speedup at 90% duplicates >= {MIN_SPEEDUP_90:.0f}x "
        f"(measured {speedups[0.9]:.1f}x)",
    )
    emit_json(
        "batch",
        {
            "n_instances": N_INSTANCES,
            "n_nodes": N_NODES,
            "solver": "dp",
            "min_speedup_90": MIN_SPEEDUP_90,
            "rates": series,
        },
    )
    assert speedups[0.9] >= MIN_SPEEDUP_90


def test_micro_solve_batch_90dup(benchmark):
    batch = _make_batch(0.9)
    result = benchmark.pedantic(
        lambda: solve_batch(batch, solver="dp", cache=ResultCache(256)),
        rounds=1,
        iterations=1,
    )
    assert len(result) == N_INSTANCES


def test_warm_cache_is_solve_free():
    batch = _make_batch(0.9)
    cache = ResultCache(max_entries=256)
    solve_batch(batch, solver="dp", cache=cache)
    solved_cold = cache.stats.unique_solved
    solve_batch(batch, solver="dp", cache=cache)
    assert cache.stats.unique_solved == solved_cold  # second pass: all hits
    assert cache.stats.hit_rate > 0.0
