"""Figure 7 — Experiment 2 on high trees (2–4 children per node).

Same protocol as Figure 5 on tall skinny trees; the paper reports the same
qualitative behaviour.
"""

from __future__ import annotations

from repro.analysis import bar_plot, format_table, line_plot
from repro.experiments import Exp2Config, run_experiment2

CONFIG = Exp2Config(n_trees=20, seed=2012).high_trees()


def test_fig7_dynamic_high_trees(benchmark, emit):
    result = benchmark.pedantic(
        run_experiment2, args=(CONFIG,), rounds=1, iterations=1
    )

    assert result.count_mismatches == 0
    assert result.dp_cumulative[-1].mean >= result.gr_cumulative[-1].mean

    left = line_plot(
        result.series(),
        title="Figure 7 (left): cumulative reused servers (high trees)",
        xlabel="update step",
        ylabel="partial sum of reused servers",
    )
    right = bar_plot(
        result.gap_histogram,
        title="Figure 7 (right): mean #steps at each (DP reuse - GR reuse)",
        xlabel="(reused in DP) - (reused in GR)",
    )
    table = format_table(("step", "DP_cumulative", "GR_cumulative"), result.rows())
    emit(
        "fig7_dynamic_high",
        f"{left}\n\n{right}\n\n{table}\n\n"
        f"trees={CONFIG.n_trees}, steps={CONFIG.n_steps}, children 2-4; "
        f"final cumulative reuse DP={result.dp_cumulative[-1].mean:.1f} "
        f"GR={result.gr_cumulative[-1].mean:.1f}",
    )
