"""Incremental delta re-solve vs cold solve (PR 8 gate).

A live session holding solved per-subtree fronts answers a localized
delta by relabelling only the dirty root path and serving every
untouched subtree from the front store, so the per-delta latency must be
a small fraction of a cold solve.  The runner replays single-client
deltas (and a subtree-flip family) on paper-generator trees, asserting
byte-identical frontiers against a cold solve *before* timing, then
gates the 500-node single-client-delta family on
``REPRO_BENCH_MIN_INCREMENTAL_SPEEDUP`` (default 5.0) — cold median
over per-delta median.

Results land in ``benchmarks/results/BENCH_incremental.json`` for the
nightly digest.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.analysis import format_table
from repro.core.costs import ModalCostModel
from repro.dynamics import MigrateSubtree, SessionState, SetRequests
from repro.power.kernels import KERNELS
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree

PM = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
CM = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)

#: family -> (n_nodes, rng seed, deltas replayed, delta family, gated?)
FAMILIES = {
    "client_200": dict(n_nodes=200, seed=11, deltas=12, kind="client", hard=False),
    "client_500": dict(n_nodes=500, seed=7, deltas=20, kind="client", hard=True),
    "migrate_500": dict(n_nodes=500, seed=7, deltas=12, kind="migrate", hard=False),
}


def _deepest_client(tree) -> int:
    """Index of a client hanging as deep as possible (most localized)."""
    return max(
        range(len(tree.clients)),
        key=lambda i: (tree.depth(tree.clients[i].node), -i),
    )


def _flip_node(tree) -> tuple[int, int, int]:
    """A depth>=2 node plus its parent and grandparent, for migrate flips."""
    v = max(range(tree.n_nodes), key=lambda u: (tree.depth(u), -u))
    p = tree.parents[v]
    return v, p, tree.parents[p]


def _deltas_for(kind: str, tree, step: int):
    if kind == "client":
        idx = _deepest_client(tree)
        return [SetRequests(idx, 1 + (step % 4))]
    v, p, g = _flip_node(tree)
    # Flip the subtree between its parent and grandparent; after the
    # apply, tree.parents[v] alternates, so the next step flips back.
    return [MigrateSubtree(v, g if tree.parents[v] == p else p)]


def _run_families() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for name, cfg in FAMILIES.items():
        tree = paper_tree(cfg["n_nodes"], rng=cfg["seed"])
        state = SessionState(tree, PM, CM, kernel="array")
        t0 = time.perf_counter()
        state.frontier()
        first_cold = time.perf_counter() - t0
        delta_times: list[float] = []
        cold_times: list[float] = []
        reused = invalidated = 0
        for step in range(cfg["deltas"]):
            deltas = _deltas_for(cfg["kind"], state.tree, step)
            t0 = time.perf_counter()
            result = state.apply(deltas)
            delta_times.append(time.perf_counter() - t0)
            reused += result.fronts_reused
            invalidated += result.fronts_invalidated
            t0 = time.perf_counter()
            cold = KERNELS["array"](state.tree, PM, CM, {})
            cold_times.append(time.perf_counter() - t0)
            # Byte-identity before any timing claim.
            assert result.frontier.pairs() == cold.pairs()
        state.close()
        delta_med = statistics.median(delta_times)
        cold_med = statistics.median(cold_times)
        out[name] = {
            "n_nodes": cfg["n_nodes"],
            "kind": cfg["kind"],
            "deltas": cfg["deltas"],
            "first_cold_seconds": first_cold,
            "cold_median_seconds": cold_med,
            "delta_median_seconds": delta_med,
            "speedup": cold_med / delta_med,
            "fronts_reused": reused,
            "fronts_invalidated": invalidated,
            "reuse_rate": reused / (reused + invalidated),
            "hard": cfg["hard"],
        }
    return out


def test_incremental_vs_cold(benchmark, emit, emit_json):
    """PR 8 gate: per-delta re-solve vs cold solve on localized churn.

    Byte-identical frontiers are asserted inside the runner for every
    replayed delta; the 500-node single-client family must then beat a
    cold solve by ``REPRO_BENCH_MIN_INCREMENTAL_SPEEDUP`` (default 5.0).
    """
    families = benchmark.pedantic(_run_families, rounds=1, iterations=1)

    emit_json("incremental", {"families": families})
    rows = [
        (
            name,
            fam["n_nodes"],
            fam["kind"],
            fam["deltas"],
            f"{fam['cold_median_seconds'] * 1e3:.2f}",
            f"{fam['delta_median_seconds'] * 1e3:.2f}",
            f"{fam['speedup']:.1f}x",
            f"{fam['reuse_rate']:.2f}",
            "hard" if fam["hard"] else "",
        )
        for name, fam in families.items()
    ]
    table = format_table(
        (
            "family", "N", "delta", "steps", "cold_ms", "delta_ms",
            "speedup", "reuse", "gate",
        ),
        rows,
    )
    emit(
        "incremental",
        f"{table}\n\nByte-identical frontiers on every replayed delta "
        "(asserted before timing).  'hard' carries the per-delta speedup "
        "gate: single-client churn on a 500-node tree touches one root "
        "path, so almost every subtree front is served from the store.",
    )

    floor = float(
        os.environ.get("REPRO_BENCH_MIN_INCREMENTAL_SPEEDUP", "5.0")
    )
    for name, fam in families.items():
        if fam["hard"]:
            assert fam["speedup"] >= floor, (
                f"{name}: delta re-solve speedup {fam['speedup']:.2f}x fell "
                f"below the {floor:.1f}x floor (cold "
                f"{fam['cold_median_seconds']:.4f}s, delta "
                f"{fam['delta_median_seconds']:.4f}s)"
            )
        # Localized churn must mostly hit the store, gated or not.
        assert fam["reuse_rate"] >= 0.5, (
            f"{name}: reuse rate {fam['reuse_rate']:.2f} — the store is "
            "not answering untouched subtrees"
        )
