#!/usr/bin/env python
"""Theorem 2, live: deciding 2-Partition with the MinPower solver.

The paper proves MinPower NP-complete by reduction from 2-Partition
(§4.2, Figure 3).  This demo makes the proof executable:

1. build the gadget tree for a concrete instance — root client with
   ``K + (S/2)·X`` requests, branches ``A_i → B_i`` carrying ``a_i·X`` and
   ``K`` requests, and ``n+2`` modes;
2. run the exact MinPower solver on it;
3. read the balanced partition straight out of the optimal placement
   (``i ∈ I`` iff the replica sits on ``A_i`` rather than ``B_i``) and
   check the power lands under the paper's ``P_max``.

Also shows an unsatisfiable instance staying *above* ``P_max``.

Run: ``python examples/np_hardness_demo.py``
"""

from __future__ import annotations

from repro.core.costs import ModalCostModel
from repro.power import (
    build_reduction,
    min_power,
    partition_from_placement,
    solve_two_partition_via_minpower,
    two_partition_reference,
)


def demo(values: list[int]) -> None:
    total = sum(values)
    print(f"\n2-Partition instance a = {values} (S = {total}, target {total // 2})")
    red = build_reduction(values)
    print(f"  gadget: {red.tree.n_nodes} internal nodes, "
          f"{red.power_model.modes.n_modes} modes, "
          f"P_max = {red.p_max:,.3f}")
    free = ModalCostModel.uniform(red.power_model.modes.n_modes,
                                  create=0.0, delete=0.0, changed=0.0)
    opt = min_power(red.tree, red.power_model, free)
    verdict = "<=" if opt.power <= red.p_max + 1e-6 else ">"
    print(f"  MinPower optimum = {opt.power:,.3f}  ({verdict} P_max)")
    if opt.power <= red.p_max + 1e-6:
        subset = partition_from_placement(red, opt.server_modes)
        items = sorted(values[i] for i in subset)
        print(f"  placement reads off I = {sorted(subset)}  "
              f"(items {items}, sum {sum(items)}) -> balanced!")
    else:
        print("  no placement fits the power budget -> instance unsatisfiable")
    ref = two_partition_reference(values)
    print(f"  subset-sum reference agrees: "
          f"{'satisfiable' if ref is not None else 'unsatisfiable'}")


def main() -> None:
    print("Theorem 2 (NP-completeness of MinPower) as a working program")
    demo([3, 5, 4, 6, 2, 4])   # satisfiable: e.g. {3,5,4} vs {6,2,4}
    demo([2, 2, 2, 2, 4, 10])  # unsatisfiable: every item even, target 11 odd
    answer = solve_two_partition_via_minpower([7, 9, 4, 4, 2, 6])
    print(f"\none-call API: solve_two_partition_via_minpower([7,9,4,4,2,6]) "
          f"-> {sorted(answer) if answer else None}")


if __name__ == "__main__":
    main()
