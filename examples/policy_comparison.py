#!/usr/bin/env python
"""Access policies head-to-head: Closest vs Upwards vs Multiple.

The paper fixes the *closest* policy (§2.1); its companion work (Benoit,
Rehn-Sonigo, Robert 2008 — reference [2]) studies two relaxations.  This
example makes the trade-off concrete on one small content-delivery tree:

* **Closest** — requests stop at the first replica going up (best
  locality, most replicas);
* **Upwards** — any single ancestor may serve a client (NP-hard to even
  check a placement);
* **Multiple** — requests may split across ancestors (pure flow problem,
  fewest replicas).

Run: ``python examples/policy_comparison.py``
"""

from __future__ import annotations

from repro.analysis import locality_report, render_tree
from repro.core.exhaustive import exhaustive_min_replicas
from repro.exceptions import InfeasibleError
from repro.policies import (
    multiple_feasible,
    multiple_placement,
    upwards_min_replicas_exhaustive,
)
from repro.tree.builders import TreeBuilder

CAPACITY = 10


def build_tree():
    """Two regions; one runs hot (9 + 8 requests), one is quiet."""
    b = TreeBuilder()
    root = b.add_root()
    hot, quiet = b.add_nodes(root, 2)
    hot_a = b.add_node(hot)
    hot_b = b.add_node(hot)
    b.add_client(hot_a, 9)
    b.add_client(hot_b, 8)
    b.add_client(quiet, 3)
    b.add_client(root, 2)
    return b.build()


def main() -> None:
    tree = build_tree()
    print("the instance (W = 10):")
    print(render_tree(tree))
    print()

    rows = []
    try:
        closest = exhaustive_min_replicas(tree, CAPACITY)
        rows.append(("closest", closest.n_replicas, sorted(closest.replicas)))
    except InfeasibleError:
        rows.append(("closest", None, []))
    upwards = upwards_min_replicas_exhaustive(tree, CAPACITY)
    rows.append(("upwards", upwards.n_replicas, sorted(upwards.replicas)))
    multiple = multiple_placement(tree, CAPACITY)
    rows.append(("multiple", multiple.n_replicas, sorted(multiple.replicas)))

    print(f"{'policy':<10} {'min replicas':>12}   placement")
    for name, count, placement in rows:
        print(f"{name:<10} {str(count):>12}   {placement}")

    print("\nwhy they differ:")
    ok, loads = multiple_feasible(tree, multiple.replicas, CAPACITY)
    assert ok
    print(f"  multiple splits flows: witness loads {loads}")
    loc = locality_report(tree, rows[0][2])
    print(f"  closest keeps requests near the edge: mean hops "
          f"{loc.mean_hops:.2f}, {loc.fraction_within(1) * 100:.0f}% within "
          "one hop")
    print("\nThe hierarchy min(Multiple) <= min(Upwards) <= min(Closest) is "
          "proven in [2]; `benchmarks/bench_ablation_policies.py` measures "
          "the average gaps on the paper's random trees.")


if __name__ == "__main__":
    main()
