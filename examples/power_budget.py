#!/usr/bin/env python
"""Power budgeting: how many watts does a tighter budget cost?

Reproduces the Experiment-3 methodology (§5.2) on a single instance so the
numbers are easy to follow: an operator with 5 already-deployed full-speed
servers wants the least power-hungry reconfiguration that stays under a
reconfiguration budget, with two server speeds W₁=5 and W₂=10 and power
``P_i = W₁³/10 + W_i³``.

Three solvers are compared across budgets:

* the exact bi-criteria DP (paper §4.3, the Pareto engine);
* GR — the [19] greedy swept over capacities 5..10 (the paper's baseline);
* hill-climbing local search seeded by GR (§6 future work).

Run: ``python examples/power_budget.py``
"""

from __future__ import annotations

import numpy as np

from repro import ModalCostModel
from repro.power import (
    PowerModel,
    greedy_power_candidates,
    local_search_power,
    power_frontier,
)
from repro.tree.generators import paper_tree, random_preexisting_modes


def main() -> None:
    rng = np.random.default_rng(2013)
    tree = paper_tree(n_nodes=50, children_range=(6, 9), client_prob=0.5,
                      request_range=(1, 5), rng=rng)
    power_model = PowerModel.paper_experiment3()
    cost_model = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
    pre = random_preexisting_modes(tree, 5, 2, rng=rng, mode=1)
    print(f"instance: {tree.n_nodes} nodes, {tree.total_requests} requests, "
          f"pre-existing full-speed servers at {sorted(pre)}")

    frontier = power_frontier(tree, power_model, cost_model, pre)
    print(f"\nexact frontier ({len(frontier)} points):")
    for cost, power in frontier.pairs():
        print(f"  cost <= {cost:6.2f} -> power {power:8.1f}")

    greedy = greedy_power_candidates(tree, power_model, cost_model, pre)
    lo = int(frontier.min_cost())
    hi = int(frontier.pairs()[-1][0]) + 2
    print(f"\n{'budget':>7} {'DP power':>10} {'GR power':>10} {'local-search':>13}")
    for budget in range(lo, hi + 1):
        dp = frontier.best_under_cost(budget)
        gr = greedy.best_under_cost(budget)
        ls = local_search_power(tree, power_model, cost_model, budget, pre)
        cells = [
            f"{dp.power:10.1f}" if dp else f"{'-':>10}",
            f"{gr.power:10.1f}" if gr else f"{'-':>10}",
            f"{ls.power:13.1f}" if ls else f"{'-':>13}",
        ]
        print(f"{budget:>7} " + " ".join(cells))

    mid = (lo + hi) // 2
    dp = frontier.best_under_cost(mid)
    gr = greedy.best_under_cost(mid)
    if dp and gr:
        print(f"\nat budget {mid}: GR burns "
              f"{(gr.power / dp.power - 1) * 100:.1f}% more power than the "
              f"optimal placement (paper reports >30% mid-range on average)")
        slow = sum(1 for m in dp.server_modes.values() if m == 0)
        print(f"the optimum runs {slow}/{dp.n_replicas} servers at the slow "
              "mode — load-balancing requests instead of concentrating them")


if __name__ == "__main__":
    main()
