#!/usr/bin/env python
"""Walk through the paper's Figures 1 and 2 — why greedy choices fail.

Both running examples show that the right local decision depends on the
rest of the tree, which is the paper's motivation for dynamic programming.
This script solves each variant with the optimal algorithms and prints the
decisions next to the paper's prose.

Run: ``python examples/worked_examples.py``
"""

from __future__ import annotations

from repro import UniformCostModel, replica_update
from repro.experiments import figure1_example, figure2_example
from repro.power import min_power

NAMES = {0: "r", 1: "A", 2: "B", 3: "C"}


def fig1() -> None:
    print("Figure 1 — reuse the pre-existing server on B, or not?")
    print("  tree: r -> A -> {B(4 requests), C(7 requests)}, W=10, E={B}\n")
    for root_requests in (2, 4):
        ex = figure1_example(root_requests)
        res = replica_update(
            ex.tree, ex.capacity, ex.preexisting, UniformCostModel(0.1, 0.01)
        )
        placed = "+".join(NAMES[v] for v in sorted(res.replicas))
        kept = "keeps" if ex.node_b in res.replicas else "deletes"
        print(f"  root client = {root_requests}: optimum {{{placed}}} "
              f"-> {kept} B (cost {res.cost:.2f}, "
              f"reused {res.n_reused}, created {res.n_created})")
    print("  -> the decision at A flips with the root's demand; no greedy "
          "rule local to A can be optimal (§3.1).")


def fig2() -> None:
    print("\nFigure 2 — minimum power, modes {7, 10}, P = 10 + W²")
    print("  tree: r -> A -> {B(3 requests), C(7 requests)}\n")
    for root_requests in (4, 10):
        ex = figure2_example(root_requests)
        res = min_power(ex.tree, ex.power_model, ex.cost_model)
        placed = ", ".join(
            f"{NAMES[v]}@W{m + 1}" for v, m in sorted(res.server_modes.items())
        )
        through = "lets 3 requests through A" if ex.node_c in res.server_modes \
            and ex.node_a not in res.server_modes else "blocks all requests at A"
        print(f"  root client = {root_requests}: optimum [{placed}] "
              f"power = {res.power:.0f} -> {through}")
    print("  -> minimising traversing requests is no longer optimal with "
          "power; balancing loads across slow modes can win (§4.1).")


if __name__ == "__main__":
    fig1()
    fig2()
