#!/usr/bin/env python
"""Quickstart: place replicas in a tree, update them, and go power-aware.

Walks the three layers of the library on one small instance:

1. build a distribution tree and find a minimum-replica placement (GR and
   the classical DP agree on the count);
2. requests change — update the placement, reusing yesterday's servers
   where it is optimal to do so (MinCost-WithPre, the paper's Theorem 1);
3. switch on the power model and trade money for watts along the exact
   cost/power frontier (MinPower-BoundedCost, Theorem 3).

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    ModalCostModel,
    TreeBuilder,
    UniformCostModel,
    greedy_placement,
    replica_update,
)
from repro.dynamics import RedrawRequests
from repro.power import ModeSet, PowerModel, power_frontier

CAPACITY = 10


def build_tree():
    """A two-level distribution tree with nine clients."""
    b = TreeBuilder()
    root = b.add_root()
    regions = b.add_nodes(root, 3)
    for region in regions:
        for _ in range(2):
            site = b.add_node(region)
            b.add_client(site, requests=3)
    b.add_client(regions[0], requests=4)
    b.add_client(regions[1], requests=2)
    b.add_client(root, requests=3)
    return b.build()


def main() -> None:
    tree = build_tree()
    print(f"tree: {tree.n_nodes} nodes, {tree.n_clients} clients, "
          f"{tree.total_requests} requests, capacity W={CAPACITY}")

    # --- 1. initial placement (no servers exist yet) -------------------
    first = greedy_placement(tree, CAPACITY)
    print(f"\n[1] initial GR placement: {sorted(first.replicas)} "
          f"({first.n_replicas} servers)")

    # --- 2. the workload moves; update, reusing where optimal ----------
    evolved = RedrawRequests((1, 6)).evolve(tree, np.random.default_rng(7))
    updated = replica_update(
        evolved,
        CAPACITY,
        preexisting=first.replicas,
        cost_model=UniformCostModel(create=0.1, delete=0.01),
    )
    print(f"\n[2] after demand shift: {sorted(updated.replicas)}")
    print(f"    reused {updated.n_reused}, created {updated.n_created}, "
          f"deleted {updated.n_deleted}; cost = {updated.cost:.2f}")
    naive = greedy_placement(evolved, CAPACITY, preexisting=first.replicas)
    print(f"    (GR would reuse only {naive.n_reused} of its "
          f"{naive.n_replicas} servers)")

    # --- 3. power-aware: the exact cost/power frontier -----------------
    power_model = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
    cost_model = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)
    pre_modes = {v: 1 for v in first.replicas}  # yesterday's servers, full speed
    frontier = power_frontier(evolved, power_model, cost_model, pre_modes)
    print("\n[3] cost/power frontier (each extra euro buys fewer watts):")
    for cost, power in frontier.pairs():
        print(f"    cost <= {cost:6.2f}  ->  power {power:8.1f}")
    budget = (frontier.min_cost() + frontier.pairs()[-1][0]) / 2
    best = frontier.best_under_cost(budget)
    assert best is not None
    print(f"    with budget {budget:.2f}: {best.n_replicas} servers, "
          f"power {best.power:.1f}, modes "
          f"{ {v: power_model.modes.capacity(m) for v, m in sorted(best.server_modes.items())} }")


if __name__ == "__main__":
    main()
