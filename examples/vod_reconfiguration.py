#!/usr/bin/env python
"""VOD catalogue replication: a week of nightly reconfigurations.

The paper motivates replica placement with "electronic, ISP, or VOD service
delivery" (§1) and pictures updates as "database updates during the night"
(§6).  This example simulates a video-on-demand provider:

* a fixed regional distribution tree (the paper's key assumption);
* nightly demand shifts — weekday evenings are calm, a new release creates
  a regional hotspot at the weekend;
* every night the operator re-places replicas of the catalogue, paying for
  new servers and tear-downs, and compares three update policies:
  systematic (every night), lazy (only when yesterday's placement stops
  working) and periodic (twice a week), each driven by the optimal
  MinCost-WithPre update of Theorem 1.

Run: ``python examples/vod_reconfiguration.py``
"""

from __future__ import annotations

import numpy as np

from repro import UniformCostModel
from repro.dynamics import (
    DPUpdateStrategy,
    GreedyStrategy,
    HotspotShift,
    LazyPolicy,
    PeriodicPolicy,
    RandomWalkRequests,
    SystematicPolicy,
    compare_policies,
    run_session,
)
from repro.tree.generators import paper_tree

CAPACITY = 10
NIGHTS = 14


def make_week_workloads(tree, rng):
    """Alternate calm weekday drift with weekend hotspots."""
    calm = RandomWalkRequests(step=1, minimum=1, maximum=6)
    release = HotspotShift(hot_range=(4, 6), cold_range=(1, 2))
    workloads = [tree]
    for night in range(1, NIGHTS):
        model = release if night % 7 in (5, 6) else calm
        workloads.append(model.evolve(workloads[-1], rng))
    return workloads


def main() -> None:
    rng = np.random.default_rng(42)
    tree = paper_tree(n_nodes=60, children_range=(3, 5), client_prob=0.6,
                      request_range=(1, 4), rng=rng)
    print(f"distribution tree: {tree.n_nodes} nodes, {tree.n_clients} regions "
          f"with subscribers, capacity W={CAPACITY}")
    workloads = make_week_workloads(tree, rng)

    # --- optimal update vs greedy re-placement, night by night ---------
    session = run_session(
        workloads[0], CAPACITY, NIGHTS,
        RandomWalkRequests(step=1),
        {"optimal-update": DPUpdateStrategy(), "greedy": GreedyStrategy()},
        rng=np.random.default_rng(7),
    )
    dp_total = sum(r.cost for r in session.tracks["optimal-update"])
    gr_total = sum(r.cost for r in session.tracks["greedy"])
    print("\nnightly re-placement over two weeks (same demand trace):")
    print(f"  optimal update total cost : {dp_total:8.2f}")
    print(f"  greedy re-place total cost: {gr_total:8.2f}  "
          f"(+{(gr_total / dp_total - 1) * 100:.1f}%)")

    # --- when to reconfigure at all? -----------------------------------
    runs = compare_policies(
        workloads, CAPACITY,
        [SystematicPolicy(), LazyPolicy(), PeriodicPolicy(period=3)],
        DPUpdateStrategy(),
        cost_model=UniformCostModel(create=0.5, delete=0.05),
    )
    print("\nupdate-timing policies (create=0.5, delete=0.05 per change):")
    print(f"  {'policy':<12} {'updates':>7} {'mean servers':>13} {'total cost':>11}")
    for name, run in runs.items():
        print(f"  {name:<12} {run.updates:>7} {run.mean_servers:>13.2f} "
              f"{run.total_cost:>11.2f}")
    print("\nLazy pays fewer reconfiguration charges but carries stale "
          "placements; systematic tracks demand tightly at maximal update "
          "cost — exactly the trade-off §6 of the paper sketches.")


if __name__ == "__main__":
    main()
