"""Solver instrumentation: state-space statistics for the dynamic programs.

The guides' first rule of optimisation is *measure*; this package gives the
DPs a cheap way to report how much state they actually build, which is what
the complexity theorems bound.  `benchmarks/bench_ablation_statespace.py`
plots the measured growth against the Theorem-1/Theorem-3 predictions.
"""

from repro.perf.stats import (
    BatchCacheStats,
    CoreDPStats,
    ParetoDPStats,
    PolicyServeStats,
    ServeStats,
    SessionServeStats,
    instrument_pareto_frontier,
    instrument_replica_update,
)

__all__ = [
    "BatchCacheStats",
    "CoreDPStats",
    "ParetoDPStats",
    "PolicyServeStats",
    "ServeStats",
    "SessionServeStats",
    "instrument_pareto_frontier",
    "instrument_replica_update",
]
