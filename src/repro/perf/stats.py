"""State-space collectors for the dynamic programs.

The collectors are plain mutable objects the solvers update when one is
passed in; overhead is a few integer additions per merge, so they are safe
to enable in production runs.

* :class:`CoreDPStats` — MinCost-WithPre (Theorem 1): table sizes are the
  quantity the ``O(N·(N-E+1)²·(E+1)²)`` bound controls.
* :class:`ParetoDPStats` — the power frontier engine: label counts show
  how far Pareto pruning compresses the Theorem-3 count-vector space
  (and how the NP-hardness manifests as label growth on adversarial
  instances such as the §4.2 gadgets).
* :class:`BatchCacheStats` — the batch serving layer
  (:mod:`repro.batch`): cache hits/misses and dedupe fold counts, the
  quantities that determine batch throughput on duplicate-heavy traffic.
* :class:`ServeStats` / :class:`PolicyServeStats` — the async serving
  frontend (:mod:`repro.serve`): per-policy request / coalesced-join /
  cache-hit counts and p50/p99 latency over a sliding window.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sized
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dp_withpre import CostLike
    from repro.core.solution import PlacementResult
    from repro.power.dp_power_pareto import PowerFrontier
    from repro.power.modes import PowerModel
    from repro.core.costs import ModalCostModel
    from repro.tree.model import Tree

__all__ = [
    "BatchCacheStats",
    "ClusterStats",
    "CoreDPStats",
    "ParetoDPStats",
    "PolicyServeStats",
    "ServeStats",
    "SessionServeStats",
    "WorkerRouteStats",
    "instrument_replica_update",
    "instrument_pareto_frontier",
]


@dataclass
class BatchCacheStats:
    """Cache and dedupe counters of the batch executor.

    ``hits``/``misses`` count cache lookups (one per *unique* digest in a
    batch); ``disk_hits`` is the subset of hits served by the persistent
    tier.  ``duplicates_folded`` counts instances answered by another
    instance's solve in the same batch, and ``unique_solved`` counts
    actual solver invocations.  ``evictions`` / ``disk_evictions`` track
    the LRU and the size-bounded disk tier respectively, and
    ``schema_discards`` counts cached records dropped because their
    schema did not match the requesting policy's record schema (the
    record is re-solved; see :mod:`repro.batch.registry`).

    Fault-isolation counters: ``solve_timeouts`` counts supervised
    solves convicted of overrunning their ``solve_timeout`` deadline,
    ``pool_rebuilds`` counts kill+rebuild incidents of the supervised
    pool, ``quarantined`` / ``quarantine_blocked`` count digests added
    to the poison quarantine and requests it failed fast (see
    :mod:`repro.batch.quarantine`), and ``corrupt_lines`` counts disk
    cache lines that failed parse/CRC and were moved to a
    ``.quarantine`` sidecar (see :mod:`repro.batch.cache`).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    disk_evictions: int = 0
    stores: int = 0
    unique_solved: int = 0
    duplicates_folded: int = 0
    schema_discards: int = 0
    solve_timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    quarantine_blocked: int = 0
    corrupt_lines: int = 0
    #: Cross-process locking mode of the attached cache's disk tier:
    #: ``"memory"`` (no disk tier), ``"flock"`` (advisory sidecar locks)
    #: or ``"none"`` (``fcntl`` unavailable — shared-directory writers
    #: risk interleaved/lost appends; see :mod:`repro.batch.cache`).
    locking: str = "memory"

    def record_hit(self, *, disk: bool = False) -> None:
        self.hits += 1
        if disk:
            self.disk_hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "stores": self.stores,
            "unique_solved": self.unique_solved,
            "duplicates_folded": self.duplicates_folded,
            "schema_discards": self.schema_discards,
            "solve_timeouts": self.solve_timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": self.quarantined,
            "quarantine_blocked": self.quarantine_blocked,
            "corrupt_lines": self.corrupt_lines,
            "hit_rate": self.hit_rate,
            "locking": self.locking,
        }


#: Latency reservoir size per policy — enough for stable p99 estimates on
#: bursty traffic without unbounded growth in a long-lived server.
_LATENCY_WINDOW = 4096


@dataclass
class PolicyServeStats:
    """Per-policy counters of the serving frontend (:mod:`repro.serve`).

    ``requests`` counts solve requests routed to the policy;
    ``cache_hits`` the subset answered straight from the shared result
    cache, ``coalesced_joins`` the subset that joined an identical
    in-flight solve instead of scheduling a new one, and
    ``solves_scheduled`` the canonical solves actually dispatched to the
    batch backend — on duplicate-heavy traffic
    ``requests == cache_hits + coalesced_joins + solves_scheduled`` with
    the last term far smaller than the first.  Latencies are recorded per
    request (seconds, arrival to fanned-out result) in a sliding window.
    """

    requests: int = 0
    cache_hits: int = 0
    coalesced_joins: int = 0
    solves_scheduled: int = 0
    #: Requests shed at the ``max_pending`` admission bound (counted
    #: separately from ``errors``: a shed is expected load behaviour and
    #: is retried by the cluster router, not a failed solve).
    overloads: int = 0
    errors: int = 0
    latencies: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW), repr=False
    )

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    def latency_quantile(self, q: float) -> float | None:
        """Nearest-rank ``q``-quantile of the latency window.

        Returns ``None`` (wire ``null``) for an idle window — a window
        with no measurements is *unknown*, not a genuine zero-latency
        observation, and consumers must be able to tell the two apart.
        """
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def as_dict(self) -> dict[str, float | int | None]:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "coalesced_joins": self.coalesced_joins,
            "solves_scheduled": self.solves_scheduled,
            "overloads": self.overloads,
            "errors": self.errors,
            "p50_latency": self.latency_quantile(0.50),
            "p99_latency": self.latency_quantile(0.99),
        }


@dataclass
class SessionServeStats:
    """Counters of one live session (the serve tier's ``session.*`` ops).

    ``applies`` counts ``session.delta`` calls, ``deltas_applied`` the
    individual deltas inside them (a call may batch several);
    ``fronts_reused`` / ``fronts_invalidated`` mirror the
    :class:`repro.dynamics.SessionStats` store counters (tables answered
    from the retained store vs recomputed along the dirty root paths).
    Delta latencies (seconds, request decode to re-solved frontier) land
    in the same sliding-window quantile machinery as
    :class:`PolicyServeStats`.
    """

    applies: int = 0
    deltas_applied: int = 0
    fronts_reused: int = 0
    fronts_invalidated: int = 0
    errors: int = 0
    latencies: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW), repr=False
    )

    def record_apply(
        self,
        *,
        deltas: int,
        reused: int,
        invalidated: int,
        seconds: float,
    ) -> None:
        """Fold one ``session.delta`` round trip into the counters."""
        self.applies += 1
        self.deltas_applied += deltas
        self.fronts_reused += reused
        self.fronts_invalidated += invalidated
        self.latencies.append(seconds)

    def latency_quantile(self, q: float) -> float | None:
        """Nearest-rank ``q``-quantile of the latency window.

        ``None`` for an idle window (no deltas applied yet) — never
        ``0.0``, which would be indistinguishable from a measured
        zero-latency apply.
        """
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def merge(self, other: SessionServeStats) -> SessionServeStats:
        """Fold ``other`` into this collector (closed-session aggregation)."""
        self.applies += other.applies
        self.deltas_applied += other.deltas_applied
        self.fronts_reused += other.fronts_reused
        self.fronts_invalidated += other.fronts_invalidated
        self.errors += other.errors
        self.latencies.extend(other.latencies)
        return self

    def as_dict(self) -> dict[str, float | int | None]:
        return {
            "applies": self.applies,
            "deltas_applied": self.deltas_applied,
            "fronts_reused": self.fronts_reused,
            "fronts_invalidated": self.fronts_invalidated,
            "errors": self.errors,
            "p50_delta_latency": self.latency_quantile(0.50),
            "p99_delta_latency": self.latency_quantile(0.99),
        }


@dataclass
class ServeStats:
    """Whole-server counters of the serving frontend (:mod:`repro.serve`).

    Per-policy breakdowns live in :attr:`policies`
    (:class:`PolicyServeStats`, created on first use); ``batches`` /
    ``batch_instances`` describe the micro-batches the drain loop pushed
    through :func:`repro.batch.solve_batch`.
    """

    connections: int = 0
    batches: int = 0
    batch_instances: int = 0
    policies: dict = field(default_factory=dict)

    def policy(self, name: str) -> PolicyServeStats:
        """The (auto-created) per-policy collector for ``name``."""
        try:
            return self.policies[name]
        except KeyError:
            stats = self.policies[name] = PolicyServeStats()
            return stats

    def as_dict(self) -> dict[str, object]:
        return {
            "connections": self.connections,
            "batches": self.batches,
            "batch_instances": self.batch_instances,
            "policies": {
                name: stats.as_dict()
                for name, stats in sorted(self.policies.items())
            },
        }


@dataclass
class WorkerRouteStats:
    """Router-side health/overload counters for one cluster worker.

    ``routed`` counts requests the router dispatched to the worker (as
    primary *or* fallback owner), ``sheds`` the ``code: "overloaded"``
    responses it answered with, ``timeouts`` the ``code: "timeout"``
    responses (supervised solve deadline overruns — forwarded to the
    client, which may retry after backoff), ``deaths`` the times the
    router observed the worker dead (connection lost /
    spawner-reported), and ``respawns`` the times the router's spawner
    brought it back.
    """

    routed: int = 0
    sheds: int = 0
    timeouts: int = 0
    errors: int = 0
    deaths: int = 0
    respawns: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "routed": self.routed,
            "sheds": self.sheds,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "deaths": self.deaths,
            "respawns": self.respawns,
        }


@dataclass
class ClusterStats:
    """Counters of the digest-routing cluster router
    (:class:`repro.serve.cluster.ClusterRouter`).

    ``requests_routed`` counts routable requests (solve + session.open);
    ``retries`` the fallback hops taken after a shed or a worker death,
    ``rejected`` the requests refused because every owner shed them, and
    ``lost_sessions`` live sessions orphaned by a worker death (session
    state is worker-local by design and cannot fail over).  Per-worker
    breakdowns live in :attr:`workers` (:class:`WorkerRouteStats`,
    created on first use).
    """

    connections: int = 0
    requests_routed: int = 0
    retries: int = 0
    rejected: int = 0
    lost_sessions: int = 0
    workers: dict = field(default_factory=dict)

    def worker(self, name: str) -> WorkerRouteStats:
        """The (auto-created) per-worker collector for ``name``."""
        try:
            return self.workers[name]
        except KeyError:
            stats = self.workers[name] = WorkerRouteStats()
            return stats

    def as_dict(self) -> dict[str, object]:
        return {
            "connections": self.connections,
            "requests_routed": self.requests_routed,
            "retries": self.retries,
            "rejected": self.rejected,
            "lost_sessions": self.lost_sessions,
            "workers": {
                name: stats.as_dict()
                for name, stats in sorted(self.workers.items())
            },
        }


@dataclass
class CoreDPStats:
    """Table statistics of one MinCost-WithPre run."""

    merges: int = 0
    total_cells: int = 0  #: sum of post-merge table sizes (work ∝ this)
    max_cells: int = 0
    max_e_dim: int = 0
    max_n_dim: int = 0

    def record_merge(self, e_dim: int, n_dim: int) -> None:
        cells = e_dim * n_dim
        self.merges += 1
        self.total_cells += cells
        self.max_cells = max(self.max_cells, cells)
        self.max_e_dim = max(self.max_e_dim, e_dim)
        self.max_n_dim = max(self.max_n_dim, n_dim)

    def as_dict(self) -> dict[str, int]:
        return {
            "merges": self.merges,
            "total_cells": self.total_cells,
            "max_cells": self.max_cells,
            "max_e_dim": self.max_e_dim,
            "max_n_dim": self.max_n_dim,
        }


@dataclass
class ParetoDPStats:
    """Label statistics of one (or many aggregated) power-frontier runs.

    ``labels_created`` counts the full ``|acc| × |options|`` candidate
    cross product the dominance argument is pruning (the labels the old
    materialise-then-prune kernel used to allocate); ``labels_generated``
    is the subset the dominance-aware merge actually materialised
    (everything in between was skipped as provably dominated without ever
    being built), and ``merge_rejected`` the generated candidates that a
    better label then beat at pop time.  ``memo_hits`` / ``memo_misses``
    count subtree-table lookups by labelled AHU code, and
    ``memo_labels_shared`` the labels answered from a shared table
    instead of being recomputed.  ``kernel_solves`` labels the runs by
    merge engine (``{"array": 3, "tuple": 1}``) so aggregated batch/serve
    counters say which kernel produced them.
    """

    merges: int = 0
    labels_created: int = 0  #: candidate cross-product size before dominance
    labels_generated: int = 0  #: candidates the dominance-aware merge built
    labels_kept: int = 0  #: labels surviving Pareto pruning
    merge_rejected: int = 0  #: generated candidates dominated at merge time
    memo_hits: int = 0  #: subtree tables answered from the AHU memo
    memo_misses: int = 0  #: subtree tables computed (then memoized)
    memo_labels_shared: int = 0  #: labels served from a memoized table
    max_front_size: int = 0  #: largest (g, p) front for a single flow value
    max_flow_keys: int = 0  #: most distinct flow values at one node
    #: solves per merge engine, e.g. ``{"array": 3}`` (kernel knob label)
    kernel_solves: dict[str, int] = field(default_factory=dict)

    def record_kernel(self, name: str) -> None:
        """Count one solve under the given kernel label."""
        self.kernel_solves[name] = self.kernel_solves.get(name, 0) + 1

    def record_table(self, table: Mapping[int, Sized]) -> None:
        self.max_flow_keys = max(self.max_flow_keys, len(table))
        for labs in table.values():
            self.labels_kept += len(labs)
            self.max_front_size = max(self.max_front_size, len(labs))

    @property
    def prune_ratio(self) -> float:
        """Fraction of candidate labels discarded by dominance pruning."""
        if self.labels_created == 0:
            return 0.0
        return 1.0 - self.labels_kept / self.labels_created

    @property
    def generation_ratio(self) -> float:
        """Fraction of the candidate space the merge actually built.

        Low values mean the dominance-aware skip rejected most of the
        cross product without materialising it.
        """
        if self.labels_created == 0:
            return 0.0
        return self.labels_generated / self.labels_created

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of subtree-table lookups answered from the memo."""
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    _SUM_FIELDS = (
        "merges",
        "labels_created",
        "labels_generated",
        "labels_kept",
        "merge_rejected",
        "memo_hits",
        "memo_misses",
        "memo_labels_shared",
    )
    _MAX_FIELDS = ("max_front_size", "max_flow_keys")

    def absorb(self, counters: Mapping[str, float]) -> ParetoDPStats:
        """Fold another run's ``as_dict`` counters into this collector.

        Used by the batch CLI and the serving tier to aggregate the
        per-record kernel statistics solver policies attach to cache
        records; unknown/derived keys are ignored, missing keys count 0.
        """
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + int(counters.get(name, 0)))
        for name in self._MAX_FIELDS:
            setattr(
                self, name, max(getattr(self, name), int(counters.get(name, 0)))
            )
        solves = counters.get("kernel_solves")
        if isinstance(solves, Mapping):
            for kernel, count in solves.items():
                self.kernel_solves[str(kernel)] = self.kernel_solves.get(
                    str(kernel), 0
                ) + int(count)
        return self

    def as_dict(self) -> dict[str, object]:
        return {
            "merges": self.merges,
            "labels_created": self.labels_created,
            "labels_generated": self.labels_generated,
            "labels_kept": self.labels_kept,
            "merge_rejected": self.merge_rejected,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_labels_shared": self.memo_labels_shared,
            "max_front_size": self.max_front_size,
            "max_flow_keys": self.max_flow_keys,
            "prune_ratio": self.prune_ratio,
            "generation_ratio": self.generation_ratio,
            "memo_hit_rate": self.memo_hit_rate,
            "kernel_solves": dict(sorted(self.kernel_solves.items())),
        }


def instrument_replica_update(
    tree: Tree,
    capacity: int,
    preexisting: Iterable[int] = (),
    cost_model: CostLike | None = None,
) -> tuple["PlacementResult", CoreDPStats]:
    """Run :func:`repro.core.dp_withpre.replica_update` with a collector."""
    from repro.core.dp_withpre import replica_update

    stats = CoreDPStats()
    result = replica_update(tree, capacity, preexisting, cost_model, stats=stats)
    return result, stats


def instrument_pareto_frontier(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
) -> tuple["PowerFrontier", ParetoDPStats]:
    """Run :func:`repro.power.dp_power_pareto.power_frontier` with a collector."""
    from repro.power.dp_power_pareto import power_frontier

    stats = ParetoDPStats()
    frontier = power_frontier(
        tree, power_model, cost_model, preexisting_modes, stats=stats
    )
    return frontier, stats
