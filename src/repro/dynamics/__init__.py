"""Dynamic replica management: workload evolution, update sessions and
update-timing policies (Experiment 2 and the §6 lazy/systematic trade-off).
"""

from repro.dynamics.evolution import (
    EvolutionModel,
    HotspotShift,
    RandomWalkRequests,
    RedrawRequests,
)
from repro.dynamics.migration import (
    MigrationPlan,
    MigrationStep,
    StepKind,
    plan_migration,
)
from repro.dynamics.session import (
    DPUpdateStrategy,
    GreedyStrategy,
    PlacementStrategy,
    SessionResult,
    StepRecord,
    run_session,
)
from repro.dynamics.strategies import (
    LazyPolicy,
    PeriodicPolicy,
    PolicyRun,
    SystematicPolicy,
    UpdatePolicy,
    compare_policies,
    generate_workloads,
    run_policy,
)

__all__ = [
    "DPUpdateStrategy",
    "EvolutionModel",
    "GreedyStrategy",
    "HotspotShift",
    "LazyPolicy",
    "MigrationPlan",
    "MigrationStep",
    "StepKind",
    "plan_migration",
    "PeriodicPolicy",
    "PlacementStrategy",
    "PolicyRun",
    "RandomWalkRequests",
    "RedrawRequests",
    "SessionResult",
    "StepRecord",
    "SystematicPolicy",
    "UpdatePolicy",
    "compare_policies",
    "generate_workloads",
    "run_policy",
    "run_session",
]
