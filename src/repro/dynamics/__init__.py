"""Dynamic replica management: workload evolution, update sessions and
update-timing policies (Experiment 2 and the §6 lazy/systematic trade-off).
"""

from repro.dynamics.evolution import (
    EvolutionModel,
    HotspotShift,
    RandomWalkRequests,
    RedrawRequests,
)
from repro.dynamics.incremental import (
    AddClient,
    ApplyResult,
    Delta,
    MigrateSubtree,
    RemoveClient,
    SessionState,
    SessionStats,
    SetRequests,
    apply_deltas,
    delta_from_dict,
    delta_to_dict,
)
from repro.dynamics.migration import (
    MigrationPlan,
    MigrationStep,
    StepKind,
    plan_migration,
)
from repro.dynamics.session import (
    DPUpdateStrategy,
    GreedyStrategy,
    PlacementStrategy,
    SessionResult,
    StepRecord,
    run_session,
)
from repro.dynamics.strategies import (
    LazyPolicy,
    PeriodicPolicy,
    PolicyRun,
    SystematicPolicy,
    UpdatePolicy,
    compare_policies,
    generate_workloads,
    run_policy,
)

__all__ = [
    "AddClient",
    "ApplyResult",
    "DPUpdateStrategy",
    "Delta",
    "EvolutionModel",
    "GreedyStrategy",
    "HotspotShift",
    "LazyPolicy",
    "MigrateSubtree",
    "MigrationPlan",
    "MigrationStep",
    "RemoveClient",
    "SessionState",
    "SessionStats",
    "SetRequests",
    "StepKind",
    "apply_deltas",
    "delta_from_dict",
    "delta_to_dict",
    "plan_migration",
    "PeriodicPolicy",
    "PlacementStrategy",
    "PolicyRun",
    "RandomWalkRequests",
    "RedrawRequests",
    "SessionResult",
    "StepRecord",
    "SystematicPolicy",
    "UpdatePolicy",
    "compare_policies",
    "generate_workloads",
    "run_policy",
    "run_session",
]
