"""Incremental delta re-solve engine for live placement sessions.

The paper's Experiment 2 (and :func:`repro.dynamics.session.run_session`)
treats every workload change as a solve-from-scratch: each step pays a
full O(tree) Pareto-DP pass even when one client moved.  A
:class:`SessionState` instead keeps the tree *and* the solved per-subtree
DP fronts alive between steps, keyed by labelled AHU subtree codes
(:mod:`repro.batch.canonical`) in a kernel-bound
:class:`repro.power.FrontStore`.  Applying a delta then costs:

1. an O(depth) incremental relabelling — only nodes on the root paths of
   the delta's *dirty* nodes can change code
   (:meth:`repro.power.FrontStore.advance_codes`);
2. a re-solve in which every subtree hanging off those root paths is
   answered from the store by content address (changed subtrees get new
   keys, so stale tables can never be served — the invalidation
   invariant), leaving only the root-path tables to recompute.

Frontiers are byte-identical to cold solves for both kernels (pinned by
``tests/dynamics/test_incremental.py``), because a store hit aliases the
representative's ``(g, p)`` rows verbatim and every dominance sweep is a
function of the candidate multiset only.

Deltas
------
Four churn primitives cover Experiment 2's evolution models and the
serve-protocol session grammar:

* :class:`AddClient` — attach a new client to an internal node;
* :class:`RemoveClient` — detach one client (addressed by its index in
  ``tree.clients`` *at the moment the delta is applied*);
* :class:`SetRequests` — change one client's request rate (same
  addressing);
* :class:`MigrateSubtree` — re-hang an internal subtree under a new
  parent (the structural move of :mod:`repro.dynamics.migration`).

Dirty-node rules: a client edit dirties its attachment node; a migration
dirties the old and the new parent (the moved subtree's own codes do not
depend on where it hangs).  Everything else that changes is an ancestor
of a dirty node, which is exactly what ``advance_codes`` recomputes.

This module is covered by the ``determinism`` lint rule: no clocks, no
ambient randomness — latency accounting lives with the callers
(serve layer, CLI, benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Union

from repro.exceptions import (
    ConfigurationError,
    TreeStructureError,
    WorkloadError,
)
from repro.power.frontstore import FrontStore
from repro.power.kernels import KERNELS, resolve_kernel
from repro.tree.model import Client, Tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costs import ModalCostModel
    from repro.power.dp_power_pareto import PowerFrontier
    from repro.power.modes import PowerModel

__all__ = [
    "AddClient",
    "RemoveClient",
    "SetRequests",
    "MigrateSubtree",
    "Delta",
    "ApplyResult",
    "SessionStats",
    "SessionState",
    "apply_deltas",
    "delta_from_dict",
    "delta_to_dict",
]


@dataclass(frozen=True)
class AddClient:
    """Attach a new client issuing ``requests`` to internal node ``node``."""

    node: int
    requests: int


@dataclass(frozen=True)
class RemoveClient:
    """Detach the client at index ``client`` of the current ``tree.clients``."""

    client: int


@dataclass(frozen=True)
class SetRequests:
    """Set the request rate of the client at index ``client``."""

    client: int
    requests: int


@dataclass(frozen=True)
class MigrateSubtree:
    """Re-hang the subtree rooted at ``node`` under ``new_parent``.

    ``new_parent`` must not lie inside the moved subtree (that would
    disconnect it into a cycle) and the root cannot move.
    """

    node: int
    new_parent: int


Delta = Union[AddClient, RemoveClient, SetRequests, MigrateSubtree]

#: Wire names of the delta kinds (the serve protocol's delta grammar).
_KIND_ADD = "add_client"
_KIND_REMOVE = "remove_client"
_KIND_SET = "set_requests"
_KIND_MIGRATE = "migrate"


def delta_to_dict(delta: Delta) -> dict[str, int | str]:
    """JSON-able ``{"kind": ..., ...}`` form of one delta."""
    if isinstance(delta, AddClient):
        return {"kind": _KIND_ADD, "node": delta.node, "requests": delta.requests}
    if isinstance(delta, RemoveClient):
        return {"kind": _KIND_REMOVE, "client": delta.client}
    if isinstance(delta, SetRequests):
        return {
            "kind": _KIND_SET,
            "client": delta.client,
            "requests": delta.requests,
        }
    if isinstance(delta, MigrateSubtree):
        return {
            "kind": _KIND_MIGRATE,
            "node": delta.node,
            "new_parent": delta.new_parent,
        }
    raise ConfigurationError(f"unknown delta object {delta!r}")


def delta_from_dict(raw: Mapping[str, object]) -> Delta:
    """Parse one wire-form delta (inverse of :func:`delta_to_dict`)."""
    kind = raw.get("kind")
    try:
        if kind == _KIND_ADD:
            return AddClient(int(raw["node"]), int(raw["requests"]))  # type: ignore[arg-type]
        if kind == _KIND_REMOVE:
            return RemoveClient(int(raw["client"]))  # type: ignore[arg-type]
        if kind == _KIND_SET:
            return SetRequests(int(raw["client"]), int(raw["requests"]))  # type: ignore[arg-type]
        if kind == _KIND_MIGRATE:
            return MigrateSubtree(int(raw["node"]), int(raw["new_parent"]))  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed {kind!r} delta: {raw!r}") from exc
    raise ConfigurationError(
        f"unknown delta kind {kind!r}; expected one of "
        f"['{_KIND_ADD}', '{_KIND_MIGRATE}', '{_KIND_REMOVE}', '{_KIND_SET}']"
    )


def apply_deltas(
    tree: Tree, deltas: Iterable[Delta]
) -> tuple[Tree, set[int]]:
    """Apply a delta batch to ``tree``; returns ``(new_tree, dirty_nodes)``.

    Deltas are applied in order against the evolving state (client
    indices address the client tuple as it stands when their delta is
    reached).  The dirty set contains every node whose own subtree-code
    inputs changed — the seed set for
    :meth:`repro.power.FrontStore.advance_codes`.
    """
    n = tree.n_nodes
    parents: list[int | None] = list(tree.parents)
    clients: list[Client] = list(tree.clients)
    dirty: set[int] = set()
    for delta in deltas:
        if isinstance(delta, AddClient):
            if not (0 <= delta.node < n):
                raise WorkloadError(
                    f"add_client references unknown internal node {delta.node}"
                )
            clients.append(Client(delta.node, delta.requests))
            dirty.add(delta.node)
        elif isinstance(delta, RemoveClient):
            if not (0 <= delta.client < len(clients)):
                raise WorkloadError(
                    f"remove_client index {delta.client} out of range "
                    f"(tree has {len(clients)} clients)"
                )
            dirty.add(clients.pop(delta.client).node)
        elif isinstance(delta, SetRequests):
            if not (0 <= delta.client < len(clients)):
                raise WorkloadError(
                    f"set_requests index {delta.client} out of range "
                    f"(tree has {len(clients)} clients)"
                )
            clients[delta.client] = clients[delta.client].with_requests(
                delta.requests
            )
            dirty.add(clients[delta.client].node)
        elif isinstance(delta, MigrateSubtree):
            v, q = delta.node, delta.new_parent
            if not (0 <= v < n) or not (0 <= q < n):
                raise TreeStructureError(
                    f"migrate references nodes outside 0..{n - 1}: "
                    f"node={v}, new_parent={q}"
                )
            old_parent = parents[v]
            if old_parent is None:
                raise TreeStructureError("the root cannot be migrated")
            # Walk up from the target: landing on v would hang the
            # subtree under itself (cycle).  O(depth).
            u: int | None = q
            while u is not None:
                if u == v:
                    raise TreeStructureError(
                        f"cannot migrate node {v} under its own descendant {q}"
                    )
                u = parents[u]
            parents[v] = q
            dirty.add(old_parent)
            dirty.add(q)
        else:
            raise ConfigurationError(f"unknown delta object {delta!r}")
    return Tree(parents, clients, validate=False), dirty


@dataclass
class SessionStats:
    """Cumulative per-session counters (no latency — see the serve layer)."""

    solves: int = 0
    deltas_applied: int = 0
    fronts_reused: int = 0
    fronts_invalidated: int = 0
    store_resets: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "solves": self.solves,
            "deltas_applied": self.deltas_applied,
            "fronts_reused": self.fronts_reused,
            "fronts_invalidated": self.fronts_invalidated,
            "store_resets": self.store_resets,
        }


@dataclass(frozen=True)
class ApplyResult:
    """Outcome of one :meth:`SessionState.apply` call."""

    frontier: PowerFrontier
    deltas_applied: int
    fronts_reused: int
    fronts_invalidated: int


class SessionState:
    """A live placement session: tree + retained fronts + delta engine.

    Parameters mirror the kernels; ``kernel`` resolves through
    :func:`repro.power.resolve_kernel` (argument > ``REPRO_POWER_KERNEL``
    > default) and the front store is bound to it.  The pre-existing set
    is fixed for the session's lifetime — re-anchoring the pre-set is a
    new session, not a delta (its markers participate in every subtree
    code, so changing them invalidates globally anyway).
    """

    def __init__(
        self,
        tree: Tree,
        power_model: PowerModel,
        cost_model: ModalCostModel,
        preexisting_modes: Mapping[int, int] | None = None,
        *,
        kernel: str | None = None,
        store: FrontStore | None = None,
    ) -> None:
        self._kernel = resolve_kernel(kernel)
        self._solver = KERNELS[self._kernel]
        if store is not None and store.kernel != self._kernel:
            raise ConfigurationError(
                f"front store is bound to the {store.kernel!r} kernel but "
                f"the session resolved to {self._kernel!r}"
            )
        self._store = store if store is not None else FrontStore(self._kernel)
        self._tree = tree
        self._power_model = power_model
        self._cost_model = cost_model
        self._pre = dict(preexisting_modes or {})
        self._frontier: PowerFrontier | None = None
        self._closed = False
        self.stats = SessionStats()

    # -- accessors ------------------------------------------------------
    @property
    def kernel(self) -> str:
        return self._kernel

    @property
    def store(self) -> FrontStore:
        return self._store

    @property
    def tree(self) -> Tree:
        return self._tree

    @property
    def preexisting_modes(self) -> dict[int, int]:
        return dict(self._pre)

    def frontier(self) -> PowerFrontier:
        """The current frontier (solves on first use)."""
        if self._frontier is None:
            return self.solve()
        return self._frontier

    # -- engine ---------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("session is closed")

    def solve(self) -> PowerFrontier:
        """(Re-)solve the current tree through the front store."""
        self._check_open()
        resets_before = self._store.resets
        frontier = self._solver(
            self._tree,
            self._power_model,
            self._cost_model,
            self._pre,
            front_store=self._store,
        )
        self.stats.solves += 1
        self.stats.store_resets += self._store.resets - resets_before
        self._frontier = frontier
        return frontier

    def apply(self, deltas: Iterable[Delta]) -> ApplyResult:
        """Apply a delta batch and re-solve incrementally.

        Invalid deltas raise *before* any session state changes — the
        tree, codes and store are untouched on error.
        """
        self._check_open()
        batch: Sequence[Delta] = tuple(deltas)
        new_tree, dirty = apply_deltas(self._tree, batch)
        # Relabel only the union of root paths from the dirty nodes;
        # the subsequent solve sees the advanced codes via the store's
        # current-codes fast path (no full relabelling).
        self._store.advance_codes(new_tree, self._pre, dirty)
        self._tree = new_tree
        hits_before = self._store.hits
        misses_before = self._store.misses
        frontier = self.solve()
        reused = self._store.hits - hits_before
        invalidated = self._store.misses - misses_before
        self.stats.deltas_applied += len(batch)
        self.stats.fronts_reused += reused
        self.stats.fronts_invalidated += invalidated
        return ApplyResult(frontier, len(batch), reused, invalidated)

    def close(self) -> None:
        """Release every retained table; the session is unusable after."""
        if not self._closed:
            self._closed = True
            self._frontier = None
            self._store.release()
