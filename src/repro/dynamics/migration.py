"""Explicit migration plans between replica configurations.

The cost models (Equations 2 and 4) price a reconfiguration by *counting*
creations, deletions and mode changes; operators executing one need the
actual step list.  :func:`plan_migration` diffs two configurations into
ordered, typed steps and prices them — by construction the plan's cost
equals the corresponding cost model's, which the tests use as a
consistency check tying the paper's algebra to an executable change list.

Configurations are either plain replica sets (uniform servers, Equation 2)
or ``{node: mode}`` mappings (modal servers, Equation 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from collections.abc import Iterable, Mapping

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.exceptions import ConfigurationError

__all__ = ["StepKind", "MigrationStep", "MigrationPlan", "plan_migration"]


class StepKind(str, Enum):
    """What happens to one node during a reconfiguration."""

    CREATE = "create"
    DELETE = "delete"
    KEEP = "keep"
    UPGRADE = "upgrade"
    DOWNGRADE = "downgrade"


@dataclass(frozen=True)
class MigrationStep:
    """One node-level action; modes are ``None`` for uniform servers."""

    kind: StepKind
    node: int
    old_mode: int | None = None
    new_mode: int | None = None

    def __str__(self) -> str:
        if self.kind is StepKind.CREATE:
            suffix = f" @mode {self.new_mode}" if self.new_mode is not None else ""
            return f"create server on node {self.node}{suffix}"
        if self.kind is StepKind.DELETE:
            return f"delete server on node {self.node}"
        if self.kind is StepKind.KEEP:
            return f"keep server on node {self.node}"
        return (
            f"{self.kind.value} server on node {self.node}: "
            f"mode {self.old_mode} -> {self.new_mode}"
        )


@dataclass(frozen=True)
class MigrationPlan:
    """Ordered reconfiguration steps plus summary counts.

    Steps are ordered creations → upgrades/downgrades → keeps → deletions,
    so executing them in order never drops capacity before replacements
    are up (make-before-break).
    """

    steps: tuple[MigrationStep, ...]

    def by_kind(self, kind: StepKind) -> tuple[MigrationStep, ...]:
        return tuple(s for s in self.steps if s.kind is kind)

    @property
    def n_created(self) -> int:
        return len(self.by_kind(StepKind.CREATE))

    @property
    def n_deleted(self) -> int:
        return len(self.by_kind(StepKind.DELETE))

    @property
    def n_kept(self) -> int:
        return len(
            [
                s
                for s in self.steps
                if s.kind in (StepKind.KEEP, StepKind.UPGRADE, StepKind.DOWNGRADE)
            ]
        )

    @property
    def n_mode_changes(self) -> int:
        return len(self.by_kind(StepKind.UPGRADE)) + len(
            self.by_kind(StepKind.DOWNGRADE)
        )

    def cost(self, model: UniformCostModel | ModalCostModel) -> float:
        """Price the plan with Equation 2 or Equation 4."""
        if isinstance(model, UniformCostModel):
            n_servers = self.n_created + self.n_kept
            return model.total(n_servers, self.n_kept, self.n_kept + self.n_deleted)
        if isinstance(model, ModalCostModel):
            new_by_mode = [0] * model.n_modes
            deleted_by_mode = [0] * model.n_modes
            reused: dict[tuple[int, int], int] = {}
            for s in self.steps:
                if s.kind is StepKind.CREATE:
                    if s.new_mode is None:
                        raise ConfigurationError(
                            "modal cost model needs modes on every step; "
                            f"step for node {s.node} has none"
                        )
                    new_by_mode[s.new_mode] += 1
                elif s.kind is StepKind.DELETE:
                    if s.old_mode is None:
                        raise ConfigurationError(
                            "modal cost model needs modes on every step; "
                            f"step for node {s.node} has none"
                        )
                    deleted_by_mode[s.old_mode] += 1
                else:
                    if s.old_mode is None or s.new_mode is None:
                        raise ConfigurationError(
                            "modal cost model needs modes on every step; "
                            f"step for node {s.node} has none"
                        )
                    key = (s.old_mode, s.new_mode)
                    reused[key] = reused.get(key, 0) + 1
            return model.total(new_by_mode, reused, deleted_by_mode)
        raise ConfigurationError(f"unsupported cost model {type(model).__name__}")

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.steps) or "(no changes)"


def plan_migration(
    old: Iterable[int] | Mapping[int, int],
    new: Iterable[int] | Mapping[int, int],
) -> MigrationPlan:
    """Diff two configurations into a :class:`MigrationPlan`.

    Accepts replica sets (uniform) or ``{node: mode}`` mappings (modal);
    mixing is allowed — the set side simply carries no mode information.
    """
    old_modes = dict(old) if isinstance(old, Mapping) else {v: None for v in old}
    new_modes = dict(new) if isinstance(new, Mapping) else {v: None for v in new}

    creates: list[MigrationStep] = []
    changes: list[MigrationStep] = []
    keeps: list[MigrationStep] = []
    deletes: list[MigrationStep] = []
    for node in sorted(new_modes):
        if node not in old_modes:
            creates.append(
                MigrationStep(StepKind.CREATE, node, None, new_modes[node])
            )
            continue
        o, n = old_modes[node], new_modes[node]
        if o is None or n is None or o == n:
            keeps.append(MigrationStep(StepKind.KEEP, node, o, n if n is not None else o))
        elif n > o:
            changes.append(MigrationStep(StepKind.UPGRADE, node, o, n))
        else:
            changes.append(MigrationStep(StepKind.DOWNGRADE, node, o, n))
    for node in sorted(old_modes):
        if node not in new_modes:
            deletes.append(
                MigrationStep(StepKind.DELETE, node, old_modes[node], None)
            )
    return MigrationPlan(steps=tuple(creates + changes + keeps + deletes))
