"""Update *timing* strategies: when to reconfigure (§6's open question).

The paper's conclusion frames dynamic replica management as a trade-off
between two extremes:

    "(i) lazy updates, where there is an update only when the current
    placement is no longer valid … (ii) systematic updates, where there is
    an update every time-step".

This module makes that trade-off measurable.  An :class:`UpdatePolicy`
decides, at each step, whether to keep the previous placement or invoke a
:class:`~repro.dynamics.session.PlacementStrategy`; the runner prices every
step with Equation 2 (operating cost ``R`` plus create/delete charges
against the previous placement — a kept placement costs just ``R``).
`benchmarks/bench_ablation_strategies.py` sweeps the policies over the
Experiment-2 workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import CostLike
from repro.core.solution import PlacementResult, evaluate_placement
from repro.dynamics.evolution import EvolutionModel
from repro.dynamics.session import PlacementStrategy, StepRecord
from repro.exceptions import ConfigurationError
from repro.tree.model import Tree

__all__ = [
    "UpdatePolicy",
    "SystematicPolicy",
    "LazyPolicy",
    "PeriodicPolicy",
    "PolicyRun",
    "run_policy",
    "generate_workloads",
    "compare_policies",
]


class UpdatePolicy:
    """Decides whether step ``t`` recomputes the placement."""

    name: str = "abstract"

    def should_update(self, step: int, placement_valid: bool) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class SystematicPolicy(UpdatePolicy):
    """Re-place every step: best resource usage, maximal update cost."""

    name: str = "systematic"

    def should_update(self, step: int, placement_valid: bool) -> bool:
        return True


@dataclass(frozen=True)
class LazyPolicy(UpdatePolicy):
    """Re-place only when the current placement can no longer serve the
    workload: minimal update cost, possibly poor resource usage."""

    name: str = "lazy"

    def should_update(self, step: int, placement_valid: bool) -> bool:
        return not placement_valid


@dataclass(frozen=True)
class PeriodicPolicy(UpdatePolicy):
    """Re-place every ``period`` steps (and whenever forced by invalidity).

    The paper's [18] reference updates at "regular intervals"; this is that
    middle ground.
    """

    period: int = 5
    name: str = "periodic"

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    def should_update(self, step: int, placement_valid: bool) -> bool:
        return (step % self.period == 0) or not placement_valid


@dataclass(frozen=True)
class PolicyRun:
    """Outcome of one policy over a workload sequence."""

    policy: str
    records: tuple[StepRecord, ...]
    updates: int  #: number of steps that recomputed the placement

    @property
    def total_cost(self) -> float:
        return sum(r.cost for r in self.records)

    @property
    def mean_servers(self) -> float:
        return sum(r.n_replicas for r in self.records) / len(self.records)


def run_policy(
    workloads: Sequence[Tree],
    capacity: int,
    policy: UpdatePolicy,
    strategy: PlacementStrategy,
    *,
    cost_model: CostLike | None = None,
) -> PolicyRun:
    """Drive one update policy over a fixed workload sequence.

    Step pricing: a re-placement costs Equation 2 against the previous
    placement; a kept placement costs its server count (operating cost
    only, no create/delete charges).
    """
    if not workloads:
        raise ConfigurationError("workloads must be non-empty")
    pricing = cost_model if cost_model is not None else UniformCostModel()
    current: PlacementResult | None = None
    records: list[StepRecord] = []
    updates = 0
    for step, tree in enumerate(workloads):
        valid = (
            current is not None
            and evaluate_placement(tree, current.replicas, capacity).ok
        )
        if current is None or policy.should_update(step, valid):
            pre = current.replicas if current is not None else frozenset()
            placed = strategy.place(tree, capacity, pre)
            updates += 1
            cost = pricing.total(placed.n_replicas, placed.n_reused, len(pre))
            current = placed
            records.append(
                StepRecord(
                    step=step,
                    n_replicas=placed.n_replicas,
                    n_reused=placed.n_reused,
                    n_created=placed.n_created,
                    n_deleted=placed.n_deleted,
                    cost=float(cost),
                    replicas=placed.replicas,
                )
            )
        else:
            assert current is not None
            r = current.n_replicas
            records.append(
                StepRecord(
                    step=step,
                    n_replicas=r,
                    n_reused=r,
                    n_created=0,
                    n_deleted=0,
                    cost=float(r),
                    replicas=current.replicas,
                )
            )
    return PolicyRun(policy=policy.name, records=tuple(records), updates=updates)


def generate_workloads(
    initial: Tree,
    n_steps: int,
    evolution: EvolutionModel,
    rng: np.random.Generator | int | None = None,
) -> list[Tree]:
    """Pre-generate a shared workload sequence for paired policy runs."""
    if n_steps < 1:
        raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    out = [initial]
    for _ in range(n_steps - 1):
        out.append(evolution.evolve(out[-1], gen))
    return out


def compare_policies(
    workloads: Sequence[Tree],
    capacity: int,
    policies: Sequence[UpdatePolicy],
    strategy: PlacementStrategy,
    *,
    cost_model: CostLike | None = None,
) -> Mapping[str, PolicyRun]:
    """Run several policies over the same workload sequence."""
    return {
        p.name: run_policy(
            workloads, capacity, p, strategy, cost_model=cost_model
        )
        for p in policies
    }
