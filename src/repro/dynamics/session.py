"""Multi-step replica-update sessions (Experiment 2's engine).

A session repeatedly evolves the workload and re-places replicas, feeding
each algorithm *its own* previous placement as the pre-existing set:

    "Initially, there are no pre-existing servers, and at each step, both
    algorithms obtain a different solution.  However, they always reach the
    same total number of servers since they have the same requests; but
    after the first step, they may have a different set of pre-existing
    servers." (§5.1)

Placement algorithms are plugged in through :class:`PlacementStrategy`;
:class:`DPUpdateStrategy` wraps the paper's MinCost-WithPre optimum and
:class:`GreedyStrategy` wraps GR.  All tracks see the *same* workload
sequence (pre-generated from one RNG) so results are paired, as in the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping
from typing import Protocol

import numpy as np

from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import CostLike, replica_update
from repro.core.greedy import greedy_placement
from repro.core.solution import PlacementResult
from repro.dynamics.evolution import EvolutionModel
from repro.exceptions import ConfigurationError
from repro.tree.model import Tree

__all__ = [
    "PlacementStrategy",
    "DPUpdateStrategy",
    "GreedyStrategy",
    "StepRecord",
    "SessionResult",
    "run_session",
]


class PlacementStrategy(Protocol):
    """One replica-placement algorithm usable inside a session."""

    def place(
        self, tree: Tree, capacity: int, preexisting: frozenset[int]
    ) -> PlacementResult: ...


@dataclass(frozen=True)
class DPUpdateStrategy:
    """The paper's optimal MinCost-WithPre update (Theorem 1).

    The default cost model makes the server count strictly dominant and
    then maximises reuse — the configuration under which "both algorithms
    return a solution with the minimum number of replicas" (§5.1).
    """

    cost_model: CostLike = field(default_factory=lambda: UniformCostModel(1e-4, 1e-5))

    def place(
        self, tree: Tree, capacity: int, preexisting: frozenset[int]
    ) -> PlacementResult:
        return replica_update(tree, capacity, preexisting, self.cost_model)


@dataclass(frozen=True)
class GreedyStrategy:
    """GR of [19]; ignores pre-existing servers when placing."""

    tie_break: str = "index"

    def place(
        self, tree: Tree, capacity: int, preexisting: frozenset[int]
    ) -> PlacementResult:
        return greedy_placement(
            tree, capacity, preexisting=preexisting, tie_break=self.tie_break  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class StepRecord:
    """Outcome of one update step for one strategy."""

    step: int
    n_replicas: int
    n_reused: int
    n_created: int
    n_deleted: int
    cost: float
    replicas: frozenset[int]


@dataclass(frozen=True)
class SessionResult:
    """Per-strategy step records over a whole session."""

    tracks: Mapping[str, tuple[StepRecord, ...]]
    workloads: tuple[Tree, ...]

    def cumulative_reuse(self, name: str) -> list[int]:
        """Running sum of reused servers (Figure 5/7 left panel series)."""
        out: list[int] = []
        total = 0
        for rec in self.tracks[name]:
            total += rec.n_reused
            out.append(total)
        return out

    def reuse_gaps(self, a: str, b: str) -> list[int]:
        """Per-step ``reused(a) - reused(b)`` (Figure 5/7 right panel)."""
        return [
            ra.n_reused - rb.n_reused
            for ra, rb in zip(self.tracks[a], self.tracks[b], strict=True)
        ]


def run_session(
    initial: Tree,
    capacity: int,
    n_steps: int,
    evolution: EvolutionModel,
    strategies: Mapping[str, PlacementStrategy],
    *,
    rng: np.random.Generator | int | None = None,
    seed: int | None = None,
    initial_preexisting: Iterable[int] = (),
    cost_model: CostLike | None = None,
) -> SessionResult:
    """Run ``n_steps`` update steps with paired workloads.

    Parameters
    ----------
    initial:
        Workload at step 0 (placed against ``initial_preexisting``).
    evolution:
        Applied between consecutive steps to produce the next workload.
    strategies:
        Named placement algorithms; each evolves its own pre-existing set.
    rng:
        Generator (or raw seed) driving the workload evolution.
    seed:
        Explicit integer seed — the replayable spelling used by
        ``repro dynamics --seed``; two runs with equal seeds see
        identical workload sequences.  Mutually exclusive with ``rng``.
    cost_model:
        Used only to *price* every step uniformly across strategies
        (Equation 2 against the strategy's previous placement); defaults to
        the paper's ``create=0.1, delete=0.01``.

    Returns
    -------
    SessionResult
        Step records per strategy plus the shared workload sequence.
    """
    if n_steps < 1:
        raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
    if not strategies:
        raise ConfigurationError("at least one strategy is required")
    if seed is not None:
        if rng is not None:
            raise ConfigurationError(
                "pass either rng or seed, not both (they would race for "
                "control of the workload sequence)"
            )
        rng = int(seed)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    pricing = cost_model if cost_model is not None else UniformCostModel()

    workloads: list[Tree] = [initial]
    for _ in range(n_steps - 1):
        workloads.append(evolution.evolve(workloads[-1], gen))

    start = frozenset(int(v) for v in initial_preexisting)
    previous: dict[str, frozenset[int]] = {name: start for name in strategies}
    records: dict[str, list[StepRecord]] = {name: [] for name in strategies}

    for step, tree in enumerate(workloads):
        for name, strategy in strategies.items():
            pre = previous[name]
            placed = strategy.place(tree, capacity, pre)
            cost = pricing.total(placed.n_replicas, placed.n_reused, len(pre))
            records[name].append(
                StepRecord(
                    step=step,
                    n_replicas=placed.n_replicas,
                    n_reused=placed.n_reused,
                    n_created=placed.n_created,
                    n_deleted=placed.n_deleted,
                    cost=float(cost),
                    replicas=placed.replicas,
                )
            )
            previous[name] = placed.replicas

    return SessionResult(
        tracks={name: tuple(recs) for name, recs in records.items()},
        workloads=tuple(workloads),
    )
