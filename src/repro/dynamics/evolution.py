"""Client-request evolution models for dynamic replica management.

Experiment 2 (§5.1) runs 20 *update steps*: "At each step, starting from the
current solution, we update the number of requests per client and recompute
an optimal solution … starting from the servers that were placed at the
previous step."  The client *positions* stay fixed (the distribution tree is
fixed, the paper's core platform assumption); only request volumes move.

Models implement the :class:`EvolutionModel` protocol; all take an explicit
RNG.  :class:`RedrawRequests` is the paper's model; the others support the
update-strategy ablation (§6 discusses how "the rates and amplitudes of the
variations" should drive the update interval).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tree.model import Client, Tree

__all__ = [
    "EvolutionModel",
    "RedrawRequests",
    "RandomWalkRequests",
    "HotspotShift",
]


class EvolutionModel(Protocol):
    """Produces the next workload from the current one."""

    def evolve(self, tree: Tree, rng: np.random.Generator) -> Tree: ...


@dataclass(frozen=True)
class RedrawRequests:
    """Redraw every client's volume uniformly (Experiment 2's model)."""

    request_range: tuple[int, int] = (1, 6)

    def __post_init__(self) -> None:
        lo, hi = self.request_range
        if lo < 1 or hi < lo:
            raise ConfigurationError(
                f"request_range must satisfy 1 <= lo <= hi, got {self.request_range}"
            )

    def evolve(self, tree: Tree, rng: np.random.Generator) -> Tree:
        lo, hi = self.request_range
        draws = rng.integers(lo, hi + 1, size=tree.n_clients)
        return tree.with_clients(
            c.with_requests(int(r)) for c, r in zip(tree.clients, draws, strict=True)
        )


@dataclass(frozen=True)
class RandomWalkRequests:
    """Per-client ±step random walk, clipped to ``[minimum, maximum]``.

    Produces *small-amplitude* variation — the regime where lazy update
    strategies should win (§6).
    """

    step: int = 1
    minimum: int = 1
    maximum: int = 6

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ConfigurationError(f"step must be >= 0, got {self.step}")
        if not (1 <= self.minimum <= self.maximum):
            raise ConfigurationError(
                f"need 1 <= minimum <= maximum, got [{self.minimum}, {self.maximum}]"
            )

    def evolve(self, tree: Tree, rng: np.random.Generator) -> Tree:
        deltas = rng.integers(-self.step, self.step + 1, size=tree.n_clients)
        new_clients = []
        for c, d in zip(tree.clients, deltas, strict=True):
            r = int(np.clip(c.requests + int(d), self.minimum, self.maximum))
            new_clients.append(c.with_requests(r))
        return tree.with_clients(new_clients)


@dataclass(frozen=True)
class HotspotShift:
    """Move demand towards one random subtree (popularity shift).

    Clients inside the chosen hotspot subtree draw from the *hot* range,
    everyone else from the *cold* range — large-amplitude, localised
    variation, the regime where systematic updates pay off.
    """

    hot_range: tuple[int, int] = (4, 6)
    cold_range: tuple[int, int] = (1, 2)

    def __post_init__(self) -> None:
        for name, (lo, hi) in (("hot", self.hot_range), ("cold", self.cold_range)):
            if lo < 1 or hi < lo:
                raise ConfigurationError(
                    f"{name}_range must satisfy 1 <= lo <= hi, got {(lo, hi)}"
                )

    def evolve(self, tree: Tree, rng: np.random.Generator) -> Tree:
        hotspot = int(rng.integers(0, tree.n_nodes))
        hot_nodes = set(tree.subtree_nodes(hotspot))
        new_clients = []
        for c in tree.clients:
            lo, hi = self.hot_range if c.node in hot_nodes else self.cold_range
            new_clients.append(c.with_requests(int(rng.integers(lo, hi + 1))))
        return tree.with_clients(new_clients)
