"""MinCost-WithPre — the paper's optimal update algorithm (§3, Theorem 1).

Given a tree with pre-existing servers ``E``, find the replica set ``R``
minimising ``cost(R) = R + (R-e)·create + (E-e)·delete`` (Equation 2), or
any user-supplied cost of ``(servers, reused, pre-existing)``.

This implements Algorithms 1–4 of the paper:

* ``init`` / ``main`` (Algorithms 1–2) become a single post-order pass that
  allocates per-node tables ``minr_j[e, n]`` — the minimal number of
  requests traversing ``j`` when exactly ``e`` pre-existing and ``n`` new
  servers are used *strictly inside* ``subtree_j``.  Infeasible cells hold
  the sentinel ``W + 1`` exactly as in Algorithm 1.
* ``merge`` (Algorithm 3) becomes a 2-D min-plus convolution between the
  accumulated table of ``j`` and each child's *offer* table (child kept
  replica-free, or hosting a reused / new replica that absorbs its
  residual flow).  The convolution iterates over the (small) child offer
  and updates the accumulator with vectorised numpy slices; argmins are
  recorded for reconstruction.
* ``replica-update`` (Algorithm 4) scans the root table, prices every
  ``(e, n)`` cell — adding a root replica when requests remain — and keeps
  the cheapest.  We additionally price the "reuse the root as an idle
  server" option (never chosen when ``delete < 1``, i.e. in every paper
  configuration, but required for exactness under exotic cost models where
  deletions cost more than keeping a server).

Two deviations from the pseudo-code, both output-preserving:

* tables are bounded by the *subtree contents* (``e ≤ |E ∩ subtree_j|``,
  ``n ≤ |subtree_j|``) instead of the global ``(E+1)×(N-E+1)`` bound — the
  classic small-to-large argument; values are identical where both exist,
  and out-of-bound cells are provably infeasible;
* instead of the O(N) ``req`` vectors per cell we store per-merge argmin
  backpointers and rebuild the placement by unwinding merges (§3.3 notes
  the same optimisation for the cost; we extend it to reconstruction).

Worst-case complexity matches Theorem 1: O(N · (N-E+1)² · (E+1)²) ⊆ O(N⁵).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable
from typing import TYPE_CHECKING, Protocol

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.stats import CoreDPStats

from repro.exceptions import ConfigurationError, InfeasibleError, SolverError
from repro.core.costs import UniformCostModel
from repro.core.solution import PlacementResult
from repro.tree.model import Tree
from repro.tree.validate import check_preexisting

__all__ = ["replica_update", "CostLike", "RootChoice"]

PLACED_NONE = 0
PLACED_REUSED = 1
PLACED_NEW = 2


class CostLike(Protocol):
    """Anything pricing ``(n_servers, n_reused, n_preexisting)`` triples."""

    def total(self, n_servers: int, n_reused: int, n_preexisting: int) -> float: ...


@dataclass(frozen=True)
class RootChoice:
    """Selected root-table cell (diagnostic payload on the result)."""

    e: int
    n: int
    residual: int
    root_replica: bool


def _offer_table(
    child_table: np.ndarray, is_pre: bool, capacity: int
) -> tuple[np.ndarray, np.ndarray]:
    """Extend a child's table with the replica-on-child options.

    Offer cell ``(de, dn)`` is the best flow the child branch contributes
    when it uses ``de`` pre-existing and ``dn`` new servers *including* a
    possible replica on the child itself.  ``placed`` records which option
    produced the value (Algorithm 3, lines 11 / 16 / 23).
    """
    inf = capacity + 1
    re_, rn = child_table.shape
    if is_pre:
        offer = np.full((re_ + 1, rn), inf, dtype=np.int64)
        placed = np.zeros((re_ + 1, rn), dtype=np.int8)
        offer[:re_, :] = child_table
        region = offer[1:, :]
        mask = (child_table <= capacity) & (region > 0)
        region[mask] = 0
        placed[1:, :][mask] = PLACED_REUSED
    else:
        offer = np.full((re_, rn + 1), inf, dtype=np.int64)
        placed = np.zeros((re_, rn + 1), dtype=np.int8)
        offer[:, :rn] = child_table
        region = offer[:, 1:]
        mask = (child_table <= capacity) & (region > 0)
        region[mask] = 0
        placed[:, 1:][mask] = PLACED_NEW
    return offer, placed


def _merge(
    acc: np.ndarray,
    offer: np.ndarray,
    offer_placed: np.ndarray,
    capacity: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """2-D min-plus convolution of the accumulator with a child offer.

    Returns ``(table, choice_e, choice_n, choice_placed)`` where the choice
    arrays record, for every output cell, how many (pre-existing, new)
    servers were attributed to the child branch and whether the child itself
    hosts a replica.
    """
    inf = capacity + 1
    ea, na = acc.shape
    oe, on = offer.shape
    out = np.full((ea + oe - 1, na + on - 1), inf, dtype=np.int64)
    ch_e = np.zeros(out.shape, dtype=np.int16)
    ch_n = np.zeros(out.shape, dtype=np.int16)
    ch_p = np.zeros(out.shape, dtype=np.int8)
    for de in range(oe):
        row = offer[de]
        for dn in range(on):
            val = row[dn]
            if val > capacity:
                continue
            cand = acc + val
            cand[cand > capacity] = inf
            region = out[de : de + ea, dn : dn + na]
            better = cand < region
            if better.any():
                region[better] = cand[better]
                ch_e[de : de + ea, dn : dn + na][better] = de
                ch_n[de : de + ea, dn : dn + na][better] = dn
                ch_p[de : de + ea, dn : dn + na][better] = offer_placed[de, dn]
    return out, ch_e, ch_n, ch_p


def replica_update(
    tree: Tree,
    capacity: int,
    preexisting: Iterable[int] = (),
    cost_model: CostLike | None = None,
    *,
    stats: CoreDPStats | None = None,
) -> PlacementResult:
    """Solve MinCost-WithPre optimally (paper Algorithm 4, ``replica-update``).

    Parameters
    ----------
    tree, capacity:
        The instance; ``capacity`` is the uniform server capacity ``W``.
    preexisting:
        The set ``E`` of nodes already hosting a replica.
    cost_model:
        Defaults to the paper's Equation 2 with ``create=0.1``,
        ``delete=0.01``; any object with a
        ``total(n_servers, n_reused, n_preexisting)`` method works
        ("the total cost is an arbitrary function of the number of existing
        servers that are reused, and of the number of new servers", §1).
    stats:
        Optional :class:`repro.perf.CoreDPStats` collector; when given it
        accumulates table-size statistics (negligible overhead).

    Returns
    -------
    PlacementResult
        Optimal placement with reuse/creation/deletion bookkeeping, total
        cost, and the selected root cell in ``extra["root_choice"]``.

    Raises
    ------
    InfeasibleError
        When no valid placement exists (some direct client load exceeds
        ``capacity``).
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    eset = check_preexisting(tree, preexisting)
    model: CostLike = cost_model if cost_model is not None else UniformCostModel()
    inf = capacity + 1
    n = tree.n_nodes

    tables: list[np.ndarray | None] = [None] * n
    choices: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
        [] for _ in range(n)
    ]

    for v in tree.post_order():
        j = int(v)
        load = tree.client_load(j)
        if load > capacity:
            raise InfeasibleError(
                f"direct client load {load} at node {j} exceeds W={capacity}",
                node=j,
            )
        acc = np.array([[load]], dtype=np.int64)
        for child in tree.children(j):
            child_table = tables[child]
            assert child_table is not None
            offer, offer_placed = _offer_table(
                child_table, child in eset, capacity
            )
            acc, ch_e, ch_n, ch_p = _merge(acc, offer, offer_placed, capacity)
            choices[j].append((ch_e, ch_n, ch_p))
            tables[child] = None  # free early; reconstruction uses choices only
            if stats is not None:
                stats.record_merge(acc.shape[0], acc.shape[1])
        tables[j] = acc

    root = tree.root
    root_table = tables[root]
    assert root_table is not None
    n_pre = len(eset)
    root_is_pre = root in eset

    best_cost: float | None = None
    best: RootChoice | None = None

    def consider(cost: float, choice: RootChoice) -> None:
        nonlocal best_cost, best
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best = choice

    er, nr = root_table.shape
    for e in range(er):
        for nn in range(nr):
            f = int(root_table[e, nn])
            if f > capacity:
                continue
            if f == 0:
                consider(
                    model.total(e + nn, e, n_pre),
                    RootChoice(e, nn, 0, root_replica=False),
                )
                if root_is_pre:
                    # Idle reused root (never optimal when delete < 1; see
                    # module docstring).
                    consider(
                        model.total(e + nn + 1, e + 1, n_pre),
                        RootChoice(e, nn, 0, root_replica=True),
                    )
            else:
                if root_is_pre:
                    consider(
                        model.total(e + nn + 1, e + 1, n_pre),
                        RootChoice(e, nn, f, root_replica=True),
                    )
                else:
                    consider(
                        model.total(e + nn + 1, e, n_pre),
                        RootChoice(e, nn, f, root_replica=True),
                    )

    if best is None or best_cost is None:
        raise InfeasibleError("no valid replica placement exists")

    replicas = _reconstruct(tree, choices, root, best.e, best.n)
    if best.root_replica:
        replicas.append(root)
    expected = best.e + best.n + (1 if best.root_replica else 0)
    if len(replicas) != expected:
        raise SolverError(
            f"reconstructed {len(replicas)} replicas, expected {expected}"
        )
    return PlacementResult.from_replicas(
        tree,
        replicas,
        capacity,
        preexisting=eset,
        cost=float(best_cost),
        extra={"root_choice": best},
    )


def _reconstruct(
    tree: Tree,
    choices: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    node: int,
    e: int,
    n: int,
) -> list[int]:
    """Unwind the per-merge argmin records into an explicit replica set."""
    replicas: list[int] = []
    stack: list[tuple[int, int, int]] = [(node, e, n)]
    while stack:
        j, be, bn = stack.pop()
        children = tree.children(j)
        for idx in range(len(children) - 1, -1, -1):
            ch_e, ch_n, ch_p = choices[j][idx]
            de = int(ch_e[be, bn])
            dn = int(ch_n[be, bn])
            flag = int(ch_p[be, bn])
            child = children[idx]
            if flag == PLACED_REUSED:
                replicas.append(child)
                stack.append((child, de - 1, dn))
            elif flag == PLACED_NEW:
                replicas.append(child)
                stack.append((child, de, dn - 1))
            else:
                stack.append((child, de, dn))
            be -= de
            bn -= dn
        if be != 0 or bn != 0:
            raise SolverError(
                f"backtracking left budget (e={be}, n={bn}) at node {j}; "
                "DP tables corrupt"
            )
    return replicas
