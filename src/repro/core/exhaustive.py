"""Exhaustive oracles for small instances.

These brute-force solvers enumerate every subset of internal nodes and are
used by the test-suite as ground truth for the dynamic programs, the greedy
baseline and the power solvers.  They are exponential by construction and
guarded against accidental use on large trees.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Iterator

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import CostLike
from repro.core.solution import PlacementResult, evaluate_placement
from repro.tree.model import Tree

__all__ = [
    "iter_valid_placements",
    "exhaustive_min_replicas",
    "exhaustive_min_cost",
]

_MAX_NODES = 18


def _guard(tree: Tree) -> None:
    if tree.n_nodes > _MAX_NODES:
        raise ConfigurationError(
            f"exhaustive solvers are capped at {_MAX_NODES} internal nodes "
            f"(got {tree.n_nodes}); use the dynamic programs instead"
        )


def iter_valid_placements(
    tree: Tree, capacity: int
) -> Iterator[tuple[frozenset[int], dict[int, int]]]:
    """Yield every valid replica set with its per-server loads.

    Enumeration order is by increasing set size, then lexicographic, so the
    first yielded placement has the minimal replica count.
    """
    _guard(tree)
    nodes = range(tree.n_nodes)
    for size in range(tree.n_nodes + 1):
        for combo in combinations(nodes, size):
            check = evaluate_placement(tree, combo, capacity)
            if check.ok:
                yield frozenset(combo), dict(check.loads)


def exhaustive_min_replicas(tree: Tree, capacity: int) -> PlacementResult:
    """Ground-truth MinCost-NoPre solution (minimal replica count)."""
    for replicas, _loads in iter_valid_placements(tree, capacity):
        return PlacementResult.from_replicas(tree, replicas, capacity)
    raise InfeasibleError("no valid replica placement exists")


def exhaustive_min_cost(
    tree: Tree,
    capacity: int,
    preexisting: Iterable[int] = (),
    cost_model: CostLike | None = None,
) -> PlacementResult:
    """Ground-truth MinCost-WithPre solution (minimal Equation-2 cost)."""
    model: CostLike = cost_model if cost_model is not None else UniformCostModel()
    eset = frozenset(int(v) for v in preexisting)
    best: PlacementResult | None = None
    for replicas, _loads in iter_valid_placements(tree, capacity):
        cost = model.total(
            len(replicas), len(replicas & eset), len(eset)
        )
        if best is None or cost < best.cost:  # type: ignore[operator]
            best = PlacementResult.from_replicas(
                tree, replicas, capacity, preexisting=eset, cost=float(cost)
            )
    if best is None:
        raise InfeasibleError("no valid replica placement exists")
    return best
