"""Replica placements under the *closest* service policy.

A solution is a set ``R`` of internal nodes (§2.1).  Each client is served by
the first node on its path to the root that belongs to ``R``; a replica
therefore absorbs *all* unserved requests of its subtree.  This module
computes server loads, client assignments and validity checks (Equation 1:
``req_j <= W`` for every server), and defines the
:class:`PlacementResult` record shared by every solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

import numpy as np

from repro.exceptions import InfeasibleError
from repro.tree.model import Tree

__all__ = [
    "PlacementCheck",
    "PlacementResult",
    "assign_clients",
    "evaluate_placement",
    "server_loads",
    "verify_placement",
]


def server_loads(tree: Tree, replicas: Iterable[int]) -> tuple[dict[int, int], int]:
    """Per-replica served load and the unserved residual at the root.

    Returns ``(loads, unserved)`` where ``loads[v]`` is the number of
    requests processed by replica ``v`` (Equation 1's ``req_v``) and
    ``unserved`` is the request volume no replica absorbs (0 for any valid
    placement).
    """
    in_r = np.zeros(tree.n_nodes, dtype=bool)
    for v in replicas:
        in_r[v] = True
    flow = tree.client_loads.copy()
    loads: dict[int, int] = {}
    for v in tree.post_order():
        vi = int(v)
        if in_r[vi]:
            loads[vi] = int(flow[vi])
            flow[vi] = 0
        p = tree.parent(vi)
        if p is not None:
            flow[p] += flow[vi]
    return loads, int(flow[tree.root])


def assign_clients(tree: Tree, replicas: Iterable[int]) -> list[int | None]:
    """Closest-ancestor server of each client (``None`` when unserved).

    Entry ``i`` corresponds to ``tree.clients[i]``; the walk starts at the
    client's attachment node itself (a replica there serves the client).
    """
    rset = set(replicas)
    out: list[int | None] = []
    for c in tree.clients:
        server: int | None = None
        v: int | None = c.node
        while v is not None:
            if v in rset:
                server = v
                break
            v = tree.parent(v)
        out.append(server)
    return out


@dataclass(frozen=True)
class PlacementCheck:
    """Outcome of validating a replica placement."""

    ok: bool
    loads: Mapping[int, int]
    unserved: int
    overloaded: tuple[int, ...]
    capacity: int

    @property
    def violations(self) -> tuple[str, ...]:
        msgs: list[str] = []
        if self.unserved:
            msgs.append(f"{self.unserved} requests reach the root unserved")
        for v in self.overloaded:
            msgs.append(
                f"replica {v} serves {self.loads[v]} > W={self.capacity} requests"
            )
        return tuple(msgs)


def evaluate_placement(
    tree: Tree, replicas: Iterable[int], capacity: int
) -> PlacementCheck:
    """Check validity of ``replicas`` without raising."""
    loads, unserved = server_loads(tree, replicas)
    overloaded = tuple(sorted(v for v, q in loads.items() if q > capacity))
    ok = unserved == 0 and not overloaded
    return PlacementCheck(
        ok=ok,
        loads=loads,
        unserved=unserved,
        overloaded=overloaded,
        capacity=capacity,
    )


def verify_placement(
    tree: Tree, replicas: Iterable[int], capacity: int
) -> dict[int, int]:
    """Like :func:`evaluate_placement` but raise on an invalid placement."""
    check = evaluate_placement(tree, replicas, capacity)
    if not check.ok:
        raise InfeasibleError(
            "invalid placement: " + "; ".join(check.violations)
        )
    return dict(check.loads)


@dataclass(frozen=True)
class PlacementResult:
    """A solved placement together with its bookkeeping.

    Attributes
    ----------
    replicas:
        The server set ``R``.
    loads:
        Requests served per replica.
    reused:
        ``R ∩ E`` — pre-existing servers kept in the solution.
    created:
        ``R \\ E`` — newly created servers.
    deleted:
        ``E \\ R`` — pre-existing servers removed.
    cost:
        Total cost under the solver's cost model (Equation 2 or 4);
        ``None`` for solvers that do not price solutions.
    """

    replicas: frozenset[int]
    loads: Mapping[int, int]
    reused: frozenset[int] = frozenset()
    created: frozenset[int] = frozenset()
    deleted: frozenset[int] = frozenset()
    cost: float | None = None
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        """Total number of servers ``R`` in the solution."""
        return len(self.replicas)

    @property
    def n_reused(self) -> int:
        return len(self.reused)

    @property
    def n_created(self) -> int:
        return len(self.created)

    @property
    def n_deleted(self) -> int:
        return len(self.deleted)

    @staticmethod
    def from_replicas(
        tree: Tree,
        replicas: Iterable[int],
        capacity: int,
        preexisting: Iterable[int] = (),
        cost: float | None = None,
        extra: Mapping[str, object] | None = None,
    ) -> PlacementResult:
        """Build a result from a raw replica set, verifying validity."""
        rset = frozenset(int(v) for v in replicas)
        eset = frozenset(int(v) for v in preexisting)
        loads = verify_placement(tree, rset, capacity)
        return PlacementResult(
            replicas=rset,
            loads=loads,
            reused=rset & eset,
            created=rset - eset,
            deleted=eset - rset,
            cost=cost,
            extra=dict(extra or {}),
        )
