"""Core replica-placement algorithms (the paper's §3 contribution).

* :func:`~repro.core.greedy.greedy_placement` — GR baseline of [19]
  (minimal replica count, oblivious to pre-existing servers);
* :func:`~repro.core.dp_nopre.dp_nopre_placement` — classical
  MinCost-NoPre dynamic program;
* :func:`~repro.core.dp_withpre.replica_update` — the paper's optimal
  MinCost-WithPre algorithm (Theorem 1);
* :mod:`~repro.core.exhaustive` — brute-force oracles for tests;
* :mod:`~repro.core.solution` / :mod:`~repro.core.costs` — shared
  placement records, validity checks and cost models.
"""

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.core.dp_nopre import dp_min_replicas, dp_nopre_placement
from repro.core.dp_withpre import replica_update
from repro.core.exhaustive import (
    exhaustive_min_cost,
    exhaustive_min_replicas,
    iter_valid_placements,
)
from repro.core.greedy import greedy_min_replicas, greedy_placement
from repro.core.solution import (
    PlacementCheck,
    PlacementResult,
    assign_clients,
    evaluate_placement,
    server_loads,
    verify_placement,
)

__all__ = [
    "ModalCostModel",
    "PlacementCheck",
    "PlacementResult",
    "UniformCostModel",
    "assign_clients",
    "dp_min_replicas",
    "dp_nopre_placement",
    "evaluate_placement",
    "exhaustive_min_cost",
    "exhaustive_min_replicas",
    "greedy_min_replicas",
    "greedy_placement",
    "iter_valid_placements",
    "replica_update",
    "server_loads",
    "verify_placement",
]
