"""Cost models.

Two families, mirroring §2.1 and §2.2 of the paper:

* :class:`UniformCostModel` — Equation 2::

      cost(R) = R + (R - e) * create + (E - e) * delete

  where ``R`` is the number of servers, ``e`` the number of reused
  pre-existing servers and ``E`` the number of pre-existing servers.

* :class:`ModalCostModel` — Equation 4, with per-mode creation/deletion
  costs and a mode-change matrix ``changed[i][i']`` (``changed[i][i] = 0``).

Both expose count-based evaluation (what the dynamic programs optimise) and
placement-based evaluation (used by validators and baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["UniformCostModel", "ModalCostModel"]


@dataclass(frozen=True)
class UniformCostModel:
    """Equation 2 cost model: identical servers, reuse/create/delete prices.

    The paper's running configuration keeps ``create + 2*delete < 1`` so
    that minimising the *number* of servers always dominates (replacing two
    pre-existing servers by one new server is then always advantageous);
    :meth:`prioritizes_server_count` exposes that condition.
    """

    create: float = 0.1
    delete: float = 0.01

    def __post_init__(self) -> None:
        if self.create < 0 or self.delete < 0:
            raise ConfigurationError(
                f"create/delete costs must be non-negative, got "
                f"create={self.create}, delete={self.delete}"
            )

    def total(self, n_servers: int, n_reused: int, n_preexisting: int) -> float:
        """Cost of a solution with ``n_servers`` servers, ``n_reused`` of
        which are reused out of ``n_preexisting`` pre-existing ones."""
        if n_reused > min(n_servers, n_preexisting):
            raise ConfigurationError(
                f"n_reused={n_reused} exceeds servers={n_servers} or "
                f"pre-existing={n_preexisting}"
            )
        n_new = n_servers - n_reused
        n_deleted = n_preexisting - n_reused
        return n_servers + n_new * self.create + n_deleted * self.delete

    def of_placement(
        self, replicas: Iterable[int], preexisting: Iterable[int]
    ) -> float:
        """Cost of an explicit replica set against a pre-existing set."""
        rset = frozenset(replicas)
        eset = frozenset(preexisting)
        return self.total(len(rset), len(rset & eset), len(eset))

    def prioritizes_server_count(self) -> bool:
        """True when ``create + 2*delete < 1`` (paper §2.1)."""
        return self.create + 2.0 * self.delete < 1.0


@dataclass(frozen=True)
class ModalCostModel:
    """Equation 4 cost model for multi-mode servers.

    Parameters
    ----------
    create:
        ``create[i]`` — cost of creating a new server operated at mode ``i``.
    delete:
        ``delete[i]`` — cost of deleting a pre-existing server whose old
        mode was ``i``.
    changed:
        ``changed[i][i']`` — cost of moving a reused pre-existing server
        from old mode ``i`` to new mode ``i'``; the diagonal must be 0.

    Mode indices are 0-based positions in a
    :class:`~repro.power.modes.ModeSet`.
    """

    create: tuple[float, ...]
    delete: tuple[float, ...]
    changed: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        m = len(self.create)
        if m == 0:
            raise ConfigurationError("at least one mode is required")
        if len(self.delete) != m or len(self.changed) != m:
            raise ConfigurationError(
                "create, delete and changed must all cover the same mode count"
            )
        for row in self.changed:
            if len(row) != m:
                raise ConfigurationError("changed must be an MxM matrix")
        for i in range(m):
            if self.changed[i][i] != 0:
                raise ConfigurationError(
                    f"changed[{i}][{i}] must be 0 (keeping a mode is free)"
                )
        if any(c < 0 for c in self.create) or any(d < 0 for d in self.delete):
            raise ConfigurationError("mode costs must be non-negative")
        if any(c < 0 for row in self.changed for c in row):
            raise ConfigurationError("mode-change costs must be non-negative")

    @property
    def n_modes(self) -> int:
        return len(self.create)

    @classmethod
    def uniform(
        cls,
        n_modes: int,
        *,
        create: float = 0.1,
        delete: float = 0.01,
        changed: float = 0.001,
    ) -> ModalCostModel:
        """All-identical per-mode costs (the simplification noted in §2.2).

        Experiment 3 uses ``create=0.1, delete=0.01, changed=0.001``;
        Figure 11 uses ``create=delete=1, changed=0.1``.
        """
        if n_modes < 1:
            raise ConfigurationError(f"n_modes must be >= 1, got {n_modes}")
        chg = tuple(
            tuple(0.0 if i == j else changed for j in range(n_modes))
            for i in range(n_modes)
        )
        return cls(
            create=(create,) * n_modes,
            delete=(delete,) * n_modes,
            changed=chg,
        )

    def total(
        self,
        new_by_mode: Sequence[int],
        reused_by_change: Mapping[tuple[int, int], int] | Sequence[Sequence[int]],
        deleted_by_mode: Sequence[int],
    ) -> float:
        """Equation 4: ``R + Σ create_i n_i + Σ delete_i k_i + Σ changed e``."""
        m = self.n_modes
        if len(new_by_mode) != m or len(deleted_by_mode) != m:
            raise ConfigurationError("count vectors must have one entry per mode")
        e_items = (
            list(reused_by_change.items())
            if isinstance(reused_by_change, Mapping)
            else [
                ((i, j), int(reused_by_change[i][j]))
                for i in range(m)
                for j in range(m)
            ]
        )
        r_total = sum(int(x) for x in new_by_mode) + sum(c for _, c in e_items)
        cost = float(r_total)
        for i in range(m):
            cost += self.create[i] * int(new_by_mode[i])
            cost += self.delete[i] * int(deleted_by_mode[i])
        for (i, j), count in e_items:
            if not (0 <= i < m and 0 <= j < m):
                raise ConfigurationError(f"mode-change pair {(i, j)} out of range")
            cost += self.changed[i][j] * count
        return cost

    def of_modal_placement(
        self,
        server_modes: Mapping[int, int],
        preexisting_modes: Mapping[int, int],
    ) -> float:
        """Cost of an explicit ``{node: new_mode}`` placement.

        ``preexisting_modes`` maps pre-existing servers to their *old* mode.
        """
        m = self.n_modes
        new_by_mode = [0] * m
        deleted_by_mode = [0] * m
        reused: dict[tuple[int, int], int] = {}
        for v, mode in server_modes.items():
            if not (0 <= mode < m):
                raise ConfigurationError(f"server {v} has invalid mode {mode}")
            if v in preexisting_modes:
                key = (preexisting_modes[v], mode)
                reused[key] = reused.get(key, 0) + 1
            else:
                new_by_mode[mode] += 1
        for v, old in preexisting_modes.items():
            if v not in server_modes:
                if not (0 <= old < m):
                    raise ConfigurationError(
                        f"pre-existing server {v} has invalid mode {old}"
                    )
                deleted_by_mode[old] += 1
        return self.total(new_by_mode, reused, deleted_by_mode)
