"""GR — the greedy baseline of Wu, Lin and Liu [19].

This is the algorithm the paper benchmarks against (§5): it returns a
placement with the *minimum number of replicas* for the closest policy, but
it is oblivious to pre-existing servers and to power.

Algorithm
---------
Process internal nodes bottom-up, maintaining for each node the *flow* of
yet-unserved requests leaving its subtree.  After a node's children are
processed every proper descendant carries a flow of at most ``W``.  When the
accumulated flow at node ``j`` exceeds ``W``, replicas must be placed inside
``subtree_j``; because flows only grow towards the root, the absorbing
candidates that matter are ``j``'s children, and placing a replica on the
child with the largest flow maximises absorption per replica.  Repeating
until the flow fits yields the minimal replica count and, for that count,
the minimal flow passed upwards.  Any residual flow at the root is absorbed
by a final replica on the root itself.

Tie-breaking is configurable, which doubles as the "reuse-aware greedy"
heuristic the paper's conclusion suggests (prefer pre-existing servers among
maximal-flow candidates).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Literal

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.core.solution import PlacementResult
from repro.tree.model import Tree

__all__ = ["greedy_placement", "greedy_min_replicas"]

TieBreak = Literal["index", "prefer_preexisting", "random"]


def greedy_placement(
    tree: Tree,
    capacity: int,
    *,
    preexisting: Iterable[int] = (),
    tie_break: TieBreak = "index",
    rng: np.random.Generator | int | None = None,
) -> PlacementResult:
    """Minimum-replica placement via the GR greedy of [19].

    Parameters
    ----------
    tree, capacity:
        The instance; ``capacity`` is the uniform server capacity ``W``.
    preexisting:
        Only used for bookkeeping (reuse/deletion counts in the result) and
        by the ``prefer_preexisting`` tie-break; the baseline itself ignores
        it, exactly as in the paper's experiments.
    tie_break:
        ``"index"`` (deterministic, smallest node id), ``"prefer_preexisting"``
        (reuse-aware variant, §6 future work) or ``"random"``.

    Raises
    ------
    InfeasibleError
        When some node's direct client load exceeds ``capacity``.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if tie_break not in ("index", "prefer_preexisting", "random"):
        raise ConfigurationError(f"unknown tie_break {tie_break!r}")
    eset = frozenset(int(v) for v in preexisting)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    n = tree.n_nodes
    flow = tree.client_loads.astype(np.int64).copy()
    replicas: list[int] = []

    def pick(candidates: list[int]) -> int:
        """Choose among children with maximal flow according to tie_break."""
        best_flow = max(int(flow[c]) for c in candidates)
        top = [c for c in candidates if int(flow[c]) == best_flow]
        if len(top) == 1:
            return top[0]
        if tie_break == "prefer_preexisting":
            pre = [c for c in top if c in eset]
            if pre:
                top = pre
        if tie_break == "random":
            return int(top[int(gen.integers(0, len(top)))])
        return min(top)

    for v in tree.post_order():
        j = int(v)
        children = tree.children(j)
        for c in children:
            flow[j] += flow[c]
        while flow[j] > capacity:
            candidates = [c for c in children if flow[c] > 0]
            if not candidates:
                raise InfeasibleError(
                    f"direct client load {int(flow[j])} at node {j} exceeds "
                    f"W={capacity}; no placement can serve these clients",
                    node=j,
                )
            chosen = pick(candidates)
            replicas.append(chosen)
            flow[j] -= flow[chosen]
            flow[chosen] = 0
    if flow[tree.root] > 0:
        replicas.append(tree.root)
        flow[tree.root] = 0

    return PlacementResult.from_replicas(
        tree, replicas, capacity, preexisting=eset
    )


def greedy_min_replicas(tree: Tree, capacity: int) -> int:
    """Convenience: just the minimal replica count found by GR."""
    return greedy_placement(tree, capacity).n_replicas
