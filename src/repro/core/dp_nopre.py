"""MinCost-NoPre — classical dynamic program (no pre-existing servers).

This is the O(N²)-style algorithm the paper attributes to Cidon et al. [6]:
for each node ``j`` and each replica budget ``k`` spent strictly inside
``subtree_j``, compute the minimal number of requests that must traverse
``j`` upwards.  Merging a child is a 1-D min-plus convolution extended with
the option of placing a replica *on* the child (which absorbs the child's
residual flow).

The table at ``j`` is bounded by the number of internal nodes strictly
inside ``subtree_j`` (small-to-large), so the whole run is O(N²) time in the
worst case and much less on the bushy trees of the experiments.

The module exists both as the classical baseline and as an independent
cross-check of :mod:`repro.core.dp_withpre` (whose ``E = ∅`` specialisation
must agree everywhere); tests exploit that redundancy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError, SolverError
from repro.core.solution import PlacementResult
from repro.tree.model import Tree

__all__ = ["dp_min_replicas", "dp_nopre_placement"]

_PLACED_NONE = 0
_PLACED_NEW = 2  # matches the flag convention of dp_withpre


def _merge(
    acc: np.ndarray,
    child: np.ndarray,
    capacity: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Min-plus merge of an accumulator table with one child's offer.

    ``child`` is the child's raw table (flow by replica count, *excluding*
    the child node).  The offer extends it with "replica on the child"
    (flow 0, one extra replica).  Returns ``(new_table, choice_k, placed)``
    where ``choice_k[k]`` is the number of replicas attributed to the child
    subtree (including the child itself when ``placed[k]``).
    """
    inf = capacity + 1
    nc = child.shape[0]
    # offer[d] = best flow contribution of the child branch with d replicas.
    offer = np.full(nc + 1, inf, dtype=np.int64)
    offer_placed = np.zeros(nc + 1, dtype=np.int8)
    offer[:nc] = child
    feasible = child <= capacity
    place_better = np.zeros(nc + 1, dtype=bool)
    place_better[1:] = feasible & (offer[1:] > 0)
    offer[place_better] = 0
    offer_placed[place_better] = _PLACED_NEW

    na = acc.shape[0]
    out = np.full(na + nc, inf, dtype=np.int64)
    choice_k = np.zeros(na + nc, dtype=np.int64)
    placed = np.zeros(na + nc, dtype=np.int8)
    for d in range(nc + 1):
        if offer[d] > capacity:
            continue
        cand = acc + offer[d]
        np.minimum(cand, inf, out=cand)
        cand[cand > capacity] = inf
        region = out[d : d + na]
        better = cand < region
        if better.any():
            region[better] = cand[better]
            choice_k[d : d + na][better] = d
            placed[d : d + na][better] = offer_placed[d]
    return out, choice_k, placed


def dp_nopre_placement(tree: Tree, capacity: int) -> PlacementResult:
    """Optimal (minimum replica count) placement without pre-existing servers.

    Raises :class:`InfeasibleError` when some node's direct client load
    exceeds ``capacity``.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    inf = capacity + 1
    n = tree.n_nodes
    tables: list[np.ndarray | None] = [None] * n
    # choices[j] = list over merge steps of (choice_k, placed) arrays.
    choices: list[list[tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(n)]

    for v in tree.post_order():
        j = int(v)
        load = tree.client_load(j)
        if load > capacity:
            raise InfeasibleError(
                f"direct client load {load} at node {j} exceeds W={capacity}",
                node=j,
            )
        acc = np.array([load], dtype=np.int64)
        for child in tree.children(j):
            acc, choice_k, placed = _merge(acc, tables[child], capacity)
            choices[j].append((choice_k, placed))
            tables[child] = None  # free child memory early
        acc[acc > capacity] = inf
        tables[j] = acc

    root_table = tables[tree.root]
    assert root_table is not None
    best_total = None
    best_k = None
    root_replica = False
    for k in range(root_table.shape[0]):
        f = int(root_table[k])
        if f > capacity:
            continue
        total = k if f == 0 else k + 1
        if best_total is None or total < best_total:
            best_total = total
            best_k = k
            root_replica = f > 0
    if best_total is None:
        raise InfeasibleError("no valid replica placement exists")

    replicas = _reconstruct(tree, choices, tree.root, best_k)
    if root_replica:
        replicas.append(tree.root)
    if len(replicas) != best_total:
        raise SolverError(
            f"reconstructed {len(replicas)} replicas, expected {best_total}"
        )
    return PlacementResult.from_replicas(tree, replicas, capacity)


def _reconstruct(
    tree: Tree,
    choices: list[list[tuple[np.ndarray, np.ndarray]]],
    node: int,
    k: int,
) -> list[int]:
    """Unwind merge backpointers to recover the replica set."""
    replicas: list[int] = []
    stack: list[tuple[int, int]] = [(node, k)]
    while stack:
        j, budget = stack.pop()
        children = tree.children(j)
        for idx in range(len(children) - 1, -1, -1):
            choice_k, placed = choices[j][idx]
            d = int(choice_k[budget])
            flag = int(placed[budget])
            child = children[idx]
            if flag == _PLACED_NEW:
                replicas.append(child)
                stack.append((child, d - 1))
            else:
                stack.append((child, d))
            budget -= d
        if budget != 0:
            raise SolverError(
                f"backtracking left budget {budget} at node {j}; DP tables corrupt"
            )
    return replicas


def dp_min_replicas(tree: Tree, capacity: int) -> int:
    """Minimal replica count (classical MinCost-NoPre objective)."""
    return dp_nopre_placement(tree, capacity).n_replicas
