"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------
``generate``
    Emit a random distribution tree (paper's §5 generator) as JSON.
``solve``
    Solve MinCost on a tree file with the DP or the GR baseline.
``batch``
    Solve many instances at once with canonical dedupe, result caching
    and an optional process pool (see :mod:`repro.batch`).
``serve`` / ``cluster`` / ``client``
    Long-lived coalescing batch server over JSON-lines TCP, the
    digest-routed multi-worker cluster router, and the matching
    pipelined client (see :mod:`repro.serve`).
``power``
    Print the exact cost/power frontier (and optionally the placement for
    one bound).
``dynamics``
    Multi-step update sessions (Experiment 2's engine) with an explicit
    ``--seed``; ``--incremental`` drives the live delta re-solve engine
    (:mod:`repro.dynamics.incremental`) over a random churn sequence.
``exp1`` / ``exp2`` / ``exp3``
    Run the paper's experiments at a configurable scale and render the
    corresponding figure as ASCII + a data table (optionally CSV).
``scaling``
    Time the solver regimes at the paper's reference sizes.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import dataclasses
import json
import os
import signal
import sys
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.analysis import bar_plot, format_table, line_plot, render_tree, to_csv
from repro.batch import (
    ResultCache,
    available_solvers,
    batch_from_json,
    get_policy,
    random_batch,
    solve_batch,
)
from repro.dynamics import plan_migration
from repro.core.costs import ModalCostModel, UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.exceptions import ConfigurationError, ReproError
from repro.lint import runner as lint_runner
from repro.experiments import (
    Exp1Config,
    Exp2Config,
    Exp3Config,
    make_preset,
    preset_names,
    run_experiment1,
    run_experiment1_parallel,
    run_experiment2,
    run_experiment2_parallel,
    run_experiment3,
    run_experiment3_parallel,
    run_scaling,
)
from repro.power.dp_power_pareto import power_frontier
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree
from repro.tree.serialize import tree_from_json, tree_to_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Power-aware replica placement and update strategies in tree "
            "networks (Benoit, Renaud-Goud, Robert) - reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a random tree as JSON")
    g.add_argument("--nodes", type=int, default=100)
    g.add_argument("--children", type=int, nargs=2, default=(6, 9), metavar=("LO", "HI"))
    g.add_argument("--client-prob", type=float, default=0.5)
    g.add_argument("--requests", type=int, nargs=2, default=(1, 6), metavar=("LO", "HI"))
    g.add_argument(
        "--preset", type=str, default=None,
        help=f"named workload ({', '.join(preset_names())}); overrides the "
        "other shape options",
    )
    g.add_argument("--seed", type=int, default=None)
    g.add_argument("-o", "--output", type=str, default="-")

    s = sub.add_parser("solve", help="solve MinCost on a tree JSON file")
    s.add_argument("tree", type=str, help="tree JSON path ('-' for stdin)")
    s.add_argument("--capacity", type=int, default=10)
    s.add_argument("--algorithm", choices=("dp", "greedy"), default="dp")
    s.add_argument("--preexisting", type=str, default="", help="comma-separated node ids")
    s.add_argument("--random-preexisting", type=int, default=None, metavar="E")
    s.add_argument("--seed", type=int, default=None)
    s.add_argument("--create", type=float, default=0.1)
    s.add_argument("--delete", type=float, default=0.01)
    s.add_argument("--show", action="store_true", help="render the placement as an ASCII tree")
    s.add_argument("--plan", action="store_true", help="print the migration plan from the pre-existing set")

    b = sub.add_parser(
        "batch",
        help="solve many instances with canonical dedupe and caching",
    )
    b.add_argument(
        "file", nargs="?", default=None,
        help="batch JSON path ('-' for stdin); omit when using --demo",
    )
    b.add_argument(
        "--demo", type=int, default=None, metavar="N",
        help="generate a synthetic batch of N instances instead of reading a file",
    )
    b.add_argument(
        "--duplicate-rate", type=float, default=0.5,
        help="fraction of relabelled duplicate instances in --demo batches",
    )
    b.add_argument("--nodes", type=int, default=60, help="tree size for --demo")
    b.add_argument("--seed", type=int, default=None)
    b.add_argument(
        "--solver", choices=available_solvers(), default="dp",
        help="registered solver policy (see repro.batch.registry)",
    )
    b.add_argument("--workers", type=int, default=1, help="process-pool size")
    b.add_argument(
        "--cache-dir", type=str, default=None,
        help="directory for the persistent result store (sharded JSONL)",
    )
    b.add_argument(
        "--lru-size", type=int, default=4096,
        help="in-memory cache capacity (entries)",
    )
    b.add_argument(
        "--disk-size", type=int, default=None, metavar="N",
        help="disk-store budget (entries); LRU digests are evicted and "
        "their shards compacted when exceeded",
    )
    b.add_argument(
        "--modes", type=str, default="5,10",
        help="mode capacities for power policies (instances without a "
        "power model get this one)",
    )
    b.add_argument("--alpha", type=float, default=3.0)
    b.add_argument("--static", type=float, default=12.5)
    b.add_argument(
        "--bound", type=str, default=None, metavar="B1,B2,...",
        help="with --solver power_frontier: answer MinPower-BoundedCost "
        "for each cost bound per instance from its one cached frontier "
        "record (Experiment-3-style sweep)",
    )
    b.add_argument(
        "--stats", action="store_true",
        help="print aggregated Pareto-DP kernel counters (labels created/"
        "generated/rejected, memo hits, per-kernel solve counts) from the "
        "solved records as JSON",
    )
    b.add_argument(
        "--kernel", choices=("array", "tuple"), default=None,
        help="Pareto-DP engine for the power policies (default: array; "
        "tuple is the byte-identity oracle; REPRO_POWER_KERNEL also works)",
    )
    b.add_argument(
        "--solve-timeout", type=float, default=None, metavar="SECS",
        help="wall-clock deadline per supervised solve wave; a hung chunk "
        "kills and rebuilds the pool, quarantines the offending digest and "
        "reports a typed timeout error (default: no deadline)",
    )

    v = sub.add_parser(
        "serve",
        help="run the long-lived coalescing batch server (JSON lines / TCP)",
    )
    v.add_argument("--host", type=str, default="127.0.0.1")
    v.add_argument(
        "--port", type=int, default=8571,
        help="TCP port (0 binds an ephemeral port; the choice is printed)",
    )
    v.add_argument("--workers", type=int, default=1, help="process-pool size")
    v.add_argument(
        "--max-batch", type=int, default=32,
        help="instances per micro-batch drained through solve_batch",
    )
    v.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="linger (ms) letting a burst accumulate into one micro-batch",
    )
    v.add_argument(
        "--cache-dir", type=str, default=None,
        help="directory for the persistent result store (sharded JSONL)",
    )
    v.add_argument("--lru-size", type=int, default=4096)
    v.add_argument("--disk-size", type=int, default=None, metavar="N")
    v.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="admission bound on pending canonical solves; excess load is "
        "shed with a retriable 'overloaded' error (default: unbounded)",
    )
    v.add_argument(
        "--kernel", choices=("array", "tuple"), default=None,
        help="Pareto-DP engine for the power policies (default: array; "
        "tuple is the byte-identity oracle; REPRO_POWER_KERNEL also works)",
    )
    v.add_argument(
        "--solve-timeout", type=float, default=None, metavar="SECS",
        help="wall-clock deadline per supervised solve wave; hung solves "
        "answer with a retriable 'timeout' error, the pool is rebuilt and "
        "the digest quarantined (default: no deadline)",
    )

    u = sub.add_parser(
        "cluster",
        help="run the digest-routed multi-worker serving cluster "
        "(router + N spawned workers)",
    )
    u.add_argument("--host", type=str, default="127.0.0.1")
    u.add_argument(
        "--port", type=int, default=8570,
        help="front TCP port (0 binds an ephemeral port; the choice is "
        "printed)",
    )
    u.add_argument(
        "--cluster-workers", type=int, default=3, metavar="N",
        help="fleet size: number of serve workers behind the router",
    )
    u.add_argument(
        "--backend", choices=("subprocess", "inprocess"),
        default="subprocess",
        help="spawner backend: 'subprocess' runs each worker as a real "
        "'repro serve' process (parallel solves); 'inprocess' runs them "
        "on the router's event loop (diagnostics/tests)",
    )
    u.add_argument(
        "--fallbacks", type=int, default=1,
        help="extra ring owners tried after the primary sheds or dies",
    )
    u.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="per-worker admission bound (the cluster's backpressure; "
        "0 = unbounded)",
    )
    u.add_argument("--workers", type=int, default=1,
                   help="process-pool size inside each worker")
    u.add_argument("--max-batch", type=int, default=32)
    u.add_argument("--max-delay-ms", type=float, default=2.0)
    u.add_argument(
        "--cache-dir", type=str, default=None,
        help="base directory for persistent caches; each worker owns the "
        "disjoint subdirectory <cache-dir>/<worker-name>",
    )
    u.add_argument("--lru-size", type=int, default=4096)
    u.add_argument("--disk-size", type=int, default=None, metavar="N")
    u.add_argument(
        "--kernel", choices=("array", "tuple"), default=None,
        help="Pareto-DP engine forwarded to every worker",
    )
    u.add_argument(
        "--solve-timeout", type=float, default=None, metavar="SECS",
        help="per-worker wall-clock deadline for one supervised solve "
        "wave (forwarded to every worker; default: no deadline)",
    )

    c = sub.add_parser(
        "client",
        help="send a batch to a running server and print the responses",
    )
    c.add_argument(
        "file", nargs="?", default=None,
        help="batch JSON path ('-' for stdin); omit with --demo or when "
        "only --stats/--shutdown is wanted",
    )
    c.add_argument("--host", type=str, default="127.0.0.1")
    c.add_argument("--port", type=int, default=8571)
    c.add_argument("--demo", type=int, default=None, metavar="N")
    c.add_argument("--duplicate-rate", type=float, default=0.5)
    c.add_argument("--nodes", type=int, default=60)
    c.add_argument("--seed", type=int, default=None)
    c.add_argument(
        "--solver", choices=available_solvers(), default="dp",
        help="solver policy to request",
    )
    c.add_argument("--priority", type=int, default=0)
    c.add_argument("--modes", type=str, default="5,10")
    c.add_argument("--alpha", type=float, default=3.0)
    c.add_argument("--static", type=float, default=12.5)
    c.add_argument(
        "--stats", action="store_true",
        help="print the server's serving stats as JSON afterwards",
    )
    c.add_argument(
        "--perf", action="store_true",
        help="print serving stats plus aggregated Pareto-DP kernel "
        "counters (labels created/generated/rejected, memo hits) as JSON",
    )
    c.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to drain and stop afterwards",
    )
    c.add_argument(
        "--session", type=int, default=None, metavar="STEPS",
        help="open a live incremental session on one --nodes/--seed demo "
        "power instance and stream STEPS random delta batches through it",
    )
    c.add_argument(
        "--kernel", choices=("array", "tuple"), default=None,
        help="Pareto-DP engine requested for --session (server default "
        "otherwise)",
    )
    c.add_argument(
        "--cluster", action="store_true",
        help="the server is a cluster router: print the per-worker "
        "health/overload table from its perf op",
    )
    c.add_argument(
        "--retries", type=int, default=0,
        help="retry budget for retriable failures only ('overloaded', "
        "'timeout', torn connections); exponential backoff with jitter "
        "(default: no retries)",
    )
    c.add_argument(
        "--deadline", type=float, default=None, metavar="SECS",
        help="overall per-request deadline bounding the retry schedule "
        "(default: unbounded)",
    )

    d = sub.add_parser(
        "dynamics",
        help="multi-step update sessions / live incremental re-solve engine",
    )
    d.add_argument("--nodes", type=int, default=100)
    d.add_argument("--steps", type=int, default=10)
    d.add_argument("--seed", type=int, default=None)
    d.add_argument("--capacity", type=int, default=10)
    d.add_argument(
        "--evolution", choices=("redraw", "walk", "hotspot"),
        default="redraw",
        help="workload evolution between steps (session mode)",
    )
    d.add_argument(
        "--incremental", action="store_true",
        help="drive the incremental delta re-solve engine over a random "
        "churn sequence instead of the Experiment-2 session tracks",
    )
    d.add_argument(
        "--deltas-per-step", type=int, default=1,
        help="churn deltas batched into each incremental step",
    )
    d.add_argument(
        "--kernel", choices=("array", "tuple"), default=None,
        help="Pareto-DP engine for --incremental (default: array)",
    )
    d.add_argument(
        "--verify", action="store_true",
        help="cross-check every incremental frontier against a cold solve "
        "(byte-identity)",
    )
    d.add_argument("--modes", type=str, default="5,10")
    d.add_argument("--alpha", type=float, default=3.0)
    d.add_argument("--static", type=float, default=12.5)
    d.add_argument("--create", type=float, default=0.1)
    d.add_argument("--delete", type=float, default=0.01)
    d.add_argument("--changed", type=float, default=0.001)
    d.add_argument("--csv", type=str, default=None)

    p = sub.add_parser("power", help="print the cost/power frontier of a tree")
    p.add_argument("tree", type=str)
    p.add_argument("--modes", type=str, default="5,10", help="comma-separated capacities")
    p.add_argument("--alpha", type=float, default=3.0)
    p.add_argument("--static", type=float, default=12.5)
    p.add_argument("--create", type=float, default=0.1)
    p.add_argument("--delete", type=float, default=0.01)
    p.add_argument("--changed", type=float, default=0.001)
    p.add_argument(
        "--preexisting", type=str, default="",
        help="node:mode pairs, e.g. '3:1,7:0'",
    )
    p.add_argument("--bound", type=float, default=None)

    for name, helptext in (
        ("exp1", "Experiment 1 / Figures 4 & 6 (reuse vs E)"),
        ("exp2", "Experiment 2 / Figures 5 & 7 (dynamic updates)"),
        ("exp3", "Experiment 3 / Figures 8-11 (power under cost bounds)"),
    ):
        e = sub.add_parser(name, help=helptext)
        e.add_argument("--trees", type=int, default=20)
        e.add_argument("--high-trees", action="store_true")
        e.add_argument("--seed", type=int, default=None)
        e.add_argument("--csv", type=str, default=None)
        e.add_argument(
            "--workers", type=int, default=1,
            help="process-pool size (results differ from sequential runs "
            "only through per-chunk RNG streams)",
        )
        if name == "exp3":
            e.add_argument("--no-preexisting", action="store_true")
            e.add_argument("--expensive-costs", action="store_true")

    sub.add_parser("scaling", help="time the solvers at the paper's sizes")

    lint = sub.add_parser(
        "lint",
        help="run the project-specific static analysis (repro.lint)",
    )
    lint_runner.add_arguments(lint)
    return parser


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _read_tree(path: str) -> Tree:
    return tree_from_json(_read_text(path))


def _parse_mode_set(spec: str) -> ModeSet:
    """Parse a comma-separated capacity list into a :class:`ModeSet`.

    Malformed tokens surface as the CLI's usual ``error: ...`` + exit 2
    instead of a traceback.
    """
    try:
        capacities = tuple(int(c) for c in spec.split(","))
    except ValueError:
        raise ConfigurationError(
            f"invalid --modes value {spec!r}: expected comma-separated "
            "integer capacities, e.g. '5,10'"
        ) from None
    return ModeSet(capacities)


def _parse_pre_modes(spec: str) -> dict[int, int]:
    out: dict[int, int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        node, _, mode = part.partition(":")
        out[int(node)] = int(mode) if mode else 0
    return out


def _parse_bounds(spec: str) -> list[float]:
    try:
        return [float(b) for b in spec.split(",")]
    except ValueError:
        raise ConfigurationError(
            f"invalid --bound value {spec!r}: expected comma-separated "
            "cost bounds, e.g. '40,60,80'"
        ) from None


def _with_default_power(instances, policy, args):
    """Fill in the CLI-configured power model where instances lack one.

    Modal costs then derive from each instance's Equation-2 prices (see
    :meth:`repro.batch.instance.BatchInstance.effective_modal_cost`).
    """
    if not policy.needs_power:
        return instances
    default_pm = PowerModel(
        _parse_mode_set(args.modes),
        static_power=args.static,
        alpha=args.alpha,
    )
    return [
        i if i.power_model is not None
        else dataclasses.replace(i, power_model=default_pm)
        for i in instances
    ]


async def _run_server(args: argparse.Namespace) -> int:
    from repro.serve import BatchServer

    cache = ResultCache(
        args.lru_size,
        cache_dir=args.cache_dir,
        max_disk_entries=args.disk_size,
    )
    server = BatchServer(
        cache=cache,
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        max_pending=args.max_pending,
        solve_timeout=args.solve_timeout,
    )
    async with server:
        host, port = await server.listen(args.host, args.port)
        print(f"serving on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        stop_tasks: list[asyncio.Task] = []

        def _request_stop() -> None:
            stop_tasks.append(loop.create_task(server.stop()))

        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(sig, _request_stop)
        await server.serve_forever()
    print("server stopped", flush=True)
    return 0


async def _run_cluster(args: argparse.Namespace) -> int:
    from repro.serve import (
        ClusterRouter,
        InProcessSpawner,
        SubprocessSpawner,
        WorkerConfig,
    )

    spawner = (
        SubprocessSpawner(host=args.host)
        if args.backend == "subprocess"
        else InProcessSpawner()
    )
    config = WorkerConfig(
        max_pending=args.max_pending if args.max_pending > 0 else None,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        pool_workers=args.workers,
        lru_size=args.lru_size,
        max_disk_entries=args.disk_size,
        cache_dir=args.cache_dir,
        kernel=args.kernel,
        solve_timeout=args.solve_timeout,
    )
    router = ClusterRouter(
        spawner,
        args.cluster_workers,
        config,
        fallbacks=args.fallbacks,
    )
    async with router:
        host, port = await router.listen(args.host, args.port)
        print(
            f"cluster of {args.cluster_workers} {args.backend} workers "
            f"serving on {host}:{port}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop_tasks: list[asyncio.Task] = []

        def _request_stop() -> None:
            stop_tasks.append(loop.create_task(router.stop()))

        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(sig, _request_stop)
        await router.serve_forever()
    print("cluster stopped", flush=True)
    return 0


def _print_cluster_health(perf: dict) -> None:
    """Render the router's per-worker health table from its perf payload."""
    cluster = perf.get("cluster", {})
    workers = perf.get("workers", {})
    rows = []
    for name in sorted(workers):
        entry = workers[name]
        route = cluster.get("workers", {}).get(name, {})
        wperf = entry.get("perf") or {}
        serve = wperf.get("serve", {})
        policies = serve.get("policies", {})
        quarantine = wperf.get("quarantine", {})
        rows.append(
            (
                name,
                "up" if entry.get("alive") else "DOWN",
                route.get("routed", 0),
                route.get("sheds", 0),
                route.get("timeouts", 0),
                route.get("deaths", 0),
                route.get("respawns", 0),
                quarantine.get("active", 0),
                sum(p.get("requests", 0) for p in policies.values()),
                sum(p.get("cache_hits", 0) for p in policies.values()),
            )
        )
    print(
        format_table(
            (
                "worker", "state", "routed", "sheds", "timeouts", "deaths",
                "respawns", "quarantined", "requests", "cache_hits",
            ),
            rows,
        )
    )
    print(
        f"routed={cluster.get('requests_routed', 0)} "
        f"retries={cluster.get('retries', 0)} "
        f"rejected={cluster.get('rejected', 0)} "
        f"lost_sessions={cluster.get('lost_sessions', 0)}"
    )


def _random_delta(
    tree: Tree, rng: np.random.Generator, max_load: int | None = None
):
    """One random, always-feasible churn delta for ``tree``.

    Draws uniformly over the applicable delta kinds.  ``max_load`` (the
    largest mode capacity ``W``) bounds per-node direct client load so
    the evolved instance stays solvable; migrations leave direct loads
    untouched, retry a few candidate ``(node, new_parent)`` pairs and
    degrade to an ``add_client`` when the tree offers no valid move.
    """
    from repro.dynamics import AddClient, MigrateSubtree, RemoveClient, SetRequests

    loads = tree.client_loads

    def _headroom(node: int) -> int:
        return (1 << 30) if max_load is None else max_load - int(loads[node])

    kinds = ["add", "migrate"]
    if tree.clients:
        kinds += ["remove", "set"]
    kind = kinds[int(rng.integers(len(kinds)))]
    if kind == "remove":
        return RemoveClient(int(rng.integers(len(tree.clients))))
    if kind == "set":
        idx = int(rng.integers(len(tree.clients)))
        cap = _headroom(tree.clients[idx].node) + tree.clients[idx].requests
        if cap >= 1:
            return SetRequests(idx, 1 + int(rng.integers(min(6, cap))))
        return RemoveClient(idx)
    if kind == "migrate" and tree.n_nodes > 1:
        for _ in range(16):
            node = int(rng.integers(1, tree.n_nodes))
            new_parent = int(rng.integers(tree.n_nodes))
            if new_parent != tree.parents[node] and not tree.is_ancestor(
                node, new_parent
            ):
                return MigrateSubtree(node, new_parent)
    nodes = [v for v in range(tree.n_nodes) if _headroom(v) >= 1]
    if not nodes:  # saturated everywhere: shed load instead of adding
        return RemoveClient(int(rng.integers(len(tree.clients))))
    node = nodes[int(rng.integers(len(nodes)))]
    return AddClient(node, 1 + int(rng.integers(min(6, _headroom(node)))))


async def _run_session_client(args: argparse.Namespace) -> int:
    """The ``repro client --session`` path: stream deltas at a server."""
    from repro.dynamics import apply_deltas
    from repro.serve import ServeClient

    rng = np.random.default_rng(args.seed)
    tree = paper_tree(args.nodes, rng=rng)
    power_model = PowerModel(
        _parse_mode_set(args.modes), static_power=args.static, alpha=args.alpha
    )
    from repro.batch.instance import BatchInstance

    instance = BatchInstance(tree, 10, frozenset(), power_model=power_model)
    client = await ServeClient.connect(
        args.host,
        args.port,
        retries=args.retries,
        deadline=args.deadline,
    )
    try:
        sess = await client.session(instance, kernel=args.kernel)
        print(
            f"session {sess.session_id} kernel={sess.kernel} "
            f"points={len(sess.result['points'])}"
        )
        rows = []
        max_load = max(power_model.modes.capacities)
        for step in range(args.session):
            deltas = [_random_delta(tree, rng, max_load)]
            response = await sess.delta(deltas)
            tree, _ = apply_deltas(tree, deltas)
            apply_info = response["apply"]
            rows.append(
                (
                    step,
                    type(deltas[0]).__name__,
                    apply_info["fronts_reused"],
                    apply_info["fronts_invalidated"],
                    len(response["result"]["points"]),
                )
            )
        print(
            format_table(
                ("step", "delta", "reused", "invalidated", "points"), rows
            )
        )
        stats = await sess.close()
        print(json.dumps(stats, indent=2))
        if args.shutdown:
            await client.shutdown_server()
            print("server shutdown requested")
    finally:
        await client.close()
    return 0


async def _run_client(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    if args.demo is not None and args.file is not None:
        print(
            "error: --demo and a batch file are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.session is not None:
        if args.file is not None or args.demo is not None:
            print(
                "error: --session is mutually exclusive with a batch file "
                "and --demo",
                file=sys.stderr,
            )
            return 2
        return await _run_session_client(args)
    instances = []
    if args.demo is not None:
        instances = random_batch(
            args.demo,
            duplicate_rate=args.duplicate_rate,
            n_nodes=args.nodes,
            rng=np.random.default_rng(args.seed),
        )
    elif args.file is not None:
        instances = batch_from_json(_read_text(args.file))
    elif not (args.stats or args.perf or args.shutdown or args.cluster):
        print(
            "error: provide a batch file, --demo N, --session N, --stats, "
            "--perf, --cluster or --shutdown",
            file=sys.stderr,
        )
        return 2
    instances = _with_default_power(instances, get_policy(args.solver), args)
    client = await ServeClient.connect(
        args.host,
        args.port,
        retries=args.retries,
        deadline=args.deadline,
    )
    try:
        if instances:
            responses = await client.solve_many(
                instances, solver=args.solver, priority=args.priority
            )
            rows = [
                (i, str(r["digest"])[:12], r["served"])
                for i, r in enumerate(responses)
            ]
            print(format_table(("#", "digest", "served"), rows))
            served = [r["served"] for r in responses]
            print(
                f"instances={len(responses)} "
                f"solved={served.count('solve')} "
                f"coalesced={served.count('coalesced')} "
                f"cache={served.count('cache')}"
            )
        if args.cluster:
            _print_cluster_health(await client.perf())
        if args.stats:
            print(json.dumps(await client.stats(), indent=2))
        if args.perf:
            print(json.dumps(await client.perf(), indent=2))
        if args.shutdown:
            await client.shutdown_server()
            print("server shutdown requested")
    finally:
        await client.close()
    return 0


def _dispatch_dynamics(args: argparse.Namespace) -> int:
    """``repro dynamics``: session tracks, or ``--incremental`` churn."""
    if args.incremental:
        from repro.dynamics import SessionState, apply_deltas
        from repro.power.kernels import KERNELS

        rng = np.random.default_rng(args.seed)
        tree = paper_tree(args.nodes, rng=rng)
        power_model = PowerModel(
            _parse_mode_set(args.modes),
            static_power=args.static,
            alpha=args.alpha,
        )
        cost_model = ModalCostModel.uniform(
            power_model.modes.n_modes,
            create=args.create,
            delete=args.delete,
            changed=args.changed,
        )
        state = SessionState(tree, power_model, cost_model, kernel=args.kernel)
        print(
            f"cold solve: {len(state.frontier().pairs())} frontier points "
            f"(kernel={state.kernel})"
        )
        rows = []
        verified = 0
        max_load = max(power_model.modes.capacities)
        try:
            for step in range(args.steps):
                # Generate each delta against the batch-so-far tree so
                # client indices and load headroom stay valid within the
                # batch, not just at its start.
                deltas = []
                preview = state.tree
                for _ in range(args.deltas_per_step):
                    delta = _random_delta(preview, rng, max_load)
                    preview, _ = apply_deltas(preview, [delta])
                    deltas.append(delta)
                result = state.apply(deltas)
                if args.verify:
                    cold = KERNELS[state.kernel](
                        state.tree,
                        power_model,
                        cost_model,
                        state.preexisting_modes,
                    )
                    if result.frontier.pairs() != cold.pairs():
                        raise ConfigurationError(
                            f"incremental frontier diverged from the cold "
                            f"solve at step {step}"
                        )
                    verified += 1
                rows.append(
                    (
                        step,
                        ",".join(type(d).__name__ for d in deltas),
                        result.fronts_reused,
                        result.fronts_invalidated,
                        len(result.frontier.pairs()),
                    )
                )
        finally:
            state.close()
        headers = ("step", "deltas", "reused", "invalidated", "points")
        print(format_table(headers, rows))
        stats = state.stats
        touched = stats.fronts_reused + stats.fronts_invalidated
        reuse = stats.fronts_reused / touched if touched else 0.0
        print(
            f"steps={args.steps} deltas={stats.deltas_applied} "
            f"fronts_reused={stats.fronts_reused} "
            f"fronts_invalidated={stats.fronts_invalidated} "
            f"reuse_rate={reuse:.2f}"
        )
        if args.verify:
            print(
                f"verified: {verified} incremental frontiers byte-identical "
                "to cold solves"
            )
        if args.csv:
            Path(args.csv).write_text(to_csv(headers, rows), encoding="utf-8")
        return 0

    from repro.dynamics import (
        DPUpdateStrategy,
        GreedyStrategy,
        HotspotShift,
        RandomWalkRequests,
        RedrawRequests,
        run_session,
    )

    evolution = {
        "redraw": RedrawRequests(),
        "walk": RandomWalkRequests(),
        "hotspot": HotspotShift(),
    }[args.evolution]
    tree = paper_tree(args.nodes, rng=np.random.default_rng(args.seed))
    result = run_session(
        tree,
        args.capacity,
        args.steps,
        evolution,
        {"DP": DPUpdateStrategy(), "GR": GreedyStrategy()},
        seed=args.seed,
    )
    rows = [
        (rec_dp.step, rec_dp.n_replicas, rec_dp.n_reused, rec_gr.n_reused)
        for rec_dp, rec_gr in zip(result.tracks["DP"], result.tracks["GR"])
    ]
    headers = ("step", "DP_replicas", "DP_reused", "GR_reused")
    print(format_table(headers, rows))
    dp_total = result.cumulative_reuse("DP")[-1]
    gr_total = result.cumulative_reuse("GR")[-1]
    print(f"cumulative reuse: DP={dp_total} GR={gr_total}")
    if args.csv:
        Path(args.csv).write_text(to_csv(headers, rows), encoding="utf-8")
    return 0


def _progress(done: int, total: int) -> None:
    print(f"\r  tree {done}/{total}", end="", file=sys.stderr, flush=True)
    if done == total:
        print(file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "lint":
        return lint_runner.run_from_args(args)

    if args.command == "generate":
        tree = (
            make_preset(args.preset, rng=np.random.default_rng(args.seed))
            if args.preset is not None
            else paper_tree(
                n_nodes=args.nodes,
                children_range=tuple(args.children),
                client_prob=args.client_prob,
                request_range=tuple(args.requests),
                rng=np.random.default_rng(args.seed),
            )
        )
        text = tree_to_json(tree, indent=2)
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        return 0

    if args.command == "solve":
        tree = _read_tree(args.tree)
        pre = (
            random_preexisting(
                tree, args.random_preexisting, rng=np.random.default_rng(args.seed)
            )
            if args.random_preexisting is not None
            else frozenset(
                int(v) for v in filter(None, args.preexisting.split(","))
            )
        )
        res = (
            replica_update(
                tree, args.capacity, pre, UniformCostModel(args.create, args.delete)
            )
            if args.algorithm == "dp"
            else greedy_placement(tree, args.capacity, preexisting=pre)
        )
        print(f"replicas ({res.n_replicas}): {sorted(res.replicas)}")
        print(
            f"reused={res.n_reused} created={res.n_created} "
            f"deleted={res.n_deleted} cost={res.cost}"
        )
        if args.show:
            print(
                render_tree(
                    tree, replicas=res.replicas, preexisting=pre, loads=res.loads
                )
            )
        if args.plan:
            print(plan_migration(pre, res.replicas))
        return 0

    if args.command == "batch":
        if args.kernel is not None:
            # Frontier policies resolve the kernel in this (parent)
            # process when building payloads, so the override reaches
            # spawn-based workers without re-reading the environment.
            os.environ["REPRO_POWER_KERNEL"] = args.kernel
        if args.demo is not None and args.file is not None:
            print(
                "error: --demo and a batch file are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        if args.demo is not None:
            instances = random_batch(
                args.demo,
                duplicate_rate=args.duplicate_rate,
                n_nodes=args.nodes,
                rng=np.random.default_rng(args.seed),
            )
        elif args.file is not None:
            instances = batch_from_json(_read_text(args.file))
        else:
            print("error: provide a batch file or --demo N", file=sys.stderr)
            return 2
        policy = get_policy(args.solver)
        instances = _with_default_power(instances, policy, args)
        bounds = None
        if args.bound is not None:
            if args.solver != "power_frontier":
                print(
                    "error: --bound requires --solver power_frontier",
                    file=sys.stderr,
                )
                return 2
            # Parse up front: a malformed bound must not cost a solve.
            bounds = _parse_bounds(args.bound)
        cache = ResultCache(
            args.lru_size,
            cache_dir=args.cache_dir,
            max_disk_entries=args.disk_size,
        )
        records_out: dict | None = {} if args.stats else None
        results = solve_batch(
            instances,
            solver=args.solver,
            workers=args.workers,
            cache=cache,
            records_out=records_out,
            solve_timeout=args.solve_timeout,
        )
        rows = [
            (i, str(r.extra["digest"])[:12], *policy.row(r))
            for i, r in enumerate(results)
        ]
        print(format_table(("#", "digest", *policy.columns), rows))
        if bounds is not None:
            # Experiment-3-style sweep: every bound is answered from the
            # instance's single cached frontier record, no re-solving.
            sweep_rows = []
            for i, frontier in enumerate(results):
                for bound in bounds:
                    best = frontier.best_under_cost(bound)
                    if best is None:
                        sweep_rows.append((i, bound, "-", "-"))
                    else:
                        sweep_rows.append(
                            (i, bound, f"{best.power:.3f}", f"{best.cost:.3f}")
                        )
            print(format_table(("#", "bound", "power", "cost"), sweep_rows))
        s = cache.stats
        print(
            f"instances={len(instances)} unique_solved={s.unique_solved} "
            f"duplicates_folded={s.duplicates_folded} hits={s.hits} "
            f"(disk={s.disk_hits}) misses={s.misses} "
            f"hit_rate={s.hit_rate:.2f}"
        )
        if s.solve_timeouts or s.pool_rebuilds or s.quarantined:
            print(
                f"solve_timeouts={s.solve_timeouts} "
                f"pool_rebuilds={s.pool_rebuilds} "
                f"quarantined={s.quarantined}"
            )
        if records_out is not None:
            from repro.perf.stats import ParetoDPStats

            kernel = ParetoDPStats()
            covered = 0
            for record in records_out.values():
                counters = record.get("dp_stats")
                if counters:
                    kernel.absorb(counters)
                    covered += 1
            # Each digest appears once in records_out, so records are
            # never double-absorbed; records from older cache schemas
            # simply lack the counters and are reported as uncovered.
            print(
                json.dumps(
                    {
                        "kernel_records": covered,
                        "records_without_stats": len(records_out) - covered,
                        **kernel.as_dict(),
                    },
                    indent=2,
                )
            )
        return 0

    if args.command == "serve":
        if args.kernel is not None:
            os.environ["REPRO_POWER_KERNEL"] = args.kernel
        try:
            return asyncio.run(_run_server(args))
        except OSError as exc:  # e.g. port already in use
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "cluster":
        if args.kernel is not None:
            # In-process workers read it from the environment; subprocess
            # workers also get an explicit --kernel flag.
            os.environ["REPRO_POWER_KERNEL"] = args.kernel
        try:
            return asyncio.run(_run_cluster(args))
        except OSError as exc:  # e.g. port already in use
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "client":
        try:
            return asyncio.run(_run_client(args))
        except OSError as exc:  # e.g. connection refused, server gone
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "dynamics":
        return _dispatch_dynamics(args)

    if args.command == "power":
        tree = _read_tree(args.tree)
        modes = _parse_mode_set(args.modes)
        power_model = PowerModel(modes, static_power=args.static, alpha=args.alpha)
        cost_model = ModalCostModel.uniform(
            modes.n_modes, create=args.create, delete=args.delete, changed=args.changed
        )
        pre = _parse_pre_modes(args.preexisting)
        frontier = power_frontier(tree, power_model, cost_model, pre)
        print(format_table(("cost", "power"), frontier.pairs()))
        if args.bound is not None:
            best = frontier.best_under_cost(args.bound)
            if best is None:
                print(f"no solution with cost <= {args.bound}")
            else:
                print(
                    f"bound {args.bound}: power={best.power:.3f} "
                    f"cost={best.cost:.3f} servers={dict(sorted(best.server_modes.items()))}"
                )
        return 0

    if args.command == "exp1":
        config = Exp1Config(n_trees=args.trees)
        if args.seed is not None:
            config = Exp1Config(n_trees=args.trees, seed=args.seed)
        if args.high_trees:
            config = config.high_trees()
        result = (
            run_experiment1_parallel(config, n_workers=args.workers)
            if args.workers > 1
            else run_experiment1(config, progress=_progress)
        )
        print(
            line_plot(
                result.series(),
                title=f"Figure {'6' if args.high_trees else '4'}: reused servers vs E",
                xlabel="pre-existing servers E",
                ylabel="mean reused",
            )
        )
        headers = ("E", "DP_reuse", "GR_reuse", "gap")
        print(format_table(headers, result.rows()))
        print(
            f"mean gap={result.mean_gap:.2f}, max gap={result.max_gap}, "
            f"count mismatches={result.count_mismatches}"
        )
        if args.csv:
            Path(args.csv).write_text(to_csv(headers, result.rows()), encoding="utf-8")
        return 0

    if args.command == "exp2":
        config = Exp2Config(n_trees=args.trees)
        if args.seed is not None:
            config = Exp2Config(n_trees=args.trees, seed=args.seed)
        if args.high_trees:
            config = config.high_trees()
        result = (
            run_experiment2_parallel(config, n_workers=args.workers)
            if args.workers > 1
            else run_experiment2(config, progress=_progress)
        )
        fig = "7" if args.high_trees else "5"
        print(
            line_plot(
                result.series(),
                title=f"Figure {fig} (left): cumulative reused servers",
                xlabel="update step",
                ylabel="cumulative reuse",
            )
        )
        print(
            bar_plot(
                result.gap_histogram,
                title=f"Figure {fig} (right): per-step (DP reuse - GR reuse)",
                xlabel="reuse gap",
            )
        )
        if args.csv:
            headers = ("step", "DP_cumulative", "GR_cumulative")
            Path(args.csv).write_text(to_csv(headers, result.rows()), encoding="utf-8")
        return 0

    if args.command == "exp3":
        config = Exp3Config(n_trees=args.trees)
        if args.seed is not None:
            config = Exp3Config(n_trees=args.trees, seed=args.seed)
        fig = "8"
        if args.high_trees:
            config, fig = config.high_trees(), "10"
        if args.no_preexisting:
            config, fig = config.no_preexisting(), "9"
        if args.expensive_costs:
            config, fig = config.expensive_costs(), "11"
        result = (
            run_experiment3_parallel(config, n_workers=args.workers)
            if args.workers > 1
            else run_experiment3(config, progress=_progress)
        )
        print(
            line_plot(
                result.series(),
                title=f"Figure {fig}: normalised inverse power vs cost bound",
                xlabel="cost bound",
                ylabel="P_opt / P (0 = no solution)",
            )
        )
        headers = ("bound", "DP_inv", "GR_inv", "DP_ok", "GR_ok", "GR/DP")
        print(format_table(headers, result.rows()))
        print(f"peak GR-over-DP power ratio: {result.peak_gr_overhead():.3f}")
        if args.csv:
            Path(args.csv).write_text(to_csv(headers, result.rows()), encoding="utf-8")
        return 0

    if args.command == "scaling":
        points = run_scaling()
        rows = [
            (p.regime, p.n_nodes, p.n_preexisting, p.seconds, p.detail)
            for p in points
        ]
        print(format_table(("regime", "N", "E", "seconds", "detail"), rows))
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
