"""MinPower-BoundedCost — paper-faithful count-vector dynamic program.

This mirrors §4.3 literally: per subtree, the state enumerates

* ``n_m`` — new servers operated at mode ``W_m`` (``M`` counters), and
* ``e_{o,m}`` — reused pre-existing servers whose mode changed from ``W_o``
  to ``W_m`` (``M²`` counters),

and stores the *set of achievable* request flows traversing the subtree
root for every reachable state — the direct generalisation of Algorithm
3's ``(e, n)`` tables.  (Keeping only the minimal flow per count vector
is lossy: a larger flow can complete to a strictly cheaper solution,
e.g. a reused root absorbing enough requests to stay at its old mode
avoids the mode-change charge at the price of more power — a genuine
point of the cost/power frontier.)  Its complexity is exponential in the
number of modes
(Theorem 3: ``O(N·M·(N-E+1)^{2M}·(E+1)^{2M²})``), polynomial for fixed
``M``; the implementation keeps states in sparse dictionaries so only
reachable count vectors are materialised (bounded by subtree contents, the
same small-to-large trick used everywhere in this library).

It exists as the fidelity reference: tests assert its root frontier equals
:mod:`repro.power.dp_power_pareto`'s on randomised instances, which is the
machine-checkable version of the Pareto solver's dominance argument.  Use
the Pareto solver for anything but validation — `bench_ablation_pareto`
quantifies the gap.

Modes are load-determined (§2.2), see the discussion in
:mod:`repro.power.dp_power_pareto` and DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.power.dp_power_pareto import pareto_min_sweep
from repro.power.modes import PowerModel
from repro.tree.model import Tree

__all__ = ["power_frontier_counts"]

_MAX_NODES = 60


def power_frontier_counts(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
) -> list[tuple[float, float]]:
    """Exact (cost, power) frontier via the paper's count-vector states.

    Returns non-dominated ``(cost, power)`` pairs sorted by cost.  Intended
    for validation on small instances (guarded at ``n_nodes <= 60``); no
    placement reconstruction is provided — use the Pareto solver for that.
    """
    if tree.n_nodes > _MAX_NODES:
        raise ConfigurationError(
            f"count-vector DP is a validation tool capped at {_MAX_NODES} "
            f"nodes (got {tree.n_nodes}); use power_frontier() instead"
        )
    modes = power_model.modes
    m_count = modes.n_modes
    if cost_model.n_modes != m_count:
        raise ConfigurationError(
            f"cost model covers {cost_model.n_modes} modes but the mode set "
            f"has {m_count}"
        )
    pre = dict(preexisting_modes or {})
    for v, old in pre.items():
        if not (0 <= v < tree.n_nodes):
            raise ConfigurationError(f"pre-existing server {v} is not a tree node")
        if not (0 <= old < m_count):
            raise ConfigurationError(f"pre-existing server {v} has bad mode {old}")
    w_max = modes.max_capacity

    # State layout: counts[0:m] = n_m (new by mode), counts[m + o*m + mm] =
    # e_{o,mm} (reused, old mode o -> new mode mm).
    zero_state = (0,) * (m_count + m_count * m_count)

    def place_new(state: tuple[int, ...], mode: int) -> tuple[int, ...]:
        lst = list(state)
        lst[mode] += 1
        return tuple(lst)

    def place_reused(state: tuple[int, ...], old: int, mode: int) -> tuple[int, ...]:
        lst = list(state)
        lst[m_count + old * m_count + mode] += 1
        return tuple(lst)

    def add_states(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(x + y for x, y in zip(a, b, strict=True))

    tables: list[dict[tuple[int, ...], set[int]] | None] = [None] * tree.n_nodes

    for v in tree.post_order():
        j = int(v)
        load = tree.client_load(j)
        if load > w_max:
            raise InfeasibleError(
                f"direct client load {load} at node {j} exceeds W={w_max}",
                node=j,
            )
        acc: dict[tuple[int, ...], set[int]] = {zero_state: {load}}
        for child in tree.children(j):
            child_table = tables[child]
            assert child_table is not None
            tables[child] = None
            options: dict[tuple[int, ...], set[int]] = {}
            for state, flows in child_table.items():
                for flow in flows:
                    # Option 1: no replica on the child, flow passes up.
                    options.setdefault(state, set()).add(flow)
                    # Option 2: replica on the child absorbs the flow at
                    # its load-determined mode.
                    mode = modes.mode_of(flow)
                    placed = (
                        place_reused(state, pre[child], mode)
                        if child in pre
                        else place_new(state, mode)
                    )
                    options.setdefault(placed, set()).add(0)
            merged: dict[tuple[int, ...], set[int]] = {}
            for s1, flows1 in acc.items():
                for s2, flows2 in options.items():
                    s = add_states(s1, s2)
                    bucket = merged.setdefault(s, set())
                    for f1 in flows1:
                        for f2 in flows2:
                            f = f1 + f2
                            if f <= w_max:
                                bucket.add(f)
            merged = {s: fl for s, fl in merged.items() if fl}
            acc = merged
        tables[j] = acc

    root = tree.root
    root_table = tables[root]
    assert root_table is not None
    if not root_table:
        raise InfeasibleError("no valid replica placement exists")

    pre_by_mode = [0] * m_count
    for old in pre.values():
        pre_by_mode[old] += 1

    def complete(state: tuple[int, ...]) -> tuple[float, float]:
        """Price a finished state: Equation 4 cost and Equation 3 power."""
        new_by_mode = list(state[:m_count])
        reused = {
            (o, mm): state[m_count + o * m_count + mm]
            for o in range(m_count)
            for mm in range(m_count)
        }
        deleted = [
            pre_by_mode[o] - sum(reused[(o, mm)] for mm in range(m_count))
            for o in range(m_count)
        ]
        cost = cost_model.total(new_by_mode, reused, deleted)
        power = 0.0
        for mm in range(m_count):
            power += new_by_mode[mm] * power_model.mode_power(mm)
            for o in range(m_count):
                power += reused[(o, mm)] * power_model.mode_power(mm)
        # Round like the other solvers so frontiers compare exactly.
        return round(cost, 9), round(power, 9)

    candidates: list[tuple[float, float]] = []
    for state, flows in root_table.items():
        variants: list[tuple[int, ...]] = []
        for flow in flows:
            if flow == 0:
                variants.append(state)
                if root in pre:  # idle reused root
                    variants.append(place_reused(state, pre[root], 0))
            else:
                mode = modes.mode_of(flow)
                if root in pre:
                    variants.append(place_reused(state, pre[root], mode))
                else:
                    variants.append(place_new(state, mode))
        candidates.extend(complete(s) for s in variants)

    candidates.sort()
    # One shared sweep with the Pareto engine: identical explicit
    # tie-breaking, hence byte-identical frontiers by construction.
    return pareto_min_sweep(candidates)
