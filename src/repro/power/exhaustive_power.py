"""Exhaustive power oracle for tiny instances.

Enumerates every valid replica set, prices it with load-determined modes,
and keeps the (cost, power) frontier.  Ground truth for both power DPs in
the test-suite; guarded against large trees.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.core.costs import ModalCostModel
from repro.core.exhaustive import iter_valid_placements
from repro.exceptions import InfeasibleError
from repro.power.modes import PowerModel
from repro.power.result import ModalPlacementResult, modal_from_replicas
from repro.tree.model import Tree

__all__ = ["exhaustive_power_frontier", "exhaustive_min_power"]

_EPS = 1e-9


def exhaustive_power_frontier(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
) -> list[tuple[float, float]]:
    """Ground-truth (cost, power) frontier by full enumeration."""
    pre = dict(preexisting_modes or {})
    pairs: list[tuple[float, float]] = []
    for replicas, _loads in iter_valid_placements(
        tree, power_model.modes.max_capacity
    ):
        res = modal_from_replicas(tree, replicas, power_model, cost_model, pre)
        # Round like the DP solvers so frontiers compare exactly.
        pairs.append((round(res.cost, 9), round(res.power, 9)))
    if not pairs:
        raise InfeasibleError("no valid replica placement exists")
    pairs.sort()
    frontier: list[tuple[float, float]] = []
    best_power = float("inf")
    for cost, power in pairs:
        if power < best_power - _EPS:
            frontier.append((cost, power))
            best_power = power
    return frontier


def exhaustive_min_power(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    cost_bound: float = math.inf,
) -> ModalPlacementResult:
    """Ground-truth MinPower(-BoundedCost) solution by full enumeration."""
    pre = dict(preexisting_modes or {})
    best: ModalPlacementResult | None = None
    for replicas, _loads in iter_valid_placements(
        tree, power_model.modes.max_capacity
    ):
        res = modal_from_replicas(tree, replicas, power_model, cost_model, pre)
        if res.cost > cost_bound + _EPS:
            continue
        if best is None or res.power < best.power - _EPS:
            best = res
    if best is None:
        raise InfeasibleError(
            f"no valid replica placement has cost <= {cost_bound}"
        )
    return best
