"""Modal placement results: replica sets with per-server modes.

Under the paper's §2.2 semantics a server's operated mode is *determined by
its load* (smallest mode covering ``req_j``), so a modal solution is fully
described by the replica set; :func:`modal_from_replicas` derives modes,
cost and power in one pass.

:class:`FrontierColumns` is the columnar (structure-of-arrays) backing of
a Pareto frontier: the sorted cost/power columns as shared float64
buffers.  :class:`~repro.power.dp_power_pareto.PowerFrontier` holds one
and answers its bound queries with O(log n) ``searchsorted`` bisects over
these columns; the tuple-level API (``pairs()``, ``FrontierPoint``) stays
unchanged as lazy views over the same buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.costs import ModalCostModel
from repro.core.solution import server_loads
from repro.exceptions import InfeasibleError, SolverError
from repro.power.modes import PowerModel
from repro.tree.model import Tree

__all__ = ["FrontierColumns", "ModalPlacementResult", "modal_from_replicas"]

#: Bound-query tolerance — matches the kernel's dominance ``_EPS`` (kept
#: local: the kernel module imports this one, not the other way round).
_BOUND_EPS = 1e-9


class FrontierColumns:
    """Sorted columnar view of a Pareto frontier (structure of arrays).

    ``costs`` ascends strictly and ``powers`` descends strictly along the
    frontier; both are float64 arrays sharing whatever buffer produced
    them (the array kernel's output columns, or a zero-copy decode of a
    columnar record).  Queries are ``searchsorted`` bisects; ``pairs()``
    materialises plain-float tuples lazily for the row-level API.
    """

    __slots__ = ("costs", "powers", "_neg_powers")

    def __init__(self, costs: object, powers: object) -> None:
        self.costs = np.asarray(costs, dtype=np.float64)
        self.powers = np.asarray(powers, dtype=np.float64)
        if self.costs.shape != self.powers.shape or self.costs.ndim != 1:
            raise SolverError(
                "frontier columns must be 1-d arrays of equal length, got "
                f"shapes {self.costs.shape} and {self.powers.shape}"
            )
        # Negated power column, precomputed so best-under-power bisects
        # need no per-query allocation.
        self._neg_powers = -self.powers

    def __len__(self) -> int:
        return int(self.costs.shape[0])

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[float, float]]
    ) -> FrontierColumns:
        """Build columns from ``(cost, power)`` tuples (row-major input)."""
        if not pairs:
            return cls(np.empty(0), np.empty(0))
        arr = np.asarray(pairs, dtype=np.float64)
        return cls(arr[:, 0].copy(), arr[:, 1].copy())

    def pairs(self) -> list[tuple[float, float]]:
        """Plain-float ``(cost, power)`` tuples (the lazy row view)."""
        return list(zip(self.costs.tolist(), self.powers.tolist(), strict=True))

    def validate(self) -> None:
        """Check the frontier ordering invariant the bisects rely on.

        Raises :class:`SolverError` unless costs strictly ascend and
        powers strictly descend.
        """
        cost_steps = np.diff(self.costs)
        power_steps = np.diff(self.powers)
        if bool((cost_steps <= 0.0).any()) or bool((power_steps >= 0.0).any()):
            raise SolverError(
                "frontier record is not strictly cost-ascending / "
                "power-descending"
            )

    def index_under_cost(self, cost_bound: float) -> int:
        """Index of the last point with ``cost <= bound`` (-1 if none)."""
        return int(
            np.searchsorted(self.costs, cost_bound + _BOUND_EPS, side="right")
        ) - 1

    def index_under_power(self, power_bound: float) -> int:
        """Index of the first point with ``power <= bound`` (len if none)."""
        return int(
            np.searchsorted(
                self._neg_powers, -(power_bound + _BOUND_EPS), side="left"
            )
        )


@dataclass(frozen=True)
class ModalPlacementResult:
    """A power-aware solution.

    Attributes
    ----------
    server_modes:
        ``{node: mode_index}`` for every server in the solution; modes are
        load-determined (§2.2).
    loads:
        Requests served per server (Equation 1's ``req_j``).
    power:
        Total power consumption (Equation 3).
    cost:
        Total cost (Equation 4) against the instance's pre-existing servers.
    """

    server_modes: Mapping[int, int]
    loads: Mapping[int, int]
    power: float
    cost: float
    preexisting_modes: Mapping[int, int] = field(default_factory=dict)
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def replicas(self) -> frozenset[int]:
        return frozenset(self.server_modes)

    @property
    def n_replicas(self) -> int:
        return len(self.server_modes)

    @property
    def reused(self) -> frozenset[int]:
        return frozenset(self.server_modes) & frozenset(self.preexisting_modes)

    @property
    def deleted(self) -> frozenset[int]:
        return frozenset(self.preexisting_modes) - frozenset(self.server_modes)

    @property
    def created(self) -> frozenset[int]:
        return frozenset(self.server_modes) - frozenset(self.preexisting_modes)


def modal_from_replicas(
    tree: Tree,
    replicas: Iterable[int],
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    extra: Mapping[str, object] | None = None,
) -> ModalPlacementResult:
    """Evaluate a replica set as a modal solution.

    Verifies validity against the maximal capacity, derives per-server
    modes from loads, and prices the solution with both models.

    Raises
    ------
    InfeasibleError
        When the placement leaves requests unserved or overloads a server
        beyond ``W_M``.
    """
    pre = dict(preexisting_modes or {})
    modes = power_model.modes
    loads, unserved = server_loads(tree, replicas)
    if unserved:
        raise InfeasibleError(
            f"{unserved} requests reach the root unserved by this placement"
        )
    overloaded = [v for v, q in loads.items() if q > modes.max_capacity]
    if overloaded:
        raise InfeasibleError(
            f"servers {sorted(overloaded)} exceed the maximal capacity "
            f"{modes.max_capacity}"
        )
    server_modes = {v: modes.mode_of(q) for v, q in loads.items()}
    power = power_model.placement_power(server_modes)
    cost = cost_model.of_modal_placement(server_modes, pre)
    return ModalPlacementResult(
        server_modes=server_modes,
        loads=loads,
        power=power,
        cost=cost,
        preexisting_modes=pre,
        extra=dict(extra or {}),
    )
