"""Modal placement results: replica sets with per-server modes.

Under the paper's §2.2 semantics a server's operated mode is *determined by
its load* (smallest mode covering ``req_j``), so a modal solution is fully
described by the replica set; :func:`modal_from_replicas` derives modes,
cost and power in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.core.costs import ModalCostModel
from repro.core.solution import server_loads
from repro.exceptions import InfeasibleError
from repro.power.modes import PowerModel
from repro.tree.model import Tree

__all__ = ["ModalPlacementResult", "modal_from_replicas"]


@dataclass(frozen=True)
class ModalPlacementResult:
    """A power-aware solution.

    Attributes
    ----------
    server_modes:
        ``{node: mode_index}`` for every server in the solution; modes are
        load-determined (§2.2).
    loads:
        Requests served per server (Equation 1's ``req_j``).
    power:
        Total power consumption (Equation 3).
    cost:
        Total cost (Equation 4) against the instance's pre-existing servers.
    """

    server_modes: Mapping[int, int]
    loads: Mapping[int, int]
    power: float
    cost: float
    preexisting_modes: Mapping[int, int] = field(default_factory=dict)
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def replicas(self) -> frozenset[int]:
        return frozenset(self.server_modes)

    @property
    def n_replicas(self) -> int:
        return len(self.server_modes)

    @property
    def reused(self) -> frozenset[int]:
        return frozenset(self.server_modes) & frozenset(self.preexisting_modes)

    @property
    def deleted(self) -> frozenset[int]:
        return frozenset(self.preexisting_modes) - frozenset(self.server_modes)

    @property
    def created(self) -> frozenset[int]:
        return frozenset(self.server_modes) - frozenset(self.preexisting_modes)


def modal_from_replicas(
    tree: Tree,
    replicas: Iterable[int],
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    extra: Mapping[str, object] | None = None,
) -> ModalPlacementResult:
    """Evaluate a replica set as a modal solution.

    Verifies validity against the maximal capacity, derives per-server
    modes from loads, and prices the solution with both models.

    Raises
    ------
    InfeasibleError
        When the placement leaves requests unserved or overloads a server
        beyond ``W_M``.
    """
    pre = dict(preexisting_modes or {})
    modes = power_model.modes
    loads, unserved = server_loads(tree, replicas)
    if unserved:
        raise InfeasibleError(
            f"{unserved} requests reach the root unserved by this placement"
        )
    overloaded = [v for v, q in loads.items() if q > modes.max_capacity]
    if overloaded:
        raise InfeasibleError(
            f"servers {sorted(overloaded)} exceed the maximal capacity "
            f"{modes.max_capacity}"
        )
    server_modes = {v: modes.mode_of(q) for v, q in loads.items()}
    power = power_model.placement_power(server_modes)
    cost = cost_model.of_modal_placement(server_modes, pre)
    return ModalPlacementResult(
        server_modes=server_modes,
        loads=loads,
        power=power,
        cost=cost,
        preexisting_modes=pre,
        extra=dict(extra or {}),
    )
