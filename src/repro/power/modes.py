"""Server modes and the power-consumption model (§2.2).

Servers operate under a set ``M = {W_1, …, W_M}`` of increasing capacities
(*modes*); a server processing ``req_j`` requests with
``W_{i-1} < req_j <= W_i`` runs at mode ``W_i`` — the mode is determined by
the load.  Power follows Equation 3::

    P(j) = P_static + (W_mode(j))^alpha ,        alpha in [2, 3]

:class:`ModeSet` handles mode arithmetic, :class:`PowerModel` prices modes.
``PowerModel.capacity_scale`` divides capacities before exponentiation; it
exists for the NP-completeness reduction (§4.2), whose instance is scaled to
integer requests while power must be computed on the original rationals.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping

from repro.exceptions import ConfigurationError

__all__ = ["ModeSet", "PowerModel"]


@dataclass(frozen=True)
class ModeSet:
    """Strictly increasing server capacities ``W_1 < … < W_M``.

    Mode *indices* are 0-based throughout the library (index ``M-1`` is the
    paper's ``W_M``, the maximal capacity ``W``).
    """

    capacities: tuple[int, ...]

    def __post_init__(self) -> None:
        caps = tuple(int(c) for c in self.capacities)
        object.__setattr__(self, "capacities", caps)
        if not caps:
            raise ConfigurationError("a ModeSet needs at least one mode")
        if caps[0] < 1:
            raise ConfigurationError(f"capacities must be >= 1, got {caps[0]}")
        if any(b <= a for a, b in zip(caps, caps[1:], strict=False)):
            raise ConfigurationError(
                f"capacities must be strictly increasing, got {caps}"
            )

    @property
    def n_modes(self) -> int:
        return len(self.capacities)

    @property
    def max_capacity(self) -> int:
        """The paper's ``W`` (capacity of the highest mode)."""
        return self.capacities[-1]

    def capacity(self, mode: int) -> int:
        if not (0 <= mode < self.n_modes):
            raise ConfigurationError(
                f"mode index {mode} out of range [0, {self.n_modes - 1}]"
            )
        return self.capacities[mode]

    def mode_of(self, load: int) -> int:
        """Smallest mode whose capacity covers ``load`` (§2.2 semantics).

        A zero load maps to the lowest mode (an idle server still runs).
        """
        if load < 0:
            raise ConfigurationError(f"load must be >= 0, got {load}")
        if load > self.max_capacity:
            raise ConfigurationError(
                f"load {load} exceeds the maximal capacity {self.max_capacity}"
            )
        return bisect.bisect_left(self.capacities, load)

    def __iter__(self) -> Iterator[int]:
        return iter(self.capacities)


@dataclass(frozen=True)
class PowerModel:
    """Equation 3: ``P(j) = P_static + (W_mode / capacity_scale)^alpha``."""

    modes: ModeSet
    static_power: float = 0.0
    alpha: float = 3.0
    capacity_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.static_power < 0:
            raise ConfigurationError(
                f"static power must be >= 0, got {self.static_power}"
            )
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {self.alpha}")
        if self.capacity_scale <= 0:
            raise ConfigurationError(
                f"capacity_scale must be > 0, got {self.capacity_scale}"
            )

    @classmethod
    def paper_experiment3(cls) -> PowerModel:
        """Experiment 3 configuration: modes ``{5, 10}``, ``α = 3`` and
        ``P_i = W_1³/10 + W_i³`` (§5.2)."""
        modes = ModeSet((5, 10))
        return cls(modes=modes, static_power=5.0**3 / 10.0, alpha=3.0)

    def mode_power(self, mode: int) -> float:
        """Power dissipated by one server operated at ``mode``."""
        cap = self.modes.capacity(mode) / self.capacity_scale
        return self.static_power + cap**self.alpha

    def load_power(self, load: int) -> float:
        """Power of a server serving ``load`` requests (load-determined mode)."""
        return self.mode_power(self.modes.mode_of(load))

    def placement_power(self, server_modes: Mapping[int, int] | Iterable[int]) -> float:
        """Total power of a solution (Equation 3 summed over servers).

        Accepts either ``{node: mode}`` or a bare iterable of mode indices.
        """
        modes = (
            server_modes.values()
            if isinstance(server_modes, Mapping)
            else server_modes
        )
        return sum(self.mode_power(m) for m in modes)
