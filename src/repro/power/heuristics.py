"""Polynomial-time power heuristics (§6 future work, implemented).

The paper's conclusion calls for "polynomial time heuristics with a lower
complexity than the optimal solution … perform some local optimizations to
better load-balance the number of requests per replica, with the goal of
minimizing the power consumption".  Two such heuristics live here:

* :func:`reuse_aware_greedy_power` — the GR capacity sweep with a
  reuse-preferring tie-break (cheap, improves cost, not power-aware);
* :func:`local_search_power` — hill-climbing over placements with
  add / remove / slide moves, minimising power subject to the cost bound.

`benchmarks/bench_ablation_heuristics.py` measures both against the optimal
bi-criteria DP on the Experiment-3 workload.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.costs import ModalCostModel
from repro.exceptions import InfeasibleError
from repro.power.greedy_power import GreedyPowerCandidates, greedy_power_candidates
from repro.power.modes import PowerModel
from repro.power.result import ModalPlacementResult, modal_from_replicas
from repro.tree.model import Tree

__all__ = ["reuse_aware_greedy_power", "local_search_power"]

_EPS = 1e-9


def reuse_aware_greedy_power(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
) -> GreedyPowerCandidates:
    """GR sweep that prefers pre-existing servers on flow ties.

    Same asymptotic cost as GR; the tie-break lowers the Equation-4 cost of
    the candidates (more reuse, fewer create/delete charges), which lets
    more of them fit under tight cost bounds.
    """
    return greedy_power_candidates(
        tree,
        power_model,
        cost_model,
        preexisting_modes,
        tie_break="prefer_preexisting",
    )


def local_search_power(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    cost_bound: float,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    initial: ModalPlacementResult | None = None,
    max_rounds: int = 100,
) -> ModalPlacementResult | None:
    """Hill-climb placements to reduce power under a cost bound.

    Moves per round, applied to the current replica set ``R``:

    * **add** — open a server on any node outside ``R`` (may downgrade an
      overloaded ancestor to a lower mode);
    * **remove** — close a server (its flow shifts to the closest ancestor
      server, which must have headroom);
    * **slide** — move a server to its parent or to one of its children
      (re-balances load along a path).

    The best strictly-power-improving valid move with ``cost <= cost_bound``
    is taken; ties on power prefer lower cost.  Terminates at a local
    optimum or after ``max_rounds``.

    Returns ``None`` when no feasible starting point under the bound exists
    (GR seeds the search unless ``initial`` is given).
    """
    pre = dict(preexisting_modes or {})
    current = initial
    if current is None:
        current = greedy_power_candidates(
            tree, power_model, cost_model, pre
        ).best_under_cost(cost_bound)
    if current is None or current.cost > cost_bound + _EPS:
        return None

    evaluations = 0

    def evaluate(replicas: frozenset[int]) -> ModalPlacementResult | None:
        nonlocal evaluations
        evaluations += 1
        try:
            res = modal_from_replicas(tree, replicas, power_model, cost_model, pre)
        except InfeasibleError:
            return None
        return res if res.cost <= cost_bound + _EPS else None

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        base = frozenset(current.server_modes)
        neighbours: set[frozenset[int]] = set()
        for v in range(tree.n_nodes):
            if v not in base:
                neighbours.add(base | {v})
        for v in base:
            neighbours.add(base - {v})
            p = tree.parent(v)
            if p is not None:
                neighbours.add((base - {v}) | {p})
            for c in tree.children(v):
                neighbours.add((base - {v}) | {c})
        neighbours.discard(base)

        best = current
        for cand in neighbours:
            res = evaluate(cand)
            if res is None:
                continue
            if res.power < best.power - _EPS or (
                abs(res.power - best.power) <= _EPS and res.cost < best.cost - _EPS
            ):
                best = res
        if best is current:
            break
        current = best

    return ModalPlacementResult(
        server_modes=current.server_modes,
        loads=current.loads,
        power=current.power,
        cost=current.cost,
        preexisting_modes=pre,
        extra={**dict(current.extra), "rounds": rounds, "evaluations": evaluations},
    )
