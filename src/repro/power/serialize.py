"""JSON-able records for the power layer.

The batch pipeline (:mod:`repro.batch`) moves only plain JSON data across
process and disk boundaries.  This module provides the dict round-trips
for the power-side parameters and results:

* :func:`power_model_to_dict` / :func:`power_model_from_dict` — the
  Equation-3 :class:`~repro.power.modes.PowerModel` (mode capacities,
  static power, alpha, capacity scale);
* :func:`modal_cost_model_to_dict` / :func:`modal_cost_model_from_dict`
  — the Equation-4 :class:`~repro.core.costs.ModalCostModel`;
* :func:`modal_result_to_record` — the relabelling-covariant core of a
  :class:`~repro.power.result.ModalPlacementResult`: its ``(cost, power,
  server modes)`` triple.  The loads/reuse bookkeeping is *not* stored;
  fan-out recomputes it in O(N) via
  :func:`~repro.power.result.modal_from_replicas`, which re-verifies the
  placement at the same time.

Frontier records (lists of such triples) are produced and consumed by
:meth:`~repro.power.dp_power_pareto.PowerFrontier.to_records` /
:meth:`~repro.power.dp_power_pareto.PowerFrontier.from_records`.

:func:`frontier_to_columnar` / :func:`frontier_from_columnar` are the
columnar alternative: the frontier's sorted cost/power columns travel as
two base64 little-endian float64 buffers (decoded zero-copy with
``np.frombuffer`` straight into the
:class:`~repro.power.result.FrontierColumns` backing — no per-point
float parsing), with the ragged placements as plain JSON.  The format is
versioned by ``_COLUMNAR_SCHEMA`` and covered by the ``schema-drift``
lint fingerprint.
"""

from __future__ import annotations

import base64
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError
from repro.power.modes import ModeSet, PowerModel
from repro.power.result import FrontierColumns, ModalPlacementResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.power.dp_power_pareto import PowerFrontier
    from repro.tree.model import Tree

__all__ = [
    "frontier_from_columnar",
    "frontier_to_columnar",
    "modal_cost_model_from_dict",
    "modal_cost_model_to_dict",
    "modal_result_to_record",
    "power_model_from_dict",
    "power_model_to_dict",
]

#: Version of the columnar frontier record layout.  Bump on any change
#: to the envelope produced by :func:`frontier_to_columnar`.
_COLUMNAR_SCHEMA = 1

#: The only accepted column dtype: little-endian IEEE-754 float64.  The
#: tag is stored explicitly so a future layout can widen it; the decoder
#: rejects anything else rather than trusting a wire-supplied dtype.
_COLUMN_DTYPE = "<f8"


def power_model_to_dict(model: PowerModel) -> dict[str, Any]:
    """Serialize a :class:`PowerModel` to a JSON-friendly dict."""
    return {
        "capacities": list(model.modes.capacities),
        "static_power": model.static_power,
        "alpha": model.alpha,
        "capacity_scale": model.capacity_scale,
    }


def power_model_from_dict(data: Mapping[str, Any]) -> PowerModel:
    """Inverse of :func:`power_model_to_dict`."""
    try:
        return PowerModel(
            modes=ModeSet(tuple(int(c) for c in data["capacities"])),
            static_power=float(data.get("static_power", 0.0)),
            alpha=float(data.get("alpha", 3.0)),
            capacity_scale=float(data.get("capacity_scale", 1.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed power model: {exc}") from exc


def modal_cost_model_to_dict(model: ModalCostModel) -> dict[str, Any]:
    """Serialize a :class:`ModalCostModel` to a JSON-friendly dict."""
    return {
        "create": list(model.create),
        "delete": list(model.delete),
        "changed": [list(row) for row in model.changed],
    }


def modal_cost_model_from_dict(data: Mapping[str, Any]) -> ModalCostModel:
    """Inverse of :func:`modal_cost_model_to_dict`."""
    try:
        return ModalCostModel(
            create=tuple(float(c) for c in data["create"]),
            delete=tuple(float(d) for d in data["delete"]),
            changed=tuple(
                tuple(float(c) for c in row) for row in data["changed"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed modal cost model: {exc}") from exc


def frontier_to_columnar(frontier: PowerFrontier) -> dict[str, Any]:
    """Serialize a frontier as a versioned columnar record.

    The sorted cost/power columns are emitted once as base64 ``<f8``
    buffers (straight from the frontier's
    :class:`~repro.power.result.FrontierColumns` backing); placements
    stay row-major JSON because they are ragged.  Like
    :meth:`~repro.power.dp_power_pareto.PowerFrontier.to_records` output,
    the record is relabelling-covariant through its ``modes`` lists.
    """
    costs = np.ascontiguousarray(frontier.columns.costs, dtype=_COLUMN_DTYPE)
    powers = np.ascontiguousarray(frontier.columns.powers, dtype=_COLUMN_DTYPE)
    modes: list[list[list[int]]] = []
    for pt in frontier.points:
        placement = pt.placement()
        if pt._root_mode is not None:
            placement[frontier._root] = pt._root_mode
        modes.append([[int(v), int(m)] for v, m in sorted(placement.items())])
    return {
        "columnar_schema": _COLUMNAR_SCHEMA,
        "dtype": _COLUMN_DTYPE,
        "n": len(frontier),
        "costs": base64.b64encode(costs.tobytes()).decode("ascii"),
        "powers": base64.b64encode(powers.tobytes()).decode("ascii"),
        "modes": modes,
    }


def frontier_from_columnar(
    tree: Tree,
    data: Mapping[str, Any],
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    extra: Mapping[str, object] | None = None,
    verify: bool = True,
) -> PowerFrontier:
    """Inverse of :func:`frontier_to_columnar`.

    The decoded buffers become the frontier's columnar backing without a
    per-element copy (``np.frombuffer`` over the base64 payload).  With
    ``verify=True`` every placement is re-verified and re-priced against
    the given models and the frontier ordering invariant is checked,
    exactly as :meth:`PowerFrontier.from_records` does.
    """
    from repro.power.dp_power_pareto import FrontierPoint, PowerFrontier

    try:
        schema = int(data["columnar_schema"])
        if schema != _COLUMNAR_SCHEMA:
            raise ConfigurationError(
                f"columnar frontier record has schema {schema}, expected "
                f"{_COLUMNAR_SCHEMA}"
            )
        if data.get("dtype", _COLUMN_DTYPE) != _COLUMN_DTYPE:
            raise ConfigurationError(
                f"columnar frontier record has dtype {data['dtype']!r}, "
                f"expected {_COLUMN_DTYPE!r}"
            )
        n = int(data["n"])
        costs = np.frombuffer(
            base64.b64decode(data["costs"]), dtype=_COLUMN_DTYPE
        )
        powers = np.frombuffer(
            base64.b64decode(data["powers"]), dtype=_COLUMN_DTYPE
        )
        modes = data["modes"]
        if costs.shape[0] != n or powers.shape[0] != n or len(modes) != n:
            raise ConfigurationError(
                f"columnar frontier record is inconsistent: n={n} but "
                f"{costs.shape[0]} costs / {powers.shape[0]} powers / "
                f"{len(modes)} placements"
            )
        points = [
            FrontierPoint(
                cost,
                power,
                None,
                None,
                tuple((int(v), int(m)) for v, m in placement),
            )
            for cost, power, placement in zip(
                costs.tolist(), powers.tolist(), modes, strict=True
            )
        ]
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed columnar frontier record: {exc}"
        ) from exc
    frontier = PowerFrontier(
        tree,
        points,
        power_model,
        cost_model,
        dict(preexisting_modes or {}),
        tree.root,
        extra=extra,
        columns=FrontierColumns(costs, powers),
    )
    if verify:
        frontier.columns.validate()
        for pt in frontier.points:
            frontier._materialise(pt)
    return frontier


def modal_result_to_record(result: ModalPlacementResult) -> dict[str, Any]:
    """The relabelling-covariant core of a modal solution.

    ``modes`` is a sorted ``[[node, mode], ...]`` list; cost and power are
    plain floats.  Everything else a
    :class:`~repro.power.result.ModalPlacementResult` carries is derived
    per instance during fan-out.
    """
    return {
        "cost": result.cost,
        "power": result.power,
        "modes": [[int(v), int(m)] for v, m in sorted(result.server_modes.items())],
    }
