"""JSON-able records for the power layer.

The batch pipeline (:mod:`repro.batch`) moves only plain JSON data across
process and disk boundaries.  This module provides the dict round-trips
for the power-side parameters and results:

* :func:`power_model_to_dict` / :func:`power_model_from_dict` — the
  Equation-3 :class:`~repro.power.modes.PowerModel` (mode capacities,
  static power, alpha, capacity scale);
* :func:`modal_cost_model_to_dict` / :func:`modal_cost_model_from_dict`
  — the Equation-4 :class:`~repro.core.costs.ModalCostModel`;
* :func:`modal_result_to_record` — the relabelling-covariant core of a
  :class:`~repro.power.result.ModalPlacementResult`: its ``(cost, power,
  server modes)`` triple.  The loads/reuse bookkeeping is *not* stored;
  fan-out recomputes it in O(N) via
  :func:`~repro.power.result.modal_from_replicas`, which re-verifies the
  placement at the same time.

Frontier records (lists of such triples) are produced and consumed by
:meth:`~repro.power.dp_power_pareto.PowerFrontier.to_records` /
:meth:`~repro.power.dp_power_pareto.PowerFrontier.from_records`.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError
from repro.power.modes import ModeSet, PowerModel
from repro.power.result import ModalPlacementResult

__all__ = [
    "modal_cost_model_from_dict",
    "modal_cost_model_to_dict",
    "modal_result_to_record",
    "power_model_from_dict",
    "power_model_to_dict",
]


def power_model_to_dict(model: PowerModel) -> dict[str, Any]:
    """Serialize a :class:`PowerModel` to a JSON-friendly dict."""
    return {
        "capacities": list(model.modes.capacities),
        "static_power": model.static_power,
        "alpha": model.alpha,
        "capacity_scale": model.capacity_scale,
    }


def power_model_from_dict(data: Mapping[str, Any]) -> PowerModel:
    """Inverse of :func:`power_model_to_dict`."""
    try:
        return PowerModel(
            modes=ModeSet(tuple(int(c) for c in data["capacities"])),
            static_power=float(data.get("static_power", 0.0)),
            alpha=float(data.get("alpha", 3.0)),
            capacity_scale=float(data.get("capacity_scale", 1.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed power model: {exc}") from exc


def modal_cost_model_to_dict(model: ModalCostModel) -> dict[str, Any]:
    """Serialize a :class:`ModalCostModel` to a JSON-friendly dict."""
    return {
        "create": list(model.create),
        "delete": list(model.delete),
        "changed": [list(row) for row in model.changed],
    }


def modal_cost_model_from_dict(data: Mapping[str, Any]) -> ModalCostModel:
    """Inverse of :func:`modal_cost_model_to_dict`."""
    try:
        return ModalCostModel(
            create=tuple(float(c) for c in data["create"]),
            delete=tuple(float(d) for d in data["delete"]),
            changed=tuple(
                tuple(float(c) for c in row) for row in data["changed"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed modal cost model: {exc}") from exc


def modal_result_to_record(result: ModalPlacementResult) -> dict[str, Any]:
    """The relabelling-covariant core of a modal solution.

    ``modes`` is a sorted ``[[node, mode], ...]`` list; cost and power are
    plain floats.  Everything else a
    :class:`~repro.power.result.ModalPlacementResult` carries is derived
    per instance during fan-out.
    """
    return {
        "cost": result.cost,
        "power": result.power,
        "modes": [[int(v), int(m)] for v, m in sorted(result.server_modes.items())],
    }
