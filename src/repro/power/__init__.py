"""Power-aware placement (the paper's §4 contribution).

* :mod:`~repro.power.modes` — mode sets and the Equation-3 power model;
* :mod:`~repro.power.dp_power_pareto` — exact MinPower(-BoundedCost) solver
  returning the full cost/power frontier (row-tuple oracle kernel);
* :mod:`~repro.power.dp_power_array` — structure-of-arrays numpy rebuild
  of the same kernel (production default; byte-identical frontiers);
* :mod:`~repro.power.kernels` — the ``kernel=`` knob mapping names to
  engines (``REPRO_POWER_KERNEL`` overrides the default);
* :mod:`~repro.power.dp_power_counts` — paper-faithful count-vector DP
  (Theorem 3 state space; validation reference);
* :mod:`~repro.power.greedy_power` — the GR capacity-sweep baseline of §5.2;
* :mod:`~repro.power.exhaustive_power` — brute-force oracle;
* :mod:`~repro.power.npcomplete` — Theorem 2's 2-Partition reduction;
* :mod:`~repro.power.heuristics` — §6 future-work heuristics.
"""

from repro.power.dp_power_array import power_frontier_array
from repro.power.dp_power_counts import power_frontier_counts
from repro.power.dp_power_pareto import (
    FrontierPoint,
    PowerFrontier,
    min_power,
    min_power_bounded_cost,
    power_frontier,
)
from repro.power.exhaustive_power import exhaustive_min_power, exhaustive_power_frontier
from repro.power.greedy_power import GreedyPowerCandidates, greedy_power_candidates
from repro.power.heuristics import local_search_power, reuse_aware_greedy_power
from repro.power.frontstore import FrontStore
from repro.power.kernels import DEFAULT_KERNEL, KERNELS, resolve_kernel
from repro.power.modes import ModeSet, PowerModel
from repro.power.npcomplete import (
    TwoPartitionReduction,
    build_reduction,
    partition_from_placement,
    solve_two_partition_via_minpower,
    two_partition_reference,
)
from repro.power.result import (
    FrontierColumns,
    ModalPlacementResult,
    modal_from_replicas,
)
from repro.power.serialize import (
    frontier_from_columnar,
    frontier_to_columnar,
    modal_cost_model_from_dict,
    modal_cost_model_to_dict,
    modal_result_to_record,
    power_model_from_dict,
    power_model_to_dict,
)

__all__ = [
    "DEFAULT_KERNEL",
    "KERNELS",
    "FrontStore",
    "FrontierColumns",
    "FrontierPoint",
    "GreedyPowerCandidates",
    "ModalPlacementResult",
    "ModeSet",
    "PowerFrontier",
    "PowerModel",
    "TwoPartitionReduction",
    "build_reduction",
    "exhaustive_min_power",
    "exhaustive_power_frontier",
    "frontier_from_columnar",
    "frontier_to_columnar",
    "greedy_power_candidates",
    "local_search_power",
    "min_power",
    "min_power_bounded_cost",
    "modal_cost_model_from_dict",
    "modal_cost_model_to_dict",
    "modal_from_replicas",
    "modal_result_to_record",
    "partition_from_placement",
    "power_frontier",
    "power_frontier_array",
    "power_frontier_counts",
    "power_model_from_dict",
    "power_model_to_dict",
    "resolve_kernel",
    "reuse_aware_greedy_power",
    "solve_two_partition_via_minpower",
    "two_partition_reference",
]
