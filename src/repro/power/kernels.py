"""Pareto-DP kernel selection.

Two interchangeable engines produce the exact cost/power frontier:

* ``"array"`` — :func:`~repro.power.dp_power_array.power_frontier_array`,
  the structure-of-arrays numpy kernel (default);
* ``"tuple"`` — :func:`~repro.power.dp_power_pareto.power_frontier`, the
  row-tuple kernel retained as the byte-identity *oracle*.

Both return byte-identical frontiers (pinned by
``tests/power/test_kernel_equivalence.py``); the knob exists so the
oracle stays one environment variable away in production and so CI can
matrix over both.  Resolution order: explicit ``kernel=`` argument, then
the ``REPRO_POWER_KERNEL`` environment variable, then
:data:`DEFAULT_KERNEL`.

Both kernels also accept a ``front_store=`` keyword — a kernel-bound
:class:`~repro.power.frontstore.FrontStore` (re-exported here) that
retains per-subtree tables *across* solves; it is the engine interface
the incremental re-solve sessions of :mod:`repro.dynamics.incremental`
are built on.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.exceptions import ConfigurationError
from repro.power.dp_power_array import power_frontier_array
from repro.power.dp_power_pareto import power_frontier
from repro.power.frontstore import FrontStore

__all__ = ["DEFAULT_KERNEL", "KERNELS", "FrontStore", "resolve_kernel"]

#: Kernel name -> solver callable (both share power_frontier's signature).
KERNELS: dict[str, Callable] = {
    "array": power_frontier_array,
    "tuple": power_frontier,
}

DEFAULT_KERNEL = "array"

#: Environment override consulted when no explicit kernel is requested.
_ENV_VAR = "REPRO_POWER_KERNEL"


def resolve_kernel(name: str | None = None) -> str:
    """Resolve a kernel name (argument > environment > default).

    Raises :class:`ConfigurationError` for unknown names so a typo'd
    override fails loudly instead of silently solving with the default.
    """
    resolved = name or os.environ.get(_ENV_VAR) or DEFAULT_KERNEL
    if resolved not in KERNELS:
        raise ConfigurationError(
            f"unknown power kernel {resolved!r}; expected one of "
            f"{sorted(KERNELS)}"
        )
    return resolved
