"""Cross-solve retention of per-subtree DP fronts (live sessions).

Both Pareto-DP kernels already share computed ``(node, flow)`` tables
*within* one solve through the labelled-AHU memo
(:func:`repro.batch.canonical.labelled_subtree_codes`): equal
``table_keys`` mean equal tables.  A :class:`FrontStore` extends that
contract *across* solves — the incremental re-solve engine
(:mod:`repro.dynamics.incremental`) applies a delta to a tree, re-solves,
and every subtree the delta did not touch is answered from the store
instead of being recomputed, so per-delta work collapses to the root
path of the edit plus cheap bookkeeping.

Three design points make this sound:

* **One intern table per store.**  ``labelled_subtree_codes`` ids are
  only comparable within the call that produced them; the store passes
  its own persistent ``intern`` dict into every relabelling (and into
  the incremental :meth:`FrontStore.advance_codes` path), so a table
  key means the same annotated subtree in *every* solve the store has
  seen.  Content addressing then makes invalidation implicit: a delta
  that changes a subtree changes its key, the lookup misses, and the
  subtree is recomputed — stale entries can never be returned, no
  matter what is (or is not) evicted.
* **Lazy isomorphisms.**  A hit at node ``v`` aliases the stored
  representative's front verbatim; mapping the representative's node
  ids onto the local ones is deferred behind :class:`LazyIso` (a
  mapping-like object built on first subscript), so serving a hit is
  O(fronts), not O(subtree) — the property that keeps per-delta latency
  sublinear in tree size when only a root path is recomputed.
* **Budgeted retention.**  Entries idle for :attr:`FrontStore.max_idle`
  generations are evicted at solve end, and blowing the entry/label/
  provenance budgets triggers a full :meth:`FrontStore.reset` (the next
  solve is cold).  Eviction is *only* a memory policy: correctness
  never depends on what is retained, because lookups are content-keyed.

The store is kernel-specific (``"tuple"`` rows vs ``"array"`` columnar
fronts are not interchangeable) and the kernels refuse a store built
for the other engine.  Served frontiers are byte-identical to cold
solves: aliased fronts carry exactly the representative's ``(g, p)``
values in canonical order, and every per-bucket dominance sweep is a
function of the candidate *multiset* only (pinned by
``tests/dynamics/test_incremental.py`` against both kernels).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.exceptions import ConfigurationError
from repro.tree.model import Tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.canonical import SubtreeCodes

__all__ = ["FrontStore", "LazyIso", "StoreEntry", "cross_tree_iso"]

#: Kernel names a store may be bound to (mirrors repro.power.kernels,
#: imported lazily to avoid a module cycle).
_KERNEL_NAMES = ("array", "tuple")


def cross_tree_iso(
    src_tree: Tree,
    src_codes: Sequence[int],
    src: int,
    dst_tree: Tree,
    dst_codes: Sequence[int],
    dst: int,
) -> dict[int, int]:
    """Isomorphism between equal-code subtrees of two trees.

    The two code sequences must come from one shared intern table (the
    store guarantees this), so equal codes identify isomorphic annotated
    subtrees across trees; pairing child lists sorted by code yields a
    load- and pre-mode-preserving bijection exactly as the within-solve
    :func:`repro.power.dp_power_pareto._subtree_iso` does.
    """
    mapping: dict[int, int] = {}
    stack = [(src, dst)]
    get_a = src_codes.__getitem__
    get_b = dst_codes.__getitem__
    while stack:
        a, b = stack.pop()
        mapping[a] = b
        ka = src_tree.children(a)
        if ka:
            kb = dst_tree.children(b)
            if len(ka) == 1:
                stack.append((ka[0], kb[0]))
            else:
                stack.extend(
                    zip(
                        sorted(ka, key=get_a),
                        sorted(kb, key=get_b),
                        strict=True,
                    )
                )
    return mapping


class LazyIso:
    """Mapping-like view of a cross-tree isomorphism, built on demand.

    Placement reconstruction subscripts isos one node at a time
    (``node = iso[node]``), so a ``__getitem__`` that materialises the
    full map on first use slots into both kernels' existing walks.  A
    hit whose placement is never reconstructed pays O(1).
    """

    __slots__ = (
        "_src_tree",
        "_src_codes",
        "_src_node",
        "_dst_tree",
        "_dst_codes",
        "_dst_node",
        "_map",
    )

    def __init__(
        self,
        src_tree: Tree,
        src_codes: Sequence[int],
        src_node: int,
        dst_tree: Tree,
        dst_codes: Sequence[int],
        dst_node: int,
    ) -> None:
        self._src_tree = src_tree
        self._src_codes = src_codes
        self._src_node = src_node
        self._dst_tree = dst_tree
        self._dst_codes = dst_codes
        self._dst_node = dst_node
        self._map: dict[int, int] | None = None

    def __getitem__(self, v: int) -> int:
        m = self._map
        if m is None:
            m = self._map = cross_tree_iso(
                self._src_tree,
                self._src_codes,
                self._src_node,
                self._dst_tree,
                self._dst_codes,
                self._dst_node,
            )
        return m[v]


class StoreEntry:
    """One retained subtree table (immutable once published)."""

    __slots__ = ("key", "tree", "codes", "node", "table", "n_labels", "last_gen")

    def __init__(
        self,
        key: int,
        tree: Tree,
        codes: Sequence[int],
        node: int,
        table: Mapping[int, Any],
        n_labels: int,
        last_gen: int,
    ) -> None:
        self.key = key
        self.tree = tree
        self.codes = codes
        self.node = node
        self.table = table
        self.n_labels = n_labels
        self.last_gen = last_gen


class FrontStore:
    """Retained per-subtree fronts shared across solves of one session.

    Parameters
    ----------
    kernel:
        ``"array"`` or ``"tuple"`` — the engine whose table layout the
        store holds; the kernels validate the binding.
    max_entries / max_labels:
        Retention budgets (table count / total labels across tables).
        Exceeding either at solve end triggers :meth:`reset`.
    max_idle:
        Entries not hit or published for this many solves are evicted
        at solve end (generation LRU).
    max_log_entries:
        Array-kernel provenance-log length budget; the shared log only
        grows while the store lives, so blowing it also resets.

    Attributes of note: :attr:`epoch` increments on every reset so
    session layers can detect that retained state (including the shared
    intern table) was dropped; :attr:`prov` is the array kernel's
    persistent provenance log (``None`` until first array solve, and
    owned here so aliases published in one solve stay resolvable in
    later ones).
    """

    def __init__(
        self,
        kernel: str,
        *,
        max_entries: int = 65536,
        max_labels: int = 5_000_000,
        max_idle: int = 64,
        max_log_entries: int = 4_000_000,
    ) -> None:
        if kernel not in _KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown front-store kernel {kernel!r}; expected one of "
                f"{sorted(_KERNEL_NAMES)}"
            )
        if max_entries < 1 or max_labels < 1 or max_idle < 1:
            raise ConfigurationError(
                "front-store budgets must be positive "
                f"(max_entries={max_entries}, max_labels={max_labels}, "
                f"max_idle={max_idle})"
            )
        self.kernel = kernel
        self.max_entries = max_entries
        self.max_labels = max_labels
        self.max_idle = max_idle
        self.max_log_entries = max_log_entries
        self._intern: dict[tuple, int] = {}
        self._entries: dict[int, StoreEntry] = {}
        self._labels_retained = 0
        self._gen = 0
        #: Array-kernel provenance log, owned across solves (see class
        #: docstring); typed loosely to keep this module import-light.
        self.prov: Any = None
        # Codes of the store's *current* tree (the one solves run on).
        self._codes_tree: Tree | None = None
        self._codes_pre: dict[int, int] = {}
        self._codes_sub: SubtreeCodes | None = None
        # Counters (monotonic except epoch-scoped ones).
        self.hits = 0
        self.misses = 0
        self.published = 0
        self.evictions = 0
        self.resets = 0
        self.epoch = 0

    # ------------------------------------------------------------------
    # code management (one shared intern table)
    # ------------------------------------------------------------------
    def codes_for(
        self, tree: Tree, preexisting: Iterable[int] | Mapping[int, int] = ()
    ) -> SubtreeCodes:
        """Subtree codes of ``tree`` under the store's intern table.

        Answered from the registered current codes when ``(tree, pre)``
        is unchanged; otherwise relabels from scratch (sharing the
        intern table keeps the resulting keys comparable with every
        retained entry).
        """
        from repro.batch.canonical import (
            _normalize_preexisting,
            labelled_subtree_codes,
        )

        pre_modes = _normalize_preexisting(preexisting)
        if (
            self._codes_sub is not None
            and self._codes_tree is tree
            and self._codes_pre == pre_modes
        ):
            return self._codes_sub
        sub = labelled_subtree_codes(tree, pre_modes, intern=self._intern)
        self._codes_tree = tree
        self._codes_pre = pre_modes
        self._codes_sub = sub
        return sub

    def advance_codes(
        self,
        new_tree: Tree,
        preexisting: Iterable[int] | Mapping[int, int],
        dirty: Iterable[int],
    ) -> SubtreeCodes:
        """Incrementally relabel after a delta touching ``dirty`` nodes.

        ``dirty`` must contain every node whose *own* code inputs
        changed: the attachment node of each client edit, and both the
        old and the new parent of a migrated subtree.  Everything else
        that can change is an ancestor of a dirty node (a node's key
        embeds its children's codes and nothing deeper), so recomputing
        the union of root paths, children before parents, reproduces
        exactly what a from-scratch relabelling under the same intern
        table would assign — pinned by the incremental test suite.

        Falls back to a full :meth:`codes_for` when no current codes
        are registered (first solve, or right after a :meth:`reset`).
        """
        from repro.batch.canonical import SubtreeCodes, _normalize_preexisting

        pre_modes = _normalize_preexisting(preexisting)
        old = self._codes_sub
        if (
            old is None
            or self._codes_tree is None
            or self._codes_pre != pre_modes
            or new_tree.n_nodes != len(old.codes)
        ):
            return self.codes_for(new_tree, pre_modes)
        codes = list(old.codes)
        keys = list(old.table_keys)
        affected: set[int] = set()
        parents = new_tree.parents
        for v in dirty:
            u: int | None = int(v)
            while u is not None and u not in affected:
                affected.add(u)
                u = parents[u]
        intern = self._intern
        loads = new_tree.client_loads
        children = new_tree.children
        depth = new_tree.depth
        # Deepest first: an affected node's affected children are
        # strictly deeper, so their codes are final when the parent's
        # key is rebuilt.  The loop body mirrors labelled_subtree_codes.
        for vi in sorted(affected, key=lambda v: (depth(v), v), reverse=True):
            kids_nodes = children(vi)
            kids = (
                tuple(sorted(codes[c] for c in kids_nodes)) if kids_nodes else ()
            )
            load = int(loads[vi])
            marker = pre_modes.get(vi, -1) + 1
            full_key = (load, marker, kids)
            c = intern.get(full_key)
            if c is None:
                c = intern[full_key] = len(intern)
            codes[vi] = c
            if marker:
                twin_key = (load, 0, kids)
                k = intern.get(twin_key)
                if k is None:
                    k = intern[twin_key] = len(intern)
                keys[vi] = k
            else:
                keys[vi] = c
        sub = SubtreeCodes(codes=tuple(codes), table_keys=tuple(keys))
        self._codes_tree = new_tree
        self._codes_pre = pre_modes
        self._codes_sub = sub
        return sub

    # ------------------------------------------------------------------
    # solve-scoped API (called by the kernels)
    # ------------------------------------------------------------------
    def begin_solve(self, kernel: str) -> None:
        """Open one solve generation; validates the kernel binding."""
        if kernel != self.kernel:
            raise ConfigurationError(
                f"front store is bound to the {self.kernel!r} kernel but the "
                f"{kernel!r} kernel was invoked with it; table layouts are "
                "not interchangeable"
            )
        self._gen += 1

    def lookup(self, key: int) -> StoreEntry | None:
        """Retained table for ``key`` (bumps its generation) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        entry.last_gen = self._gen
        self.hits += 1
        return entry

    def make_iso(
        self, entry: StoreEntry, tree: Tree, codes: Sequence[int], dst: int
    ) -> LazyIso:
        """Deferred isomorphism mapping ``entry``'s subtree onto ``dst``."""
        return LazyIso(entry.tree, entry.codes, entry.node, tree, codes, dst)

    def publish(
        self,
        key: int,
        tree: Tree,
        codes: Sequence[int],
        node: int,
        table: Mapping[int, Any],
        n_labels: int,
    ) -> None:
        """Retain one computed table (first publication of a key wins)."""
        if key in self._entries:
            return
        self._entries[key] = StoreEntry(
            key, tree, codes, node, table, n_labels, self._gen
        )
        self._labels_retained += n_labels
        self.published += 1

    def end_solve(self) -> None:
        """Close a solve: evict idle entries, enforce retention budgets."""
        horizon = self._gen - self.max_idle
        if horizon > 0:
            for key in [
                k for k, e in self._entries.items() if e.last_gen < horizon
            ]:
                self._labels_retained -= self._entries.pop(key).n_labels
                self.evictions += 1
        prov_len = 0 if self.prov is None else len(self.prov.kind)
        if (
            len(self._entries) > self.max_entries
            or self._labels_retained > self.max_labels
            or prov_len > self.max_log_entries
        ):
            self.reset()

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every retained structure; the next solve runs cold.

        The intern table goes too (alias chains and code ids reference
        it transitively), so the epoch bump tells session layers their
        cached codes are no longer comparable with future ones.
        """
        self._entries.clear()
        self._labels_retained = 0
        self._intern = {}
        self.prov = None
        self._codes_tree = None
        self._codes_pre = {}
        self._codes_sub = None
        self.resets += 1
        self.epoch += 1

    def release(self) -> None:
        """Release all retained tables (terminal; used by session close)."""
        self.reset()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def labels_retained(self) -> int:
        """Total labels across retained tables (budget accounting)."""
        return self._labels_retained

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for stats plumbing (JSON-able)."""
        return {
            "entries": len(self._entries),
            "labels_retained": self._labels_retained,
            "intern_size": len(self._intern),
            "hits": self.hits,
            "misses": self.misses,
            "published": self.published,
            "evictions": self.evictions,
            "resets": self.resets,
            "epoch": self.epoch,
            "generation": self._gen,
        }
