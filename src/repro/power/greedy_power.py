"""GR power baseline — the paper's §5.2 adaptation of the [19] greedy.

The greedy of Wu–Lin–Liu knows nothing about power; the paper makes it
power-aware exactly like this:

    "this algorithm does not account for power minimization, but minimizes
    the value of the maximal capacity W when given a cost bound.  More
    precisely, in the experiment we try all values 5 <= W <= 10, and
    compute the corresponding cost and power consumption.  To be fair, when
    a server has 5 requests or less, we operate it under the first mode W1.
    Given a bound on the cost, we keep the solution that minimizes the
    power consumption."

:func:`greedy_power_candidates` sweeps every integer capacity from ``W_1``
to ``W_M``, prices each greedy placement with load-determined modes, and
:meth:`GreedyPowerCandidates.best_under_cost` answers bound queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Literal

from repro.core.costs import ModalCostModel
from repro.core.greedy import greedy_placement
from repro.exceptions import InfeasibleError
from repro.power.modes import PowerModel
from repro.power.result import ModalPlacementResult, modal_from_replicas
from repro.tree.model import Tree

__all__ = ["GreedyPowerCandidates", "greedy_power_candidates"]

_EPS = 1e-9


@dataclass(frozen=True)
class GreedyPowerCandidates:
    """All (capacity-sweep) greedy solutions for one instance."""

    candidates: tuple[ModalPlacementResult, ...]
    extra: Mapping[str, object] = field(default_factory=dict)

    def best_under_cost(self, cost_bound: float) -> ModalPlacementResult | None:
        """Minimal-power candidate with cost within the bound, or ``None``."""
        best: ModalPlacementResult | None = None
        for cand in self.candidates:
            if cand.cost <= cost_bound + _EPS and (
                best is None or cand.power < best.power - _EPS
            ):
                best = cand
        return best

    def min_power(self) -> ModalPlacementResult | None:
        """Best candidate regardless of cost (GR's take on MinPower)."""
        return self.best_under_cost(float("inf"))

    def pairs(self) -> list[tuple[float, float]]:
        """(cost, power) of every candidate, sweep order."""
        return [(c.cost, c.power) for c in self.candidates]


def greedy_power_candidates(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    capacities: Sequence[int] | None = None,
    tie_break: Literal["index", "prefer_preexisting", "random"] = "index",
) -> GreedyPowerCandidates:
    """Run the GR capacity sweep.

    Parameters
    ----------
    capacities:
        Capacities to try; defaults to every integer from ``W_1`` to
        ``W_M`` (the paper sweeps 5..10 for modes ``{5, 10}``).
    tie_break:
        Forwarded to the greedy; ``"prefer_preexisting"`` gives the
        reuse-aware variant used by the heuristics ablation.
    """
    modes = power_model.modes
    pre = dict(preexisting_modes or {})
    sweep = (
        list(capacities)
        if capacities is not None
        else list(range(modes.capacities[0], modes.max_capacity + 1))
    )
    results: list[ModalPlacementResult] = []
    seen: set[frozenset[int]] = set()
    for w in sweep:
        if w < 1 or w > modes.max_capacity:
            continue
        try:
            placement = greedy_placement(
                tree, w, preexisting=pre.keys(), tie_break=tie_break
            )
        except InfeasibleError:
            continue  # capacity too small for this workload
        key = placement.replicas
        if key in seen:
            continue
        seen.add(key)
        results.append(
            modal_from_replicas(
                tree,
                placement.replicas,
                power_model,
                cost_model,
                pre,
                extra={"sweep_capacity": w},
            )
        )
    return GreedyPowerCandidates(candidates=tuple(results))
