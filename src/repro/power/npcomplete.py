"""The NP-completeness construction of Theorem 2 (§4.2, Figure 3).

The paper reduces 2-Partition to MinPower: given positive integers
``a_1..a_n`` with even sum ``S``, it builds a tree whose power-optimal
placements with consumption at most ``P_max`` correspond exactly to subsets
``I`` with ``Σ_{i∈I} a_i = S/2``.

Construction (with ``α = 2``; the proof allows any rational ``α ∈ [2,3]``):

* ``K = n·S²`` and ``X = 1/(α·K^{α-1}) = 1/(2K)``;
* modes ``W_1 = K``, ``W_{1+i} = K + a_i·X`` (one per item), and
  ``W_{n+2} = K + S·X``;
* the root has a client with ``K + (S/2)·X`` requests and children
  ``A_1..A_n``; each ``A_i`` has a client with ``a_i·X`` requests and one
  child ``B_i`` carrying a client with ``K`` requests;
* no static power, and the power cap is
  ``P_max = (K+S·X)^α + n·K^α + S/2 + (n-1)/n``.

Requests and capacities are rationals with denominator ``2K``, so we scale
*loads and capacities* by ``σ = 2K`` (making them integers, as
:class:`~repro.tree.model.Tree` requires) while the
:class:`~repro.power.modes.PowerModel` divides capacities by
``capacity_scale = σ`` before exponentiation — power values are computed on
the paper's original magnitudes and ``P_max`` needs no adjustment.

This module is executable evidence for Theorem 2 in both directions:
:func:`solve_two_partition_via_minpower` decides 2-Partition with the
MinPower solver, and the tests check it against a classical subset-sum
reference on randomised instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError
from repro.power.dp_power_pareto import min_power
from repro.power.modes import ModeSet, PowerModel
from repro.tree.model import Client, Tree

__all__ = [
    "TwoPartitionReduction",
    "build_reduction",
    "partition_from_placement",
    "solve_two_partition_via_minpower",
    "two_partition_reference",
]

_ALPHA = 2.0


@dataclass(frozen=True)
class TwoPartitionReduction:
    """The MinPower instance produced from a 2-Partition instance."""

    values: tuple[int, ...]
    tree: Tree
    power_model: PowerModel
    p_max: float
    scale: int
    a_nodes: tuple[int, ...]  #: node id of ``A_i`` for each item ``i``
    b_nodes: tuple[int, ...]  #: node id of ``B_i`` for each item ``i``

    @property
    def half_sum(self) -> int:
        return sum(self.values) // 2


def build_reduction(values: Sequence[int]) -> TwoPartitionReduction:
    """Build the Theorem-2 instance ``I2`` from 2-Partition instance ``I1``.

    Raises
    ------
    ConfigurationError
        For empty input, non-positive items, or an odd sum (the paper
        assumes ``S`` even; odd instances are trivially unsatisfiable and
        the gadget's root client would not scale to an integer).
    """
    vals = tuple(int(a) for a in values)
    if not vals:
        raise ConfigurationError("2-Partition needs at least one item")
    if any(a <= 0 for a in vals):
        raise ConfigurationError(f"items must be strictly positive, got {vals}")
    s = sum(vals)
    if s % 2:
        raise ConfigurationError(
            f"item sum {s} is odd; the reduction assumes an even sum "
            "(odd instances have no solution)"
        )
    if max(vals) >= s // 2:
        # Paper erratum: the proof of Theorem 2 asserts that the root's
        # K + (S/2)·X requests "can only be handled by W_{n+2}", which is
        # false when some a_j >= S/2 (mode W_{1+j} = K + a_j·X suffices and
        # the cheaper root mode lets unbalanced placements fit under P_max;
        # e.g. values (1,1,2,4) admit I = {all} at power 5K²+12 < P_max =
        # 5K²+12.75).  Such instances are trivially decidable — a_j > S/2
        # means "no", a_j = S/2 means "{j}" — so the reduction rightfully
        # assumes max(a) < S/2.  See DESIGN.md.
        raise ConfigurationError(
            f"reduction requires max(a) < S/2 (got max={max(vals)}, "
            f"S/2={s // 2}); decide such instances directly"
        )
    n = len(vals)
    k = n * s * s  # K = n·S², which satisfies K^α >= 5·a_i²·n/α² (§4.2)
    sigma = 2 * k  # scale = 1/X with X = 1/(2K) for α = 2

    # Scaled capacities; duplicate item values collapse to one mode, which
    # preserves semantics (mode_of maps loads to the same capacity).
    caps = {sigma * k}  # W_1 = K  ->  2K²
    for a in vals:
        caps.add(sigma * k + a)  # W_{1+i} = K + a_i X  ->  2K² + a_i
    caps.add(sigma * k + s)  # W_{n+2} = K + S X  ->  2K² + S
    modes = ModeSet(tuple(sorted(caps)))
    power_model = PowerModel(
        modes=modes, static_power=0.0, alpha=_ALPHA, capacity_scale=float(sigma)
    )

    # Tree: root 0; A_i = 1..n; B_i = n+1..2n (child of A_i).
    parents: list[int | None] = [None]
    a_nodes = []
    b_nodes = []
    for _ in range(n):
        a_nodes.append(len(parents))
        parents.append(0)
    for i in range(n):
        b_nodes.append(len(parents))
        parents.append(a_nodes[i])
    clients = [Client(0, sigma * k + s // 2)]  # K + (S/2)·X
    for i, a in enumerate(vals):
        clients.append(Client(a_nodes[i], a))  # a_i·X
        clients.append(Client(b_nodes[i], sigma * k))  # K
    tree = Tree(parents, clients)

    kf = float(k)
    xf = 1.0 / sigma
    p_max = (kf + s * xf) ** _ALPHA + n * kf**_ALPHA + s / 2 + (n - 1) / n
    return TwoPartitionReduction(
        values=vals,
        tree=tree,
        power_model=power_model,
        p_max=p_max,
        scale=sigma,
        a_nodes=tuple(a_nodes),
        b_nodes=tuple(b_nodes),
    )


def partition_from_placement(
    reduction: TwoPartitionReduction, server_modes: Mapping[int, int]
) -> set[int]:
    """Extract ``I = {i : replica on A_i}`` from a MinPower solution."""
    return {
        i for i, a_node in enumerate(reduction.a_nodes) if a_node in server_modes
    }


def solve_two_partition_via_minpower(values: Sequence[int]) -> set[int] | None:
    """Decide 2-Partition through the MinPower reduction (both directions).

    Returns a subset ``I`` with ``Σ_{i∈I} a_i = S/2``, or ``None`` when the
    instance (equivalently, the power bound) is unsatisfiable.  This is the
    constructive form of Theorem 2's "I1 has a solution iff I2 does".
    """
    vals = tuple(int(a) for a in values)
    s = sum(vals)
    if s % 2:
        return None
    # Degenerate family excluded by the reduction (see build_reduction):
    # an item above S/2 blocks any balanced split; an item equal to S/2 is
    # itself a certificate.
    biggest = max(range(len(vals)), key=lambda i: vals[i]) if vals else 0
    if vals and vals[biggest] > s // 2:
        return None
    if vals and vals[biggest] == s // 2:
        return {biggest}
    reduction = build_reduction(vals)
    # Power optimisation only; costs are irrelevant to Theorem 2 (the proof
    # holds "independently of the incurred cost").
    free = ModalCostModel.uniform(
        reduction.power_model.modes.n_modes, create=0.0, delete=0.0, changed=0.0
    )
    solution = min_power(reduction.tree, reduction.power_model, free)
    if solution.power > reduction.p_max + 1e-6:
        return None
    subset = partition_from_placement(reduction, solution.server_modes)
    if sum(vals[i] for i in subset) != reduction.half_sum:
        # Defensive: Theorem 2 guarantees this never happens for a solution
        # within P_max.
        raise ConfigurationError(
            "placement within P_max did not induce a balanced partition; "
            "reduction invariant violated"
        )
    return subset


def two_partition_reference(values: Sequence[int]) -> set[int] | None:
    """Classical subset-sum DP reference solver (certificate included)."""
    vals = tuple(int(a) for a in values)
    s = sum(vals)
    if s % 2:
        return None
    target = s // 2
    # reachable[t] = index of the last item used to first reach sum t.
    reachable: list[int | None] = [None] * (target + 1)
    reachable[0] = -1
    for idx, a in enumerate(vals):
        # Descending t: reachable[t - a] still holds its pre-pass value, so
        # each item is used at most once and predecessor items have smaller
        # indices (which makes the walk-back below terminate).
        for t in range(target, a - 1, -1):
            if reachable[t] is None and reachable[t - a] is not None:
                reachable[t] = idx
    if reachable[target] is None:
        return None
    subset: set[int] = set()
    t = target
    while t > 0:
        idx = reachable[t]
        assert idx is not None and idx >= 0
        subset.add(idx)
        t -= vals[idx]
    return subset
