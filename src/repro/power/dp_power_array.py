"""Array-native (structure-of-arrays) Pareto-label DP kernel.

This is the numpy rebuild of :mod:`repro.power.dp_power_pareto`'s hot
path.  The row kernel stores a ``(node, flow)`` front as a Python list of
``(g, p, back)`` tuples and merges children one candidate at a time (heap
stream-merge above ``_BRUTE_LIMIT``); per candidate that costs a tuple
allocation, two float boxes and interpreter dispatch.  Here a front is
three parallel sorted **column arrays** —

* ``g`` (cost so far, float64, strictly ascending),
* ``p`` (power so far, float64, strictly descending),
* ``prov`` (int64 indices into an append-only provenance log),

and a child merge materialises each output flow's candidate cross
products as broadcast **outer adds** over contiguous slices of the
flattened operand columns — no index arrays exist until after the
dominance sweep, when only the kept rows decode their operand
coordinates back from flat positions.  Large buckets first pass through
an *exact* certain-reject prefilter: the sweep's running best is always
within ``_EPS`` of the strict prefix-min of p, so a candidate with a
strictly-cheaper, no-more-powerful same-bucket peer can be dropped
before the sort ever sees it (a pilot envelope of block-edge rows plus a
stride sample supplies the peers).  The ``_EPS`` dominance sweep itself
(a running *accepted-only* minimum — not a plain cumulative minimum, see
below) runs over one bulk ``tolist()`` of the sorted power column, so
its cost is linear in the survivors with a small constant and it is
**bit-for-bit** the row kernel's sweep.

Byte identity with the row kernel is a hard contract, pinned by
``tests/power/test_kernel_equivalence.py`` (array vs tuple vs the
count-vector oracle).  The three rules that make it hold:

1. **Same summation order.**  Candidate values are built as
   ``acc + option`` with the accumulator operand first, options as
   ``front + scalar`` with the front operand first — float64 addition is
   not associative, so the vectorised adds mirror the row kernel's
   expression trees exactly (elementwise IEEE-754 float64 equals Python
   float arithmetic).
2. **Same sweep semantics.**  A candidate is accepted iff its ``p``
   improves the best *accepted* ``p`` by more than ``_EPS``; rejected
   candidates never tighten the threshold.  A vectorised
   ``np.minimum.accumulate`` mask is *not* equivalent (it tightens on
   rejected candidates whose ``p`` falls within the ``(_EPS, 1.5·_EPS)``
   window below the running best), so the sweep stays an exact scalar
   loop over the pre-sorted column — the sort, not the sweep, was the
   expensive part.
3. **Same root rounding.**  The root sweep rounds with Python's
   correctly-rounded ``round`` (``np.round`` scales-and-rints, which can
   differ in the last ulp) and flows through the shared
   :func:`~repro.power.dp_power_pareto.pareto_min_sweep` tie-break.

All of the row kernel's structural fast paths are kept, in columnar
form: identity skips for empty subtrees, verbatim front *aliasing* when
one operand is provably placement-free (the ``alias_p`` sentinel,
including its underflow guard), shifted singleton copies as pure vector
adds, and AHU subtree memoization whose alias tables share the
representative's ``g``/``p`` buffers zero-copy.  Provenance is columnar
too: one growable log of ``(kind, a, b, node, mode)`` entries plus a
side table of memo isomorphisms; placements are reconstructed by walking
log indices.  The returned :class:`FrontierPoint`\\ s hold ``(log, id)``
pairs and reconstruct lazily on :meth:`FrontierPoint.placement` — the
same deferral the row kernel gets from its label back-chains, so a
frontier consumer that only reads ``(cost, power)`` columns never pays
for placement walks.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

    from repro.perf.stats import ParetoDPStats
    from repro.power.frontstore import FrontStore

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.power.dp_power_pareto import (
    _EPS,
    _GP,
    FrontierPoint,
    PowerFrontier,
    _subtree_iso,
    pareto_min_sweep,
)
from repro.power.modes import PowerModel
from repro.power.result import FrontierColumns
from repro.tree.model import Tree

__all__ = ["power_frontier_array"]

_INF = float("inf")

#: Candidate count above which the block path runs the certain-reject
#: prefilter before sorting (the filter's pilot pass costs a few linear
#: scans; below this the lexsort is already cheap).
_FILTER_LIMIT = 4096
#: Every k-th candidate joins the pilot envelope alongside the block edge
#: rows — densifies the envelope for near-flat fronts at O(n/k) extra
#: pilot mass.
_PILOT_STRIDE = 64

#: A front: parallel (g, p, prov) columns, sorted g-ascending /
#: p-descending, Pareto by construction.  Fronts are immutable by
#: convention — merges build new columns or share existing ones verbatim.
_Front = tuple["NDArray[np.float64]", "NDArray[np.float64]", "NDArray[np.int64]"]

#: Provenance entry kinds (mirrors the row kernel's back tags).
_K_BASE = 0  #: the shared empty label (no placements)
_K_MERGE = 1  #: "m": combine labels a and b
_K_PLACE = 2  #: "x": combine a and b, placing a replica on node at mode
_K_ALIAS = 3  #: "s": memo alias of a through isomorphism isos[b]

_BASE_G = np.zeros(1)
_BASE_P = np.zeros(1)
_BASE_PROV = np.zeros(1, dtype=np.int64)
for _arr in (_BASE_G, _BASE_P, _BASE_PROV):
    _arr.setflags(write=False)
#: The shared base front: prov id 0 is every log's base entry.
_BASE_FRONT: _Front = (_BASE_G, _BASE_P, _BASE_PROV)


class _ProvLog:
    """Append-only columnar provenance log.

    Entry 0 is the base label.  ``a``/``b`` are log indices for merge and
    place entries; for alias entries ``a`` is the representative's log
    index and ``b`` indexes :attr:`isos`.  Columns are plain lists (the
    log grows by tens of thousands of entries, batch-extended from
    arrays) — reconstruction is a scalar walk anyway.
    """

    __slots__ = ("kind", "a", "b", "node", "mode", "isos")

    def __init__(self) -> None:
        self.kind: list[int] = [_K_BASE]
        self.a: list[int] = [0]
        self.b: list[int] = [0]
        self.node: list[int] = [0]
        self.mode: list[int] = [0]
        # dicts, or lazy mapping-like isos in front-store mode — the
        # placement walk only ever subscripts them.
        self.isos: list[Any] = []

    def append_merges(
        self,
        a_ids: NDArray[np.int64],
        b_ids: NDArray[np.int64],
        mode_col: NDArray[np.int64],
        node: int,
    ) -> NDArray[np.int64]:
        """Batch-append merge entries; mode -1 = pure pass, else place."""
        start = len(self.kind)
        modes = mode_col.tolist()
        n = len(modes)
        self.kind.extend(_K_MERGE if m < 0 else _K_PLACE for m in modes)
        self.a.extend(a_ids.tolist())
        self.b.extend(b_ids.tolist())
        self.node.extend([node] * n)
        self.mode.extend(modes)
        return np.arange(start, start + n, dtype=np.int64)

    def add_iso(self, iso: Any) -> int:
        """Register one memo isomorphism; returns its index for aliases."""
        self.isos.append(iso)
        return len(self.isos) - 1

    def append_aliases(
        self, rep_prov: NDArray[np.int64], iso_idx: int
    ) -> NDArray[np.int64]:
        """Batch-append memo-alias entries sharing one isomorphism."""
        start = len(self.kind)
        n = int(rep_prov.shape[0])
        self.kind.extend([_K_ALIAS] * n)
        self.a.extend(rep_prov.tolist())
        self.b.extend([iso_idx] * n)
        self.node.extend([0] * n)
        self.mode.extend([0] * n)
        return np.arange(start, start + n, dtype=np.int64)

    def placement(self, prov_id: int) -> dict[int, int]:
        """Reconstruct ``{node: mode}`` by walking the log (root excluded).

        Memo aliases are resolved by composing the accumulated subtree
        isomorphisms innermost-first, exactly as the row kernel does.
        """
        kind, a, b = self.kind, self.a, self.b
        node, mode, isos = self.node, self.mode, self.isos
        out: dict[int, int] = {}
        stack: list[tuple[int, tuple[dict[int, int], ...]]] = [(prov_id, ())]
        while stack:
            i, maps = stack.pop()
            k = kind[i]
            if k == _K_BASE:
                continue
            if k == _K_ALIAS:
                stack.append((a[i], (isos[b[i]], *maps)))
                continue
            if k == _K_PLACE:
                v = node[i]
                for iso in maps:
                    v = iso[v]
                out[v] = mode[i]
            stack.append((a[i], maps))
            stack.append((b[i], maps))
        return out


@dataclass(frozen=True)
class _LazyPoint(FrontierPoint):
    """A frontier point whose placement walk is deferred.

    Holds the solve's provenance log and this point's entry id; the walk
    runs only when :meth:`placement` is called (mirrors the row kernel's
    lazy back-chain points).
    """

    _prov_log: _ProvLog | None = None
    _prov_id: int = 0

    def placement(self) -> dict[int, int]:
        assert self._prov_log is not None
        return self._prov_log.placement(self._prov_id)


def _sweep_segment(
    p_list: list[float], start: int, end: int, out: list[int]
) -> None:
    """The exact ``_EPS`` dominance sweep over one sorted bucket.

    Appends the *positions* (into the sorted order) of accepted
    candidates.  ``best`` tightens only on acceptance — the accepted-only
    running minimum that a vectorised cumulative min cannot reproduce
    bit-for-bit (see the module docstring) — so this stays a scalar loop.
    """
    best = _INF
    append = out.append
    for i in range(start, end):
        p = p_list[i]
        if p < best - _EPS:
            best = p
            append(i)


def _front_sizes(table: Mapping[int, _Front]) -> dict[int, Any]:
    """Sized per-flow view for :meth:`ParetoDPStats.record_table`."""
    return {f: front[0] for f, front in table.items()}


def power_frontier_array(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    stats: ParetoDPStats | None = None,
    memoize: bool = True,
    front_store: FrontStore | None = None,
) -> PowerFrontier:
    """Exact cost/power frontier — array-kernel drop-in for
    :func:`~repro.power.dp_power_pareto.power_frontier`.

    Same signature, same exceptions, byte-identical frontier (pinned by
    the equivalence suite); only the merge engine differs.  The returned
    :class:`~repro.power.dp_power_pareto.PowerFrontier` shares the root
    sweep's output columns as its :class:`FrontierColumns` backing.

    ``front_store`` (an ``"array"``-bound :class:`repro.power.FrontStore`)
    switches table sharing from the solve-local memo to the store, which
    also retains every table across solves (``memoize`` is then ignored).
    The provenance log lives on the store in that mode, so aliases
    published in one solve stay resolvable in later ones.
    """
    modes = power_model.modes
    n_modes = modes.n_modes
    if cost_model.n_modes != n_modes:
        raise ConfigurationError(
            f"cost model covers {cost_model.n_modes} modes but the mode set "
            f"has {n_modes}"
        )
    pre = dict(preexisting_modes or {})
    for v, old in pre.items():
        if not (0 <= v < tree.n_nodes):
            raise ConfigurationError(f"pre-existing server {v} is not a tree node")
        if not (0 <= old < n_modes):
            raise ConfigurationError(
                f"pre-existing server {v} has invalid mode {old}"
            )
    w_max = modes.max_capacity
    caps = modes.capacities

    mode_power = [power_model.mode_power(m) for m in range(n_modes)]
    create_dg = [1.0 + cost_model.create[m] for m in range(n_modes)]
    reuse_dg = {
        old: [
            1.0 + cost_model.changed[old][m] - cost_model.delete[old]
            for m in range(n_modes)
        ]
        for old in set(pre.values())
    }

    # Same underflow guard as the row kernel: aliasing is sound only
    # while every mode power is strictly positive.
    alias_p = 0.0 if all(mp > 0.0 for mp in mode_power) else -1.0

    codes: Sequence[int] = ()
    table_keys: Sequence[int] = ()
    memo: dict[int, tuple[int, dict[int, _Front]]] = {}
    recurring: set[int] = set()
    if front_store is not None:
        # Store mode (live sessions): the session-owned store both answers
        # repeated subtrees within this solve and retains every computed
        # table for the next one, so the solve-local memo stays unused.
        front_store.begin_solve("array")
        sub = front_store.codes_for(tree, pre)
        codes, table_keys = sub.codes, sub.table_keys
    elif memoize:
        from collections import Counter

        from repro.batch.canonical import cached_subtree_codes

        sub = cached_subtree_codes(tree, pre)
        codes, table_keys = sub.codes, sub.table_keys
        key_counts = Counter(
            table_keys[v] for v in range(tree.n_nodes) if tree.children(v)
        )
        recurring = {key for key, count in key_counts.items() if count > 1}

    merges = 0
    labels_created = 0
    labels_generated = 0
    merge_rejected_n = 0
    memo_hits = 0
    memo_misses = 0
    memo_shared = 0

    if front_store is not None:
        # Stored alias columns index the session-wide log, so the log
        # must outlive any one solve: it lives on the store (created here
        # lazily so the store module stays kernel-agnostic).
        prov = front_store.prov
        if prov is None:
            prov = front_store.prov = _ProvLog()
    else:
        prov = _ProvLog()
    children = tree.children
    loads = tree.client_loads.tolist()
    tables: list[dict[int, _Front] | None] = [None] * tree.n_nodes
    int64 = np.int64
    neg_one = np.int64(-1)

    stack: list[int] = [tree.root]
    while stack:
        j = stack.pop()
        if j >= 0:
            kids = children(j)
            if kids and (front_store is not None or memoize):
                rep_table: Mapping[int, _Front] | None = None
                iso_obj: Any = None
                if front_store is not None:
                    entry = front_store.lookup(table_keys[j])
                    if entry is not None:
                        rep_table = entry.table
                        # Lazy iso: materialised only if a placement is
                        # reconstructed through it (keeps store hits
                        # O(fronts), not O(subtree)).
                        iso_obj = front_store.make_iso(entry, tree, codes, j)
                else:
                    hit = memo.get(table_keys[j])
                    if hit is not None:
                        rep, rep_table = hit
                        iso_obj = _subtree_iso(tree, codes, rep, j)
                if rep_table is not None:
                    # One iso shared by every aliased row; g/p columns are
                    # the representative's buffers, zero-copy.
                    iso_idx = prov.add_iso(iso_obj)
                    table: dict[int, _Front] = {
                        f: (front[0], front[1], prov.append_aliases(front[2], iso_idx))
                        for f, front in rep_table.items()
                    }
                    memo_hits += 1
                    if stats is not None:
                        memo_shared += sum(
                            len(front[0]) for front in table.values()
                        )
                    tables[j] = table
                    continue
                memo_misses += 1
            load = loads[j]
            if load > w_max:
                raise InfeasibleError(
                    f"direct client load {load} at node {j} exceeds W={w_max}",
                    node=j,
                )
            if not kids:
                tables[j] = {load: _BASE_FRONT}
                continue
            stack.append(~j)
            stack.extend(kids)
            continue

        # Post-visit: fold the children into this node.
        j = ~j
        load = loads[j]
        acc: dict[int, _Front] = {load: _BASE_FRONT}
        acc_is_base = True
        for child in children(j):
            child_table = tables[child]
            assert child_table is not None
            tables[child] = None
            dg_by_mode = reuse_dg[pre[child]] if child in pre else create_dg

            # Identity fast path: an empty subtree contributes nothing.
            if len(child_table) == 1:
                zf = child_table.get(0)
                if (
                    zf is not None
                    and len(zf[0]) == 1
                    # alias_p is a copied sentinel, compared bit-for-bit,
                    # never computed — audited equality.
                    # repro-lint: ignore[float-eq]
                    and zf[1][0] == alias_p
                    and dg_by_mode[0] >= 0.0
                ):
                    merges += 1
                    if stats is not None:
                        labels_created += sum(
                            len(front[0]) for front in acc.values()
                        )
                        stats.record_table(_front_sizes(acc))
                    continue

            # Flatten the child's fronts once: every merge path below
            # consumes the same placed/pass candidate columns.
            flows = list(child_table)
            fronts = [child_table[f] for f in flows]
            seg_len = [int(front[0].shape[0]) for front in fronts]
            if len(fronts) == 1:
                c_g, c_p, c_prov = fronts[0]
            elif fronts:
                c_g = np.concatenate([front[0] for front in fronts])
                c_p = np.concatenate([front[1] for front in fronts])
                c_prov = np.concatenate([front[2] for front in fronts])
            else:
                # Child overflowed W_M everywhere (infeasible below): its
                # table is empty, but the merge still runs for the stats
                # mirror — every downstream column is empty.
                c_g = np.empty(0)
                c_p = np.empty(0)
                c_prov = np.empty(0, dtype=int64)
            mode_by_flow = [bisect_left(caps, f) for f in flows]
            seg_rep = np.repeat(np.arange(len(flows)), seg_len)
            placed_g_col = c_g + np.asarray(
                [dg_by_mode[m] for m in mode_by_flow]
            )[seg_rep]
            placed_p_col = c_p + np.asarray(
                [mode_power[m] for m in mode_by_flow]
            )[seg_rep]
            placed_mode_col = np.asarray(mode_by_flow, dtype=int64)[seg_rep]

            # The pool of flow-0 candidates: every front placed (landing
            # on flow 0), plus the passed flow-0 front if there is one.
            if 0 in child_table:
                zf0 = child_table[0]
                pool_g_col = np.concatenate((placed_g_col, zf0[0]))
                pool_p_col = np.concatenate((placed_p_col, zf0[1]))
                pool_src = np.concatenate((c_prov, zf0[2]))
                pool_mode_col = np.concatenate(
                    (placed_mode_col, np.full(len(zf0[0]), neg_one))
                )
            else:
                pool_g_col = placed_g_col
                pool_p_col = placed_p_col
                pool_src = c_prov
                pool_mode_col = placed_mode_col
            pool_n = int(pool_g_col.shape[0])

            if acc_is_base:
                # First effective merge: the accumulator is the bare base
                # label, so pass fronts alias wholesale (shifted to
                # flow + load); only the pool needs a sweep.
                acc_is_base = False
                merged: dict[int, _Front] = {}
                for f, front in child_table.items():
                    if f:
                        ff = f + load
                        if ff <= w_max:
                            merged[ff] = front
                if stats is not None:
                    labels_created += pool_n + sum(
                        len(front[0]) for front in merged.values()
                    )
                if pool_n:
                    if pool_n > 1:
                        order = np.lexsort((pool_p_col, pool_g_col))
                        keep: list[int] = []
                        _sweep_segment(
                            pool_p_col[order].tolist(), 0, pool_n, keep
                        )
                        sel = order[np.asarray(keep, dtype=np.intp)]
                    else:
                        sel = np.zeros(1, dtype=np.intp)
                    kept_g = pool_g_col[sel]
                    kept_p = pool_p_col[sel]
                    kept_src = pool_src[sel]
                    kept_mode = pool_mode_col[sel]
                    placed_sel = np.flatnonzero(kept_mode >= 0)
                    prov_col = kept_src.copy()
                    if placed_sel.shape[0]:
                        prov_col[placed_sel] = prov.append_merges(
                            np.zeros(placed_sel.shape[0], dtype=int64),
                            kept_src[placed_sel],
                            kept_mode[placed_sel],
                            child,
                        )
                        labels_generated += int(placed_sel.shape[0])
                    merged[load] = (kept_g, kept_p, prov_col)
                merges += 1
                if stats is not None:
                    stats.record_table(_front_sizes(merged))
                acc = merged
                continue

            # General merge.  Options per child flow: pass the front
            # unchanged (mode -1), or the swept flow-0 pool.  Options are
            # virtual — provenance is allocated only for accepted merges.
            if pool_n > 1:
                order = np.lexsort((pool_p_col, pool_g_col))
                keep = []
                _sweep_segment(pool_p_col[order].tolist(), 0, pool_n, keep)
                sel = order[np.asarray(keep, dtype=np.intp)]
                opt0 = (
                    pool_g_col[sel],
                    pool_p_col[sel],
                    pool_src[sel],
                    pool_mode_col[sel],
                )
            else:
                opt0 = (pool_g_col, pool_p_col, pool_src, pool_mode_col)
            options: dict[int, tuple] = {
                f: child_table[f] for f in flows if f
            }
            options[0] = opt0

            # Flatten accumulator and options for the batched candidate
            # build (offsets feed the gather-index arithmetic below).
            acc_flows = list(acc)
            a_start: dict[int, int] = {}
            pos = 0
            for f1 in acc_flows:
                a_start[f1] = pos
                pos += int(acc[f1][0].shape[0])
            if len(acc_flows) == 1:
                a_g, a_p, a_prov = acc[acc_flows[0]]
            elif acc_flows:
                a_g = np.concatenate([acc[f1][0] for f1 in acc_flows])
                a_p = np.concatenate([acc[f1][1] for f1 in acc_flows])
                a_prov = np.concatenate([acc[f1][2] for f1 in acc_flows])
            else:
                a_g = np.empty(0)
                a_p = np.empty(0)
                a_prov = np.empty(0, dtype=int64)
            o_start: dict[int, int] = {}
            pos = 0
            opt_flows = list(options)
            for f2 in opt_flows:
                o_start[f2] = pos
                pos += int(options[f2][0].shape[0])
            o_total = pos
            o_g = np.concatenate([options[f2][0] for f2 in opt_flows])
            o_p = np.concatenate([options[f2][1] for f2 in opt_flows])
            o_src = np.concatenate([options[f2][2] for f2 in opt_flows])
            o_mode = np.full(o_total, neg_one)
            z0, zn = o_start[0], int(opt0[0].shape[0])
            o_mode[z0 : z0 + zn] = opt0[3]

            out_pairs: dict[int, list[tuple[int, int]]] = {}
            for f1 in acc_flows:
                for f2 in opt_flows:
                    f = f1 + f2
                    if f <= w_max:
                        prs = out_pairs.get(f)
                        if prs is None:
                            out_pairs[f] = [(f1, f2)]
                        else:
                            prs.append((f1, f2))

            merged = {}
            buckets: list[tuple[int, list[tuple[int, int, int, int]]]] = []
            for f, prs in out_pairs.items():
                if len(prs) == 1:
                    f1, f2 = prs[0]
                    front_a = acc[f1]
                    la = int(front_a[0].shape[0])
                    has_modes = f2 == 0
                    opt = options[f2]
                    lb = int(opt[0].shape[0])
                    labels_created += la * lb
                    if la == 1:
                        # Singleton accumulator: shifted copy (or alias).
                        g0 = float(front_a[0][0])
                        p0 = float(front_a[1][0])
                        aprov0 = int(front_a[2][0])
                        # repro-lint: ignore[float-eq] — audited sentinel.
                        if p0 == alias_p:
                            # Placement-free accumulator label: merging is
                            # the identity on the options — alias pass
                            # rows, allocate only for placed entries.
                            if has_modes:
                                og_col, op_col, osrc, omode_col = opt
                                placed_sel = np.flatnonzero(omode_col >= 0)
                                prov_col = osrc.copy()
                                if placed_sel.shape[0]:
                                    prov_col[placed_sel] = prov.append_merges(
                                        np.full(
                                            placed_sel.shape[0],
                                            aprov0,
                                            dtype=int64,
                                        ),
                                        osrc[placed_sel],
                                        omode_col[placed_sel],
                                        child,
                                    )
                                    labels_generated += int(
                                        placed_sel.shape[0]
                                    )
                                merged[f] = (og_col, op_col, prov_col)
                            else:
                                merged[f] = (opt[0], opt[1], opt[2])
                        else:
                            labels_generated += lb
                            mode_col = (
                                opt[3]
                                if has_modes
                                else np.full(lb, neg_one)
                            )
                            merged[f] = (
                                g0 + opt[0],
                                p0 + opt[1],
                                prov.append_merges(
                                    np.full(lb, aprov0, dtype=int64),
                                    opt[2],
                                    mode_col,
                                    child,
                                ),
                            )
                        continue
                    if lb == 1:
                        # Singleton option: shifted copy along the
                        # accumulator front (or verbatim alias).
                        g1 = opt[0][0]
                        p1 = opt[1][0]
                        src1 = int(opt[2][0])
                        m1 = int(opt[3][0]) if has_modes else -1
                        # repro-lint: ignore[float-eq] — audited sentinel.
                        if p1 == alias_p and m1 < 0:
                            merged[f] = front_a
                        else:
                            labels_generated += la
                            merged[f] = (
                                front_a[0] + g1,
                                front_a[1] + p1,
                                prov.append_merges(
                                    front_a[2],
                                    np.full(la, src1, dtype=int64),
                                    np.full(la, np.int64(m1)),
                                    child,
                                ),
                            )
                        continue
                    buckets.append((f, [(a_start[f1], la, o_start[f2], lb)]))
                    continue
                total = 0
                blks: list[tuple[int, int, int, int]] = []
                for f1, f2 in prs:
                    la = int(acc[f1][0].shape[0])
                    lb = int(options[f2][0].shape[0])
                    total += la * lb
                    blks.append((a_start[f1], la, o_start[f2], lb))
                labels_created += total
                buckets.append((f, blks))

            # Combinatorial buckets: per bucket, the candidate columns are
            # built as broadcast *outer adds* over contiguous slices of
            # the flattened operands (acc operand first — the summation
            # order contract) — no gather indices exist until after the
            # sweep, when only the few kept rows need their (row, option)
            # coordinates decoded back from flat positions.
            for f, blks in buckets:
                if len(blks) == 1:
                    b_as, b_na, b_os, b_nb = blks[0]
                    cg = (
                        a_g[b_as : b_as + b_na, None]
                        + o_g[b_os : b_os + b_nb]
                    ).ravel()
                    cp = (
                        a_p[b_as : b_as + b_na, None]
                        + o_p[b_os : b_os + b_nb]
                    ).ravel()
                else:
                    cg = np.concatenate(
                        [
                            (a_g[s : s + n, None] + o_g[o : o + m]).ravel()
                            for s, n, o, m in blks
                        ]
                    )
                    cp = np.concatenate(
                        [
                            (a_p[s : s + n, None] + o_p[o : o + m]).ravel()
                            for s, n, o, m in blks
                        ]
                    )
                n_bucket = int(cg.shape[0])
                labels_generated += n_bucket

                if n_bucket > _FILTER_LIMIT:
                    # Certain-reject prefilter.  The sweep's running best
                    # is sandwiched within _EPS of the strict prefix-min
                    # of p, so any same-bucket candidate with strictly
                    # smaller g and p' <= p *certainly* rejects this one
                    # (rejections never move the threshold, so dropping
                    # them is exact).  Pilot envelope: each block's edge
                    # candidates (its full last accumulator row and last
                    # option column — scalar-shifted slices, elementwise
                    # identical to the broadcast values) plus a coarse
                    # stride sample, g-sorted under a cumulative min — the
                    # dominated interior mass dies against it before the
                    # expensive lexsort ever sees it.
                    pg = np.concatenate(
                        [a_g[s : s + n] + o_g[o + m - 1] for s, n, o, m in blks]
                        + [a_g[s + n - 1] + o_g[o : o + m] for s, n, o, m in blks]
                        + [cg[::_PILOT_STRIDE]]
                    )
                    pp = np.concatenate(
                        [a_p[s : s + n] + o_p[o + m - 1] for s, n, o, m in blks]
                        + [a_p[s + n - 1] + o_p[o : o + m] for s, n, o, m in blks]
                        + [cp[::_PILOT_STRIDE]]
                    )
                    porder = np.argsort(pg, kind="stable")
                    pgs = pg[porder]
                    env = np.minimum.accumulate(pp[porder])
                    pos = np.searchsorted(pgs, cg, side="left") - 1
                    rej = pos >= 0
                    rej[rej] = env[pos[rej]] <= cp[rej]
                    surv = np.flatnonzero(~rej)
                    cg_s = cg[surv]
                    cp_s = cp[surv]
                else:
                    surv = None
                    cg_s = cg
                    cp_s = cp

                order = np.lexsort((cp_s, cg_s))
                keep: list[int] = []
                _sweep_segment(
                    cp_s[order].tolist(), 0, int(order.shape[0]), keep
                )
                sel = order[np.asarray(keep, dtype=np.intp)]
                if surv is not None:
                    sel = surv[sel]
                kept_g = cg[sel]
                kept_p = cp[sel]
                merge_rejected_n += n_bucket - int(sel.shape[0])

                # Decode the kept flat positions back to operand indices.
                if len(blks) == 1:
                    b_as, b_na, b_os, b_nb = blks[0]
                    ia_sel = b_as + sel // b_nb
                    io_sel = b_os + sel % b_nb
                else:
                    bsizes = np.asarray(
                        [n * m for _, n, _, m in blks], dtype=int64
                    )
                    bcum = np.concatenate(([0], np.cumsum(bsizes)))
                    bidx = np.searchsorted(bcum, sel, side="right") - 1
                    intra = sel - bcum[bidx]
                    b_as_col = np.asarray([s for s, _, _, _ in blks], dtype=int64)
                    b_os_col = np.asarray([o for _, _, o, _ in blks], dtype=int64)
                    b_nb_col = np.asarray([m for _, _, _, m in blks], dtype=int64)
                    ia_sel = b_as_col[bidx] + intra // b_nb_col[bidx]
                    io_sel = b_os_col[bidx] + intra % b_nb_col[bidx]
                merged[f] = (
                    kept_g,
                    kept_p,
                    prov.append_merges(
                        a_prov[ia_sel], o_src[io_sel], o_mode[io_sel], child
                    ),
                )

            merges += 1
            if stats is not None:
                stats.record_table(_front_sizes(merged))
            acc = merged
        tables[j] = acc
        if front_store is not None:
            front_store.publish(
                table_keys[j],
                tree,
                codes,
                j,
                acc,
                sum(int(front[0].shape[0]) for front in acc.values()),
            )
        elif memoize and table_keys[j] in recurring:
            memo[table_keys[j]] = (j, acc)

    root = tree.root
    root_table = tables[root]
    assert root_table is not None
    delete_constant = sum(cost_model.delete[old] for old in pre.values())
    root_dg = reuse_dg[pre[root]] if root in pre else create_dg

    # Root sweep: mirror the row kernel's expression tree — vectorised
    # ``(g + dg) + delete_constant`` sums, then Python's correctly-rounded
    # round per element (np.round can differ in the last ulp), then the
    # shared pareto_min_sweep tie-break.
    candidates: list[tuple[float, float, int, int]] = []
    for f, front in root_table.items():
        front_g, front_p, front_prov = front
        prov_ids = front_prov.tolist()
        if f == 0:
            variants = [(-1, 0.0, 0.0)]
            if root in pre:
                # Idle reused root (only ever optimal when deletion is
                # dearer than keeping a lowest-mode server).
                variants.append((0, root_dg[0], mode_power[0]))
        else:
            m = bisect_left(caps, f)
            variants = [(m, root_dg[m], mode_power[m])]
        for mode, dg, dp in variants:
            if mode < 0:
                total_g = front_g + delete_constant
                total_p = front_p
            else:
                total_g = (front_g + dg) + delete_constant
                total_p = front_p + dp
            candidates += [
                (round(g, 9), round(p, 9), pid, mode)
                for g, p, pid in zip(
                    total_g.tolist(), total_p.tolist(), prov_ids, strict=True
                )
            ]
    if not candidates:
        raise InfeasibleError("no valid replica placement exists")

    candidates.sort(key=_GP)
    swept = pareto_min_sweep(candidates)
    points: list[FrontierPoint] = [
        _LazyPoint(
            cost,
            power,
            None,
            None if mode < 0 else mode,
            None,
            prov,
            prov_id,
        )
        for cost, power, prov_id, mode in swept
    ]

    if front_store is not None:
        front_store.end_solve()
    if stats is not None:
        stats.merges += merges
        stats.labels_created += labels_created
        stats.labels_generated += labels_generated
        stats.merge_rejected += merge_rejected_n
        stats.memo_hits += memo_hits
        stats.memo_misses += memo_misses
        stats.memo_labels_shared += memo_shared
        stats.record_kernel("array")
    columns = FrontierColumns(
        np.asarray([pt.cost for pt in points]),
        np.asarray([pt.power for pt in points]),
    )
    return PowerFrontier(
        tree, points, power_model, cost_model, pre, root, columns=columns
    )
