"""MinPower / MinPower-BoundedCost — exact Pareto-label dynamic program.

This is the production engine behind the paper's §4.3 algorithm.  The paper
parameterises per-subtree tables by full count vectors — ``n_j`` new servers
per mode and ``e_{j,j'}`` reused servers per mode change — and minimises the
requests traversing the subtree root for every vector (complexity
``O(N·M·(N-E+1)^{2M}·(E+1)^{2M²})``, Theorem 3).  We observe that a count
vector influences the completion of a partial solution **only** through three
additive quantities:

* ``flow`` — requests leaving the subtree (integer, ``<= W_M``);
* ``g`` — cost accumulated so far, with reuse credited against the deletion
  charge (a reused server contributes ``1 + changed[o][m] - delete[o]``; a
  new one ``1 + create[m]``; the constant ``Σ_E delete[o]`` is re-added at
  the root, recovering Equation 4 exactly);
* ``p`` — power accumulated so far (Equation 3 summands).

Two partial solutions with equal flow and component-wise ordered ``(g, p)``
admit exactly the same completions with ordered totals, so dominated labels
can be discarded: per node we keep, for every flow value, only the Pareto
frontier over ``(g, p)``.  This is exact — it returns the same optima as the
count-vector DP (:mod:`repro.power.dp_power_counts`, cross-checked in the
tests) — and usually exponentially smaller.  Worst-case label growth remains
super-polynomial, as it must, since MinPower is NP-complete (Theorem 2).

Modes are *load-determined* (§2.2: ``W_{i-1} < req_j <= W_i`` ⇒ mode ``i``):
a placed server absorbing flow ``f`` runs at ``mode_of(f)``.  The paper's
pseudo-code loops over all modes with sufficient capacity; under Equation 3
power is strictly increasing in the mode, so only the load-determined mode
can appear in an optimal solution and the loop is redundant (see DESIGN.md).

The solver returns the **entire cost/power frontier**, so a single run
answers every cost-bound query of Experiment 3 (Figures 8–11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.stats import ParetoDPStats

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError, InfeasibleError, SolverError
from repro.power.modes import PowerModel
from repro.power.result import ModalPlacementResult, modal_from_replicas
from repro.tree.model import Tree

__all__ = [
    "PowerFrontier",
    "FrontierPoint",
    "power_frontier",
    "min_power",
    "min_power_bounded_cost",
]

_EPS = 1e-9


class _Label:
    """A non-dominated partial solution for one subtree.

    ``back`` encodes provenance for reconstruction:

    * ``None`` — base label (clients of the node itself);
    * ``("merge", acc_label, option_label)`` — child merged in;
    * ``("pass", child_label)`` — child kept replica-free;
    * ``("place", child_label, node, mode)`` — replica placed on the child.
    """

    __slots__ = ("flow", "g", "p", "back")

    def __init__(self, flow: int, g: float, p: float, back: tuple | None):
        self.flow = flow
        self.g = g
        self.p = p
        self.back = back


def _prune(labels: list[_Label]) -> list[_Label]:
    """Pareto-prune labels sharing a flow value: keep minimal (g, p)."""
    if len(labels) <= 1:
        return labels
    labels.sort(key=lambda L: (L.g, L.p))
    kept: list[_Label] = []
    best_p = float("inf")
    for lab in labels:
        if lab.p < best_p - _EPS:
            kept.append(lab)
            best_p = lab.p
    return kept


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated ``(cost, power)`` outcome at the root.

    Points carry either DP provenance (``_label`` + ``_root_mode``, the
    solver path) or an explicit ``_placement`` (the record path used when
    a frontier is rebuilt from a cached record via
    :meth:`PowerFrontier.from_records`).
    """

    cost: float
    power: float
    _label: _Label | None = None
    _root_mode: int | None = None
    _placement: tuple[tuple[int, int], ...] | None = None

    def placement(self) -> dict[int, int]:
        """Reconstruct the ``{node: mode}`` placement for this point.

        The DP path excludes the root (see :meth:`PowerFrontier
        ._materialise`); the record path returns the full placement.
        """
        if self._placement is not None:
            return {int(v): int(m) for v, m in self._placement}
        assert self._label is not None
        out: dict[int, int] = {}
        stack = [self._label]
        while stack:
            lab = stack.pop()
            back = lab.back
            if back is None:
                continue
            tag = back[0]
            if tag == "merge":
                stack.append(back[1])
                stack.append(back[2])
            elif tag == "pass":
                stack.append(back[1])
            else:  # "place"
                out[back[2]] = back[3]
                stack.append(back[1])
        return out


class PowerFrontier:
    """Full Pareto frontier of (cost, power) for one instance.

    Points are sorted by increasing cost (hence decreasing power).  The
    frontier answers all bi-criteria queries:

    * :meth:`best_under_cost` — MinPower-BoundedCost for any bound;
    * :meth:`min_power` — the unconstrained MinPower optimum;
    * :meth:`pairs` — raw series for plots (Figures 8–11).
    """

    def __init__(
        self,
        tree: Tree,
        points: Sequence[FrontierPoint],
        power_model: PowerModel,
        cost_model: ModalCostModel,
        preexisting_modes: Mapping[int, int],
        root_node: int,
        *,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        self._tree = tree
        self.points = list(points)
        self._power_model = power_model
        self._cost_model = cost_model
        self._pre = dict(preexisting_modes)
        self._root = root_node
        self.extra: dict[str, object] = dict(extra or {})

    def __len__(self) -> int:
        return len(self.points)

    def to_records(self) -> list[dict[str, object]]:
        """JSON-able ``[{cost, power, modes}, ...]`` frontier records.

        ``modes`` is the *full* sorted ``[[node, mode], ...]`` placement
        (root included).  Records are relabelling-covariant: mapping the
        node ids through a tree isomorphism yields the frontier of the
        relabelled instance — the property the batch cache relies on.
        """
        records: list[dict[str, object]] = []
        for pt in self.points:
            placement = pt.placement()
            if pt._root_mode is not None:
                placement[self._root] = pt._root_mode
            records.append(
                {
                    "cost": pt.cost,
                    "power": pt.power,
                    "modes": [[v, m] for v, m in sorted(placement.items())],
                }
            )
        return records

    @classmethod
    def from_records(
        cls,
        tree: Tree,
        records: Sequence[Mapping[str, object]],
        power_model: PowerModel,
        cost_model: ModalCostModel,
        preexisting_modes: Mapping[int, int] | None = None,
        *,
        extra: Mapping[str, object] | None = None,
        verify: bool = True,
    ) -> "PowerFrontier":
        """Rebuild a frontier from :meth:`to_records` output.

        With ``verify=True`` every point is materialised once, which
        re-verifies each placement against the tree (validity, load
        determined modes) and re-prices it against the given models —
        a corrupted or mis-mapped record raises :class:`SolverError`
        instead of being served.
        """
        points = [
            FrontierPoint(
                float(rec["cost"]),  # type: ignore[arg-type]
                float(rec["power"]),  # type: ignore[arg-type]
                None,
                None,
                tuple(
                    (int(v), int(m))
                    for v, m in rec["modes"]  # type: ignore[union-attr]
                ),
            )
            for rec in records
        ]
        frontier = cls(
            tree,
            points,
            power_model,
            cost_model,
            dict(preexisting_modes or {}),
            tree.root,
            extra=extra,
        )
        if verify:
            for pt in frontier.points:
                frontier._materialise(pt)
        return frontier

    def pairs(self) -> list[tuple[float, float]]:
        """Non-dominated ``(cost, power)`` pairs, cost-ascending."""
        return [(pt.cost, pt.power) for pt in self.points]

    def min_cost(self) -> float:
        """Cheapest achievable cost (power is then maximal on the frontier)."""
        return self.points[0].cost

    def best_under_cost(self, cost_bound: float) -> ModalPlacementResult | None:
        """Minimal-power solution with ``cost <= cost_bound`` (or ``None``).

        Power is non-increasing in cost along the frontier, so the answer is
        the *last* frontier point within the bound.
        """
        chosen: FrontierPoint | None = None
        for pt in self.points:
            if pt.cost <= cost_bound + _EPS:
                chosen = pt
            else:
                break
        if chosen is None:
            return None
        return self._materialise(chosen)

    def min_power(self) -> ModalPlacementResult:
        """Unconstrained MinPower optimum (the paper's mono-criterion goal)."""
        return self._materialise(self.points[-1])

    def best_under_power(self, power_bound: float) -> ModalPlacementResult | None:
        """Minimal-cost solution with ``power <= power_bound`` (or ``None``).

        The dual of :meth:`best_under_cost` — the paper's bi-criteria
        problem with the roles of the objectives swapped (a power *cap*
        with a cost objective, e.g. a rack power budget).  Cost is
        non-increasing in allowed power along the frontier, so the answer
        is the first frontier point within the bound.
        """
        for pt in self.points:
            if pt.power <= power_bound + _EPS:
                return self._materialise(pt)
        return None

    def _materialise(self, pt: FrontierPoint) -> ModalPlacementResult:
        placement = pt.placement()
        if pt._root_mode is not None:
            placement[self._root] = pt._root_mode
        result = modal_from_replicas(
            self._tree,
            placement.keys(),
            self._power_model,
            self._cost_model,
            self._pre,
            extra={"frontier_point": (pt.cost, pt.power)},
        )
        # The reconstruction must reproduce the label's bookkeeping exactly;
        # any drift indicates corrupted DP state.
        if abs(result.cost - pt.cost) > 1e-6 or abs(result.power - pt.power) > 1e-6:
            raise SolverError(
                f"reconstructed solution prices (cost={result.cost}, "
                f"power={result.power}) differ from frontier point "
                f"({pt.cost}, {pt.power})"
            )
        if result.server_modes != placement:
            raise SolverError(
                "load-determined modes of the reconstructed placement differ "
                "from the modes recorded during the DP"
            )
        return result


def power_frontier(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    stats: "ParetoDPStats | None" = None,
) -> PowerFrontier:
    """Compute the exact cost/power frontier for an instance.

    Parameters
    ----------
    tree:
        The distribution tree.
    power_model:
        Mode set and Equation-3 parameters.
    cost_model:
        Equation-4 modal cost model; must cover the same number of modes.
    preexisting_modes:
        ``{node: old_mode_index}`` for the pre-existing servers ``E``
        (empty for the NoPre variants).
    stats:
        Optional :class:`repro.perf.ParetoDPStats` collector; accumulates
        label-count statistics with negligible overhead.

    Raises
    ------
    InfeasibleError
        When no valid placement exists.
    """
    modes = power_model.modes
    if cost_model.n_modes != modes.n_modes:
        raise ConfigurationError(
            f"cost model covers {cost_model.n_modes} modes but the mode set "
            f"has {modes.n_modes}"
        )
    pre = dict(preexisting_modes or {})
    for v, old in pre.items():
        if not (0 <= v < tree.n_nodes):
            raise ConfigurationError(f"pre-existing server {v} is not a tree node")
        if not (0 <= old < modes.n_modes):
            raise ConfigurationError(
                f"pre-existing server {v} has invalid mode {old}"
            )
    w_max = modes.max_capacity

    # Placement price of a replica on `node` absorbing flow -> (dg, dp, mode)
    def place_price(node: int, flow: int) -> tuple[float, float, int]:
        m = modes.mode_of(flow)
        if node in pre:
            old = pre[node]
            dg = 1.0 + cost_model.changed[old][m] - cost_model.delete[old]
        else:
            dg = 1.0 + cost_model.create[m]
        return dg, power_model.mode_power(m), m

    tables: list[dict[int, list[_Label]] | None] = [None] * tree.n_nodes

    for v in tree.post_order():
        j = int(v)
        load = tree.client_load(j)
        if load > w_max:
            raise InfeasibleError(
                f"direct client load {load} at node {j} exceeds W={w_max}",
                node=j,
            )
        acc: dict[int, list[_Label]] = {load: [_Label(load, 0.0, 0.0, None)]}
        for child in tree.children(j):
            child_table = tables[child]
            assert child_table is not None
            tables[child] = None
            # Child options: pass the flow up, or absorb it with a replica
            # on the child (mode determined by the absorbed flow).
            options: dict[int, list[_Label]] = {}
            for f, labs in child_table.items():
                dg, dp, m = place_price(child, f)
                for lab in labs:
                    options.setdefault(f, []).append(
                        _Label(f, lab.g, lab.p, ("pass", lab))
                    )
                    options.setdefault(0, []).append(
                        _Label(0, lab.g + dg, lab.p + dp, ("place", lab, child, m))
                    )
            for f in options:
                options[f] = _prune(options[f])
            merged: dict[int, list[_Label]] = {}
            for f1, labs1 in acc.items():
                for f2, labs2 in options.items():
                    f = f1 + f2
                    if f > w_max:
                        continue
                    bucket = merged.setdefault(f, [])
                    for l1 in labs1:
                        for l2 in labs2:
                            bucket.append(
                                _Label(f, l1.g + l2.g, l1.p + l2.p, ("merge", l1, l2))
                            )
            if stats is not None:
                stats.record_merge()
                stats.record_created(sum(len(b) for b in merged.values()))
            for f in merged:
                merged[f] = _prune(merged[f])
            if stats is not None:
                stats.record_table(merged)
            acc = merged
        tables[j] = acc

    root = tree.root
    root_table = tables[root]
    assert root_table is not None
    delete_constant = sum(cost_model.delete[old] for old in pre.values())

    # Costs/powers are rounded to 9 decimals so that mathematically equal
    # sums accumulated in different orders collapse to one frontier point
    # (keeps frontiers comparable across solvers).
    def point(g: float, p: float, lab: _Label, mode: int | None) -> FrontierPoint:
        return FrontierPoint(round(g, 9), round(p, 9), lab, mode)

    candidates: list[FrontierPoint] = []
    for f, labs in root_table.items():
        for lab in labs:
            if f == 0:
                candidates.append(point(lab.g + delete_constant, lab.p, lab, None))
                if root in pre:
                    # Idle reused root (only ever optimal when deletion is
                    # dearer than keeping a lowest-mode server).
                    dg, dp, m = place_price(root, 0)
                    candidates.append(
                        point(lab.g + dg + delete_constant, lab.p + dp, lab, m)
                    )
            else:
                dg, dp, m = place_price(root, f)
                candidates.append(
                    point(lab.g + dg + delete_constant, lab.p + dp, lab, m)
                )
    if not candidates:
        raise InfeasibleError("no valid replica placement exists")

    candidates.sort(key=lambda pt: (pt.cost, pt.power))
    frontier: list[FrontierPoint] = []
    best_power = float("inf")
    for pt in candidates:
        if pt.power < best_power - _EPS:
            frontier.append(pt)
            best_power = pt.power
    return PowerFrontier(tree, frontier, power_model, cost_model, pre, root)


def min_power(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel | None = None,
    preexisting_modes: Mapping[int, int] | None = None,
) -> ModalPlacementResult:
    """Solve MinPower (§2.3): minimal power, cost unconstrained.

    The problem is NP-complete for arbitrary mode counts (Theorem 2); this
    exact solver is practical for the small mode counts of real processors
    and for the reduction instances of §4.2.
    """
    cm = cost_model or ModalCostModel.uniform(power_model.modes.n_modes)
    return power_frontier(tree, power_model, cm, preexisting_modes).min_power()


def min_power_bounded_cost(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    cost_bound: float,
    preexisting_modes: Mapping[int, int] | None = None,
) -> ModalPlacementResult:
    """Solve MinPower-BoundedCost (§2.3) for one bound.

    Raises :class:`InfeasibleError` when no placement meets the bound; use
    :func:`power_frontier` directly when sweeping bounds (Experiment 3).
    """
    frontier = power_frontier(tree, power_model, cost_model, preexisting_modes)
    result = frontier.best_under_cost(cost_bound)
    if result is None:
        raise InfeasibleError(
            f"no placement has cost <= {cost_bound} (cheapest is "
            f"{frontier.min_cost():.3f})"
        )
    return result
