"""MinPower / MinPower-BoundedCost — exact Pareto-label dynamic program.

This is the production engine behind the paper's §4.3 algorithm.  The paper
parameterises per-subtree tables by full count vectors — ``n_j`` new servers
per mode and ``e_{j,j'}`` reused servers per mode change — and minimises the
requests traversing the subtree root for every vector (complexity
``O(N·M·(N-E+1)^{2M}·(E+1)^{2M²})``, Theorem 3).  We observe that a count
vector influences the completion of a partial solution **only** through three
additive quantities:

* ``flow`` — requests leaving the subtree (integer, ``<= W_M``);
* ``g`` — cost accumulated so far, with reuse credited against the deletion
  charge (a reused server contributes ``1 + changed[o][m] - delete[o]``; a
  new one ``1 + create[m]``; the constant ``Σ_E delete[o]`` is re-added at
  the root, recovering Equation 4 exactly);
* ``p`` — power accumulated so far (Equation 3 summands).

Two partial solutions with equal flow and component-wise ordered ``(g, p)``
admit exactly the same completions with ordered totals, so dominated labels
can be discarded: per node we keep, for every flow value, only the Pareto
frontier over ``(g, p)``.  This is exact — it returns the same optima as the
count-vector DP (:mod:`repro.power.dp_power_counts`, cross-checked in the
tests) — and usually exponentially smaller.  Worst-case label growth remains
super-polynomial, as it must, since MinPower is NP-complete (Theorem 2).

Modes are *load-determined* (§2.2: ``W_{i-1} < req_j <= W_i`` ⇒ mode ``i``):
a placed server absorbing flow ``f`` runs at ``mode_of(f)``.  The paper's
pseudo-code loops over all modes with sufficient capacity; under Equation 3
power is strictly increasing in the mode, so only the load-determined mode
can appear in an optimal solution and the loop is redundant (see DESIGN.md).

The solver returns the **entire cost/power frontier**, so a single run
answers every cost-bound query of Experiment 3 (Figures 8–11).

Kernel
------
A label is one flat row tuple ``(g, p, back)``; a (node, flow) front is a
plain list of rows maintaining two invariants:

1. rows are sorted with ``g`` strictly increasing and ``p`` strictly
   decreasing, each step by more than ``_EPS`` (sorted *and* Pareto);
2. ``back`` is the label's provenance, referencing other rows directly —
   ``None`` (base, no placements), ``("m", a, b)`` (merge of two rows),
   ``("x", a, b, node, mode)`` (merge where a replica on ``node`` absorbs
   row ``b``'s flow at ``mode``), or ``("s", rep, iso)`` (memo alias, see
   below).  There is no separate label store: unreachable labels are
   garbage-collected with their tables, and sorts never compare ``back``
   (all candidate sorts key on ``(g, p)`` via :func:`operator.itemgetter`,
   so tie-breaking is deterministic by build order, never by reference).

The merge of a child into the accumulator never materialises the full
``|acc| × |options|`` cross product blindly.  The child's ``pass`` /
``place`` options are virtual (no label is allocated for an option; an
accepted merge row records the child row plus the placement decision
directly), and the bucket-pair work is tiered:

* **identity** — a child whose only completion is the empty flow-0 label at
  a non-negative placement price contributes nothing: the whole merge is
  skipped (``acc`` unchanged).  Empty leaves/subtrees — half the nodes of
  the paper's generators — cost one dict probe.
* **alias** — a label with ``p == 0.0`` provably carries *no placements*
  (every placement adds ``P_static + (W/s)^α > 0`` power), so merging with
  it is the identity on the other operand: the merged row *is* the other
  row, reused verbatim — for whole pass buckets, the row list itself is
  shared.  This collapses first-child merges and pass-only chains (high
  trees) to O(1) per bucket.  (The proof needs every mode power to be
  strictly positive; should ``(W/s)^α`` underflow to 0.0 with zero static
  power, the kernel detects it and disables aliasing for that solve.)
* **shifted copy** — when one operand front is a singleton the product
  inherits the other front's sortedness: the merged front is emitted by
  one comprehension, no sort, no sweep.
* **sort + sweep** — genuinely combinatorial buckets up to
  ``_BRUTE_LIMIT`` candidates materialise and sort the product (a C sort
  beats per-candidate discipline at this size), then apply the ``_EPS``
  dominance sweep.
* **stream merge** — larger products pop candidates from per-row sorted
  streams through a heap in global ``(g, p)`` order; after each pop a
  bisect on the stream's ``p`` column jumps directly to the next candidate
  that could still be accepted under the running best, so dominated
  candidates in between are *never generated at all*.

On top of the merge, the kernel memoizes tables by *labelled AHU subtree
code* (:func:`repro.batch.canonical.labelled_subtree_codes`): the table of
a subtree depends only on its shape, its per-node client-load sums and the
pre-existing modes strictly inside it (plus the root's own load), so two
nodes with equal ``table_keys`` share one computed table.  The second
occurrence is answered without visiting the subtree at all — its labels
are thin ``("s", rep, iso)`` aliases carrying the isomorphism that maps
the representative subtree's node ids onto the local ones, composed during
placement reconstruction.

Tie-breaking is explicit and shared with the count-vector oracle
(:func:`pareto_min_sweep`): candidates are processed in ascending exact
``(primary, secondary)`` order and one is kept iff its secondary value
improves the best seen by more than ``_EPS`` — so of two labels whose ``p``
tie within ``_EPS``, the one with strictly smaller ``g`` (or equal ``g``
and smaller ``p``) survives, deterministically, in every kernel.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from operator import itemgetter
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.stats import ParetoDPStats
    from repro.power.frontstore import FrontStore

from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError, InfeasibleError, SolverError
from repro.power.modes import PowerModel
from repro.power.result import (
    FrontierColumns,
    ModalPlacementResult,
    modal_from_replicas,
)
from repro.tree.model import Tree

__all__ = [
    "PowerFrontier",
    "FrontierPoint",
    "pareto_min_sweep",
    "power_frontier",
    "min_power",
    "min_power_bounded_cost",
]

_EPS = 1e-9

#: Sort key for candidate rows: compare (g, p) only — never the provenance
#: references that follow — so ties resolve by build order (stable sort),
#: deterministically.
_GP = itemgetter(0, 1)

#: Cross products up to this size are merged by sort+sweep (a C-speed sort
#: beats per-candidate heap discipline while everything fits in cache);
#: larger ones go through the stream-merging heap whose dominance skips
#: make the work output-sensitive instead of product-sensitive.  Both
#: paths accept exactly the same (g, p) set (see ``pareto_min_sweep``);
#: the split only trades constant factors.
_BRUTE_LIMIT = 1024

#: The shared base label: no flow absorbed yet beyond the node's own
#: clients, no placements, no provenance.  Immutable, hence one instance
#: serves every node of every solve.
_BASE = (0.0, 0.0, None)
_BASE_FRONT = [_BASE]


def pareto_min_sweep(candidates: Iterable[tuple]) -> list[tuple]:
    """Sweep ``(primary, secondary, ...)`` tuples sorted ascending.

    The one shared tie-breaking rule of the power solvers: a candidate is
    kept iff its ``secondary`` (index 1) improves the best seen so far by
    more than ``_EPS``.  Together with exact lexicographic pre-sorting
    this makes the kept set deterministic: among candidates whose
    secondary values tie within ``_EPS``, the first in sort order — the
    strictly cheaper ``primary``, or equal ``primary`` and smaller
    ``secondary`` — survives.  Used for the root frontier here and in
    :mod:`repro.power.dp_power_counts`, so both kernels emit identical
    frontiers by construction.
    """
    kept: list[tuple] = []
    best = float("inf")
    for cand in candidates:
        s = cand[1]
        if s < best - _EPS:
            kept.append(cand)
            best = s
    return kept


def _subtree_iso(
    tree: Tree, codes: Sequence[int], rep: int, dst: int
) -> dict[int, int]:
    """Isomorphism (node map) between two equal-code subtrees.

    Children with equal labelled codes root isomorphic annotated
    subtrees, so pairing the two child lists sorted by code yields a
    load- and pre-mode-preserving bijection regardless of how ties are
    ordered.
    """
    mapping: dict[int, int] = {}
    stack = [(rep, dst)]
    get = codes.__getitem__
    while stack:
        a, b = stack.pop()
        mapping[a] = b
        ka = tree.children(a)
        if ka:
            kb = tree.children(b)
            if len(ka) == 1:
                stack.append((ka[0], kb[0]))
            else:
                stack.extend(
                    zip(sorted(ka, key=get), sorted(kb, key=get), strict=True)
                )
    return mapping


def _merge_slow(
    prs: list[tuple], total: int, child: int
) -> tuple[list[tuple], int, int]:
    """Dominance-aware merge of the genuinely combinatorial buckets.

    ``prs`` holds ``(acc_front, option_front, has_modes)`` operand pairs
    whose products all land on one output flow; fronts satisfy the row
    invariants and ``total`` is the cross-product size.  Option fronts
    are 3-tuple rows for pure pass buckets (``has_modes`` false) or
    ``(g, p, row, mode)`` 4-tuples for the flow-0 bucket (mode ``-1`` =
    pass).  Returns ``(merged_front, generated, rejected)``.  The
    identity/alias/shifted fast paths live inline in
    :func:`power_frontier`.
    """
    out: list[tuple] = []
    best = float("inf")

    if total <= _BRUTE_LIMIT:
        cands: list[tuple] = []
        for front_a, front_b, has_modes in prs:
            if has_modes:
                for arow in front_a:
                    g0 = arow[0]
                    p0 = arow[1]
                    cands += [
                        (g0 + g1, p0 + p1, arow, r1, m1)
                        for g1, p1, r1, m1 in front_b
                    ]
            else:
                for arow in front_a:
                    g0 = arow[0]
                    p0 = arow[1]
                    cands += [
                        (g0 + brow[0], p0 + brow[1], arow, brow, -1)
                        for brow in front_b
                    ]
        cands.sort(key=_GP)
        for g, p, r0, r1, m in cands:
            if p < best - _EPS:
                best = p
                out.append(
                    (g, p, ("m", r0, r1) if m < 0 else ("x", r0, r1, child, m))
                )
        return out, total, total - len(out)

    # Stream merge: one sorted candidate stream per accumulator row, a
    # heap across streams, and a bisect skip past candidates the current
    # best already dominates (they are never generated).
    #
    # A stream's candidates ascend strictly in exact g *before* rounding,
    # but the float sum ``g0 + col_g[bv]`` can collapse a sub-ulp g step
    # to equality — a not-yet-generated successor ``(g, p')`` (possibly
    # from *another* stream whose head shares this g) then belongs before
    # the candidate just popped in global ``(g, p)`` order, yet is not in
    # the heap.  Popping out of order breaks the sweep (a dominated label
    # slips past the running best), so pops are batched per exact g value:
    # the cohort loop drains every equal-g entry, generating successors as
    # it goes (equal-g successors join the cohort transitively), then
    # processes the cohort in p-ascending order exactly as the sorted
    # brute sweep would.
    heap: list[tuple] = []
    seq = 0
    for front_a, front_b, has_modes in prs:
        if not front_b:
            continue
        if has_modes:
            col_g = [r[0] for r in front_b]
            col_p = [r[1] for r in front_b]
            col_r = [r[2] for r in front_b]
            col_m = [r[3] for r in front_b]
        else:
            col_g = [r[0] for r in front_b]
            col_p = [r[1] for r in front_b]
            col_r = list(front_b)
            col_m = None
        neg_p = [-x for x in col_p]
        cols = (col_g, col_p, col_r, col_m, neg_p)
        gb0 = col_g[0]
        pb0 = col_p[0]
        for arow in front_a:
            g0 = arow[0]
            p0 = arow[1]
            heap.append((g0 + gb0, p0 + pb0, seq, g0, p0, arow, 0, cols))
            seq += 1
    heapify(heap)
    generated = seq
    cohort: list[tuple] = []
    while heap:
        g = heap[0][0]
        while heap and heap[0][0] == g:  # repro-lint: ignore[float-eq]
            _, p, s, g0, p0, r0, bv, cols = heappop(heap)
            cohort.append((p, s, r0, bv, cols))
            col_g, col_p, neg_p = cols[0], cols[1], cols[4]
            # Next candidate of this stream that could still be accepted:
            # first bv' > bv with p0 + P[bv'] < best - _EPS.
            nxt = bisect_right(neg_p, p0 - best + _EPS, bv + 1)
            if nxt < len(col_g):
                seq += 1
                generated += 1
                heappush(
                    heap,
                    (g0 + col_g[nxt], p0 + col_p[nxt], seq, g0, p0, r0,
                     nxt, cols),
                )
        if len(cohort) > 1:
            cohort.sort()
        for p, s, r0, bv, cols in cohort:
            if p < best - _EPS:
                best = p
                col_r, col_m = cols[2], cols[3]
                m = -1 if col_m is None else col_m[bv]
                out.append(
                    (g, p, ("m", r0, col_r[bv]) if m < 0
                     else ("x", r0, col_r[bv], child, m))
                )
        cohort.clear()
    return out, generated, generated - len(out)


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated ``(cost, power)`` outcome at the root.

    Points carry either DP provenance (``_label``, a kernel row whose
    ``back`` chain encodes the placement, + ``_root_mode``) or an explicit
    ``_placement`` (the record path used when a frontier is rebuilt from a
    cached record via :meth:`PowerFrontier.from_records`).
    """

    cost: float
    power: float
    _label: tuple | None = None
    _root_mode: int | None = None
    _placement: tuple[tuple[int, int], ...] | None = None

    def placement(self) -> dict[int, int]:
        """Reconstruct the ``{node: mode}`` placement for this point.

        The DP path excludes the root (see :meth:`PowerFrontier
        ._materialise`); the record path returns the full placement.
        Memo aliases are resolved by composing the subtree isomorphisms
        accumulated along the walk (innermost applied first).
        """
        if self._placement is not None:
            return {int(v): int(m) for v, m in self._placement}
        assert self._label is not None
        out: dict[int, int] = {}
        stack: list[tuple[tuple, tuple]] = [(self._label, ())]
        while stack:
            row, maps = stack.pop()
            back = row[2]
            if back is None:
                continue
            tag = back[0]
            if tag == "m":
                stack.append((back[1], maps))
                stack.append((back[2], maps))
            elif tag == "x":
                node = back[3]
                for iso in maps:
                    node = iso[node]
                out[node] = back[4]
                stack.append((back[1], maps))
                stack.append((back[2], maps))
            else:  # "s": memo alias — enter the representative's id space
                stack.append((back[1], (back[2],) + maps))
        return out


class PowerFrontier:
    """Full Pareto frontier of (cost, power) for one instance.

    Points are sorted by increasing cost (hence decreasing power).  The
    frontier answers all bi-criteria queries:

    * :meth:`best_under_cost` — MinPower-BoundedCost for any bound;
    * :meth:`min_power` — the unconstrained MinPower optimum;
    * :meth:`pairs` — raw series for plots (Figures 8–11).

    Bound queries are O(log n) bisects over the sorted point columns —
    frontiers from bound sweeps (``repro batch --bound``) and long-lived
    serve processes answer many queries per solve, so the scan matters.
    """

    def __init__(
        self,
        tree: Tree,
        points: Sequence[FrontierPoint],
        power_model: PowerModel,
        cost_model: ModalCostModel,
        preexisting_modes: Mapping[int, int],
        root_node: int,
        *,
        extra: Mapping[str, object] | None = None,
        columns: FrontierColumns | None = None,
    ) -> None:
        self._tree = tree
        self.points = list(points)
        self._power_model = power_model
        self._cost_model = cost_model
        self._pre = dict(preexisting_modes)
        self._root = root_node
        self.extra: dict[str, object] = dict(extra or {})
        # Columnar backing for the bisect queries (costs ascending,
        # powers descending along the frontier): shared float64 buffers
        # when the caller already has them (the array kernel, a columnar
        # record decode), otherwise built from the points once.
        self.columns = (
            columns
            if columns is not None
            else FrontierColumns.from_pairs(
                [(pt.cost, pt.power) for pt in self.points]
            )
        )

    def __len__(self) -> int:
        return len(self.points)

    def to_records(self) -> list[dict[str, object]]:
        """JSON-able ``[{cost, power, modes}, ...]`` frontier records.

        ``modes`` is the *full* sorted ``[[node, mode], ...]`` placement
        (root included).  Records are relabelling-covariant: mapping the
        node ids through a tree isomorphism yields the frontier of the
        relabelled instance — the property the batch cache relies on.
        """
        records: list[dict[str, object]] = []
        for pt in self.points:
            placement = pt.placement()
            if pt._root_mode is not None:
                placement[self._root] = pt._root_mode
            records.append(
                {
                    "cost": pt.cost,
                    "power": pt.power,
                    "modes": [[v, m] for v, m in sorted(placement.items())],
                }
            )
        return records

    @classmethod
    def from_records(
        cls,
        tree: Tree,
        records: Sequence[Mapping[str, object]],
        power_model: PowerModel,
        cost_model: ModalCostModel,
        preexisting_modes: Mapping[int, int] | None = None,
        *,
        extra: Mapping[str, object] | None = None,
        verify: bool = True,
    ) -> PowerFrontier:
        """Rebuild a frontier from :meth:`to_records` output.

        With ``verify=True`` every point is materialised once, which
        re-verifies each placement against the tree (validity, load
        determined modes) and re-prices it against the given models —
        a corrupted or mis-mapped record raises :class:`SolverError`
        instead of being served.  The frontier ordering invariant
        (costs strictly ascending, powers strictly descending) is also
        checked: the bisect-based bound queries rely on it.
        """
        points = [
            FrontierPoint(
                float(rec["cost"]),  # type: ignore[arg-type]
                float(rec["power"]),  # type: ignore[arg-type]
                None,
                None,
                tuple(
                    (int(v), int(m))
                    for v, m in rec["modes"]  # type: ignore[union-attr]
                ),
            )
            for rec in records
        ]
        frontier = cls(
            tree,
            points,
            power_model,
            cost_model,
            dict(preexisting_modes or {}),
            tree.root,
            extra=extra,
        )
        if verify:
            frontier.columns.validate()
            for pt in frontier.points:
                frontier._materialise(pt)
        return frontier

    def pairs(self) -> list[tuple[float, float]]:
        """Non-dominated ``(cost, power)`` pairs, cost-ascending."""
        return [(pt.cost, pt.power) for pt in self.points]

    def min_cost(self) -> float:
        """Cheapest achievable cost (power is then maximal on the frontier)."""
        return self.points[0].cost

    def best_under_cost(self, cost_bound: float) -> ModalPlacementResult | None:
        """Minimal-power solution with ``cost <= cost_bound`` (or ``None``).

        Power is non-increasing in cost along the frontier, so the answer
        is the *last* frontier point within the bound — found by a
        ``searchsorted`` bisect over the columnar cost buffer.
        """
        idx = self.columns.index_under_cost(cost_bound)
        if idx < 0:
            return None
        return self._materialise(self.points[idx])

    def min_power(self) -> ModalPlacementResult:
        """Unconstrained MinPower optimum (the paper's mono-criterion goal)."""
        return self._materialise(self.points[-1])

    def best_under_power(self, power_bound: float) -> ModalPlacementResult | None:
        """Minimal-cost solution with ``power <= power_bound`` (or ``None``).

        The dual of :meth:`best_under_cost` — the paper's bi-criteria
        problem with the roles of the objectives swapped (a power *cap*
        with a cost objective, e.g. a rack power budget).  Cost is
        non-increasing in allowed power along the frontier, so the answer
        is the first frontier point within the bound — a ``searchsorted``
        bisect over the (negated) columnar power buffer.
        """
        idx = self.columns.index_under_power(power_bound)
        if idx >= len(self.points):
            return None
        return self._materialise(self.points[idx])

    def _materialise(self, pt: FrontierPoint) -> ModalPlacementResult:
        placement = pt.placement()
        if pt._root_mode is not None:
            placement[self._root] = pt._root_mode
        result = modal_from_replicas(
            self._tree,
            placement.keys(),
            self._power_model,
            self._cost_model,
            self._pre,
            extra={"frontier_point": (pt.cost, pt.power)},
        )
        # The reconstruction must reproduce the label's bookkeeping exactly;
        # any drift indicates corrupted DP state.
        if abs(result.cost - pt.cost) > 1e-6 or abs(result.power - pt.power) > 1e-6:
            raise SolverError(
                f"reconstructed solution prices (cost={result.cost}, "
                f"power={result.power}) differ from frontier point "
                f"({pt.cost}, {pt.power})"
            )
        if result.server_modes != placement:
            raise SolverError(
                "load-determined modes of the reconstructed placement differ "
                "from the modes recorded during the DP"
            )
        return result


def power_frontier(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    preexisting_modes: Mapping[int, int] | None = None,
    *,
    stats: ParetoDPStats | None = None,
    memoize: bool = True,
    front_store: FrontStore | None = None,
) -> PowerFrontier:
    """Compute the exact cost/power frontier for an instance.

    Parameters
    ----------
    tree:
        The distribution tree.
    power_model:
        Mode set and Equation-3 parameters.
    cost_model:
        Equation-4 modal cost model; must cover the same number of modes.
    preexisting_modes:
        ``{node: old_mode_index}`` for the pre-existing servers ``E``
        (empty for the NoPre variants).
    stats:
        Optional :class:`repro.perf.ParetoDPStats` collector; accumulates
        label-count statistics with negligible overhead.
    memoize:
        Share tables between subtrees with equal labelled AHU codes (see
        the module docstring).  On by default; disable for ablation —
        the frontier is identical either way.
    front_store:
        Optional :class:`repro.power.FrontStore` bound to the ``"tuple"``
        kernel.  When given, table sharing runs through the store instead
        of the solve-local memo (``memoize`` is then ignored): every
        internal-node table is looked up before computing and published
        after, so repeated subtrees are answered across *solves* — the
        live-session hot path of :mod:`repro.dynamics.incremental`.  The
        frontier is byte-identical either way.

    Raises
    ------
    InfeasibleError
        When no valid placement exists.
    """
    modes = power_model.modes
    n_modes = modes.n_modes
    if cost_model.n_modes != n_modes:
        raise ConfigurationError(
            f"cost model covers {cost_model.n_modes} modes but the mode set "
            f"has {n_modes}"
        )
    pre = dict(preexisting_modes or {})
    for v, old in pre.items():
        if not (0 <= v < tree.n_nodes):
            raise ConfigurationError(f"pre-existing server {v} is not a tree node")
        if not (0 <= old < n_modes):
            raise ConfigurationError(
                f"pre-existing server {v} has invalid mode {old}"
            )
    w_max = modes.max_capacity
    caps = modes.capacities

    # Placement price tables: a replica at mode m adds mode_power[m] power
    # and 1 + create[m] cost on a fresh node, or 1 + changed[o][m] -
    # delete[o] on a pre-existing one (reuse credited against the deletion
    # charge re-added at the root).  mode_of(flow) is bisect_left(caps, f).
    mode_power = [power_model.mode_power(m) for m in range(n_modes)]
    create_dg = [1.0 + cost_model.create[m] for m in range(n_modes)]
    reuse_dg = {
        old: [
            1.0 + cost_model.changed[old][m] - cost_model.delete[old]
            for m in range(n_modes)
        ]
        for old in set(pre.values())
    }

    # The alias fast paths rest on "p == 0.0 implies no placements",
    # which is only sound while every mode's power is strictly positive:
    # extreme alpha/capacity_scale combinations can underflow
    # ``(W/s)^alpha`` to exactly 0.0 with zero static power.  In that
    # (degenerate) regime the sentinel is unmatchable (-1.0: label powers
    # are never negative), which disables aliasing and routes everything
    # through the always-correct shifted/sort paths.
    alias_p = 0.0 if all(mp > 0.0 for mp in mode_power) else -1.0

    codes: Sequence[int] = ()
    table_keys: Sequence[int] = ()
    memo: dict[int, tuple[int, dict]] = {}
    recurring: set[int] = set()
    if front_store is not None:
        # Store mode (live sessions): the session-owned store both answers
        # repeated subtrees within this solve and retains every computed
        # table for the next one, so the solve-local memo stays unused.
        front_store.begin_solve("tuple")
        sub = front_store.codes_for(tree, pre)
        codes, table_keys = sub.codes, sub.table_keys
    elif memoize:
        from collections import Counter

        from repro.batch.canonical import cached_subtree_codes

        sub = cached_subtree_codes(tree, pre)
        codes, table_keys = sub.codes, sub.table_keys
        # Retain computed tables only for table keys that can actually
        # recur — on trees without repeated structure the memo would
        # otherwise pin every internal node's fronts until the solve
        # ends, instead of freeing them as the DFS unwinds.
        key_counts = Counter(
            table_keys[v] for v in range(tree.n_nodes) if tree.children(v)
        )
        recurring = {key for key, count in key_counts.items() if count > 1}

    merges = 0
    labels_created = 0
    labels_generated = 0
    merge_rejected_n = 0
    memo_hits = 0
    memo_misses = 0
    memo_shared = 0

    children = tree.children
    loads = tree.client_loads.tolist()
    tables: list[dict[int, list] | None] = [None] * tree.n_nodes

    # Explicit DFS (not post_order): a memo hit at a subtree root answers
    # the whole subtree without ever visiting its interior.
    stack: list[int] = [tree.root]
    while stack:
        j = stack.pop()
        if j >= 0:
            kids = children(j)
            if kids and (front_store is not None or memoize):
                rep_table: Mapping[int, list] | None = None
                iso: object | None = None
                if front_store is not None:
                    entry = front_store.lookup(table_keys[j])
                    if entry is not None:
                        rep_table = entry.table
                        # Lazy: the map is only materialised if a
                        # placement is reconstructed through it, keeping
                        # store hits O(fronts) rather than O(subtree).
                        iso = front_store.make_iso(entry, tree, codes, j)
                else:
                    hit = memo.get(table_keys[j])
                    if hit is not None:
                        rep, rep_table = hit
                        iso = _subtree_iso(tree, codes, rep, j)
                if rep_table is not None:
                    table: dict[int, list] = {
                        f: [
                            (row[0], row[1], ("s", row, iso)) for row in front
                        ]
                        for f, front in rep_table.items()
                    }
                    memo_hits += 1
                    if stats is not None:
                        memo_shared += sum(len(b) for b in table.values())
                    tables[j] = table
                    continue
                memo_misses += 1
            load = loads[j]
            if load > w_max:
                raise InfeasibleError(
                    f"direct client load {load} at node {j} exceeds W={w_max}",
                    node=j,
                )
            if not kids:
                tables[j] = {load: _BASE_FRONT}
                continue
            stack.append(~j)
            stack.extend(kids)
            continue

        # Post-visit: all children computed; fold them into this node.
        j = ~j
        load = loads[j]
        acc: dict[int, list] = {load: _BASE_FRONT}
        acc_is_base = True
        for child in children(j):
            child_table = tables[child]
            assert child_table is not None
            tables[child] = None
            dg_by_mode = reuse_dg[pre[child]] if child in pre else create_dg

            # Identity: a child whose only completion is "nothing below,
            # nothing passed up" (single flow-0 front, one placement-free
            # label) at a non-negative placement price can only contribute
            # the empty pass option — no bucket changes.
            if len(child_table) == 1:
                zf = child_table.get(0)
                if (
                    zf is not None
                    and len(zf) == 1
                    # alias_p is a copied sentinel, compared bit-for-bit,
                    # never computed — audited equality.
                    # repro-lint: ignore[float-eq]
                    and zf[0][1] == alias_p
                    and dg_by_mode[0] >= 0.0
                ):
                    merges += 1
                    if stats is not None:
                        labels_created += sum(len(b) for b in acc.values())
                        stats.record_table(acc)
                    continue

            if acc_is_base:
                # First effective merge: the accumulator is still the bare
                # base label (no placements), so merging is the identity on
                # the child's pass fronts — alias the row lists wholesale,
                # shifted to flow + load; only the placed pool (flow
                # ``load``) needs a sweep.
                acc_is_base = False
                merged: dict[int, list] = {}
                pool: list[tuple] = []
                for f, front in child_table.items():
                    m = bisect_left(caps, f)
                    dg = dg_by_mode[m]
                    dp = mode_power[m]
                    pool += [
                        (row[0] + dg, row[1] + dp, row, m) for row in front
                    ]
                    if f:
                        ff = f + load
                        if ff <= w_max:
                            merged[ff] = front
                    else:
                        pool += [(row[0], row[1], row, -1) for row in front]
                if stats is not None:
                    labels_created += len(pool) + sum(
                        len(b) for b in merged.values()
                    )
                if pool:
                    if len(pool) > 1:
                        pool.sort(key=_GP)
                    front = []
                    best = float("inf")
                    for g, p, r, m in pool:
                        if p < best - _EPS:
                            best = p
                            if m < 0:
                                front.append(r)
                            else:
                                front.append((g, p, ("x", _BASE, r, child, m)))
                                labels_generated += 1
                    merged[load] = front
                merges += 1
                if stats is not None:
                    stats.record_table(merged)
                acc = merged
                continue

            # General merge.  Child options per flow: pass the front
            # through unchanged, or place a replica on the child absorbing
            # the flow (all placed options land on flow 0, Pareto-merged
            # with the passed flow-0 front).  Options are virtual — no
            # labels are allocated for them.
            options: dict[int, list] = {}
            zero_pool: list[tuple] = []
            for f, front in child_table.items():
                m = bisect_left(caps, f)
                dg = dg_by_mode[m]
                dp = mode_power[m]
                zero_pool += [
                    (row[0] + dg, row[1] + dp, row, m) for row in front
                ]
                if f:
                    options[f] = front
                else:
                    zero_pool += [(row[0], row[1], row, -1) for row in front]
            if zero_pool:
                if len(zero_pool) > 1:
                    zero_pool.sort(key=_GP)
                    zfront: list[tuple] = []
                    best = float("inf")
                    for cand in zero_pool:
                        p = cand[1]
                        if p < best - _EPS:
                            best = p
                            zfront.append(cand)
                    options[0] = zfront
                else:
                    options[0] = zero_pool

            out_pairs: dict[int, list] = {}
            for f1, front_a in acc.items():
                for f2, front_b in options.items():
                    f = f1 + f2
                    if f <= w_max:
                        prs = out_pairs.get(f)
                        if prs is None:
                            out_pairs[f] = [(front_a, front_b, f2 == 0)]
                        else:
                            prs.append((front_a, front_b, f2 == 0))
            merged = {}
            for f, prs in out_pairs.items():
                if len(prs) == 1:
                    front_a, front_b, has_modes = prs[0]
                    la = len(front_a)
                    lb = len(front_b)
                    labels_created += la * lb
                    if la == 1:
                        # Singleton accumulator: the product inherits the
                        # option front's order — shifted copy, no sweep.
                        arow = front_a[0]
                        g0 = arow[0]
                        p0 = arow[1]
                        # repro-lint: ignore[float-eq] — audited sentinel.
                        if p0 == alias_p:
                            # Placement-free accumulator label: merging is
                            # the identity on the options — alias pass rows,
                            # allocate only for placed entries.
                            if has_modes:
                                front = []
                                for g, p, r, m in front_b:
                                    if m < 0:
                                        front.append(r)
                                    else:
                                        front.append(
                                            (g, p, ("x", arow, r, child, m))
                                        )
                                        labels_generated += 1
                                merged[f] = front
                            else:
                                merged[f] = front_b
                        else:
                            labels_generated += lb
                            merged[f] = (
                                [
                                    (
                                        g0 + g,
                                        p0 + p,
                                        ("m", arow, r) if m < 0
                                        else ("x", arow, r, child, m),
                                    )
                                    for g, p, r, m in front_b
                                ]
                                if has_modes
                                else [
                                    (
                                        g0 + brow[0],
                                        p0 + brow[1],
                                        ("m", arow, brow),
                                    )
                                    for brow in front_b
                                ]
                            )
                        continue
                    if lb == 1:
                        # Singleton option: symmetric shifted copy along
                        # the accumulator front.
                        if has_modes:
                            g1, p1, r1, m1 = front_b[0]
                        else:
                            r1 = front_b[0]
                            g1 = r1[0]
                            p1 = r1[1]
                            m1 = -1
                        # repro-lint: ignore[float-eq] — audited sentinel.
                        if p1 == alias_p and m1 < 0:
                            # Pure pass of a placement-free child label:
                            # reuse the accumulator front verbatim.
                            merged[f] = front_a
                        else:
                            labels_generated += la
                            merged[f] = [
                                (
                                    arow[0] + g1,
                                    arow[1] + p1,
                                    ("m", arow, r1) if m1 < 0
                                    else ("x", arow, r1, child, m1),
                                )
                                for arow in front_a
                            ]
                        continue
                    total = la * lb
                else:
                    total = 0
                    for front_a, front_b, _ in prs:
                        total += len(front_a) * len(front_b)
                    labels_created += total
                    if total == 0:
                        continue
                front, generated, rejected = _merge_slow(prs, total, child)
                if front:
                    merged[f] = front
                labels_generated += generated
                merge_rejected_n += rejected
            merges += 1
            if stats is not None:
                stats.record_table(merged)
            acc = merged
        tables[j] = acc
        if front_store is not None:
            front_store.publish(
                table_keys[j],
                tree,
                codes,
                j,
                acc,
                sum(len(b) for b in acc.values()),
            )
        elif memoize and table_keys[j] in recurring:
            memo[table_keys[j]] = (j, acc)

    root = tree.root
    root_table = tables[root]
    assert root_table is not None
    delete_constant = sum(cost_model.delete[old] for old in pre.values())
    root_dg = reuse_dg[pre[root]] if root in pre else create_dg

    # Costs/powers are rounded to 9 decimals so that mathematically equal
    # sums accumulated in different orders collapse to one frontier point
    # (keeps frontiers comparable across solvers).  Root mode -1 encodes
    # "no replica on the root".
    candidates: list[tuple] = []
    for f, front in root_table.items():
        if f == 0:
            candidates += [
                (
                    round(row[0] + delete_constant, 9),
                    round(row[1], 9),
                    row,
                    -1,
                )
                for row in front
            ]
            if root in pre:
                # Idle reused root (only ever optimal when deletion is
                # dearer than keeping a lowest-mode server).
                dg = root_dg[0]
                dp = mode_power[0]
                candidates += [
                    (
                        round(row[0] + dg + delete_constant, 9),
                        round(row[1] + dp, 9),
                        row,
                        0,
                    )
                    for row in front
                ]
        else:
            m = bisect_left(caps, f)
            dg = root_dg[m]
            dp = mode_power[m]
            candidates += [
                (
                    round(row[0] + dg + delete_constant, 9),
                    round(row[1] + dp, 9),
                    row,
                    m,
                )
                for row in front
            ]
    if not candidates:
        raise InfeasibleError("no valid replica placement exists")

    candidates.sort(key=_GP)
    points = [
        FrontierPoint(cost, power, row, None if m < 0 else m)
        for cost, power, row, m in pareto_min_sweep(candidates)
    ]

    if front_store is not None:
        front_store.end_solve()
    if stats is not None:
        stats.merges += merges
        stats.labels_created += labels_created
        stats.labels_generated += labels_generated
        stats.merge_rejected += merge_rejected_n
        stats.memo_hits += memo_hits
        stats.memo_misses += memo_misses
        stats.memo_labels_shared += memo_shared
        stats.record_kernel("tuple")
    return PowerFrontier(tree, points, power_model, cost_model, pre, root)


def min_power(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel | None = None,
    preexisting_modes: Mapping[int, int] | None = None,
) -> ModalPlacementResult:
    """Solve MinPower (§2.3): minimal power, cost unconstrained.

    The problem is NP-complete for arbitrary mode counts (Theorem 2); this
    exact solver is practical for the small mode counts of real processors
    and for the reduction instances of §4.2.
    """
    cm = cost_model or ModalCostModel.uniform(power_model.modes.n_modes)
    return power_frontier(tree, power_model, cm, preexisting_modes).min_power()


def min_power_bounded_cost(
    tree: Tree,
    power_model: PowerModel,
    cost_model: ModalCostModel,
    cost_bound: float,
    preexisting_modes: Mapping[int, int] | None = None,
) -> ModalPlacementResult:
    """Solve MinPower-BoundedCost (§2.3) for one bound.

    Raises :class:`InfeasibleError` when no placement meets the bound; use
    :func:`power_frontier` directly when sweeping bounds (Experiment 3).
    """
    frontier = power_frontier(tree, power_model, cost_model, preexisting_modes)
    result = frontier.best_under_cost(cost_bound)
    if result is None:
        raise InfeasibleError(
            f"no placement has cost <= {cost_bound} (cheapest is "
            f"{frontier.min_cost():.3f})"
        )
    return result
