"""Seeded, env-driven fault-injection registry.

The production solve path honours a small set of injection hooks so the
chaos tests and the ``chaos-smoke`` CI job can drive the full
server/cluster stack through hangs, segfaults, cache corruption, and
torn connections *deterministically*: every fault decision is a pure
function of the canonical digest (plus an explicit seed), never of
wall-clock time or global RNG state.

Activation is environment-driven.  ``REPRO_FAULTS`` holds a compact
``key=value;key=value`` spec:

``crash_on_digest=<prefix>[,<prefix>...]``
    SIGKILL the pool worker (or raise :class:`InjectedCrashError` when
    not inside a pool worker) before solving a matching digest.
``hang_seconds=<prefix>:<seconds>[,...]``
    Sleep ``seconds`` before solving a matching digest — long sleeps
    simulate a wedged solve and exercise the ``solve_timeout`` path.
``fail_rate=<rate>[:<seed>]``
    Raise :class:`InjectedFaultError` for a deterministic ``rate``
    fraction of digests (hash of ``seed:digest`` mapped to the unit
    interval).
``corrupt_line=<prefix>[,<prefix>...]``
    Mangle the cache line written for a matching digest, exercising the
    CRC verification + shard-quarantine path on the next load.
``corrupt_rate=<rate>[:<seed>]``
    Same, for a deterministic fraction of all digests.
``drop_connection=<prefix>[:<times>][,...]``
    Close the client connection instead of writing the response for a
    matching digest, at most ``times`` times (default 1) — exercises
    the client torn-connection retry path.

The plan is re-read whenever the raw env string changes, so tests can
flip faults on and off with ``monkeypatch.setenv``; pool workers
inherit the environment of the process that spawned them.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, ReproError

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFaultError",
    "active_plan",
    "parse_plan",
    "reset",
]

#: Environment variable holding the fault spec.
ENV_VAR = "REPRO_FAULTS"


class InjectedFaultError(ReproError):
    """A deterministic injected failure (``fail_rate``) for one digest.

    Request-specific: carried on the wire *without* a retriable code,
    so clients never retry it.
    """


class InjectedCrashError(InjectedFaultError):
    """``crash_on_digest`` fired outside a pool worker.

    Inside a pool worker the crash is a real SIGKILL (the pool breaks);
    in-process solve paths get this typed error instead so a chaos test
    cannot take down the test runner itself.
    """


def _unit(seed: int, digest: str) -> float:
    """Map ``(seed, digest)`` to [0, 1) without touching RNG state."""
    raw = hashlib.sha256(f"{seed}:{digest}".encode()).digest()
    return int.from_bytes(raw[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Parsed, immutable fault spec; decisions are digest-deterministic."""

    crash_digests: tuple[str, ...] = ()
    hangs: tuple[tuple[str, float], ...] = ()
    fail_rate: float = 0.0
    fail_seed: int = 0
    corrupt_digests: tuple[str, ...] = ()
    corrupt_rate: float = 0.0
    corrupt_seed: int = 0
    drops: tuple[tuple[str, int], ...] = ()

    # -- hooks ---------------------------------------------------------

    def on_solve(self, digest: str) -> None:
        """Called at the worker entry point before solving ``digest``."""
        for prefix in self.crash_digests:
            if digest.startswith(prefix):
                _crash(digest)
        for prefix, seconds in self.hangs:
            if digest.startswith(prefix):
                time.sleep(seconds)
        if self.fail_rate > 0.0 and _unit(self.fail_seed, digest) < self.fail_rate:
            raise InjectedFaultError(
                f"injected failure for digest {digest[:12]} "
                f"(fail_rate={self.fail_rate})"
            )

    def corrupt_cache_line(self, digest: str, line: str) -> str:
        """Return ``line``, mangled when the corruption fault matches."""
        hit = any(digest.startswith(p) for p in self.corrupt_digests) or (
            self.corrupt_rate > 0.0
            and _unit(self.corrupt_seed, digest) < self.corrupt_rate
        )
        if not hit:
            return line
        keep = max(len(line) - 8, 0)
        return line[:keep] + "#CORRUPT"

    def should_drop(self, digest: str | None) -> bool:
        """True when the response for ``digest`` should tear the connection."""
        if digest is None:
            return False
        for prefix, times in self.drops:
            if digest.startswith(prefix):
                with _state_lock:
                    used = _drop_counts.get(prefix, 0)
                    if used < times:
                        _drop_counts[prefix] = used + 1
                        return True
        return False


def _crash(digest: str) -> None:
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedCrashError(
        f"injected crash for digest {digest[:12]} (not in a pool worker)"
    )


# -- parsing ----------------------------------------------------------


def _parse_rate(value: str, key: str) -> tuple[float, int]:
    rate_s, _, seed_s = value.partition(":")
    try:
        rate = float(rate_s)
        seed = int(seed_s) if seed_s else 0
    except ValueError as exc:
        raise ConfigurationError(f"bad {key} spec {value!r}: {exc}") from exc
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{key} must be in [0, 1], got {rate}")
    return rate, seed


def parse_plan(spec: str) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Returns ``None`` for an empty/blank spec.  Raises
    :class:`~repro.exceptions.ConfigurationError` on malformed input.
    """
    spec = spec.strip()
    if not spec:
        return None
    crash: list[str] = []
    hangs: list[tuple[str, float]] = []
    fail_rate, fail_seed = 0.0, 0
    corrupt: list[str] = []
    corrupt_rate, corrupt_seed = 0.0, 0
    drops: list[tuple[str, int]] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        key, sep, value = clause.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ConfigurationError(f"bad fault clause {clause!r}")
        if key == "crash_on_digest":
            crash.extend(p for p in value.split(",") if p)
        elif key == "hang_seconds":
            for item in value.split(","):
                prefix, sep2, secs = item.partition(":")
                if not sep2 or not prefix:
                    raise ConfigurationError(f"bad hang_seconds item {item!r}")
                try:
                    hangs.append((prefix, float(secs)))
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad hang_seconds item {item!r}: {exc}"
                    ) from exc
        elif key == "fail_rate":
            fail_rate, fail_seed = _parse_rate(value, key)
        elif key == "corrupt_line":
            corrupt.extend(p for p in value.split(",") if p)
        elif key == "corrupt_rate":
            corrupt_rate, corrupt_seed = _parse_rate(value, key)
        elif key == "drop_connection":
            for item in value.split(","):
                prefix, _, times_s = item.partition(":")
                if not prefix:
                    raise ConfigurationError(f"bad drop_connection item {item!r}")
                try:
                    times = int(times_s) if times_s else 1
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad drop_connection item {item!r}: {exc}"
                    ) from exc
                drops.append((prefix, times))
        else:
            raise ConfigurationError(f"unknown fault key {key!r}")
    return FaultPlan(
        crash_digests=tuple(crash),
        hangs=tuple(hangs),
        fail_rate=fail_rate,
        fail_seed=fail_seed,
        corrupt_digests=tuple(corrupt),
        corrupt_rate=corrupt_rate,
        corrupt_seed=corrupt_seed,
        drops=tuple(drops),
    )


# -- env-driven activation --------------------------------------------

_state_lock = threading.Lock()
_drop_counts: dict[str, int] = {}
_cached_raw: str | None = None
_cached_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """Current plan per ``REPRO_FAULTS``, or ``None`` when inactive.

    Re-parses whenever the raw env value changes (resetting the
    bounded ``drop_connection`` counters), so the hot-path cost when
    the spec is stable is one dict lookup and a string compare.
    """
    global _cached_raw, _cached_plan
    raw = os.environ.get(ENV_VAR, "")
    if raw == _cached_raw:
        return _cached_plan
    with _state_lock:
        if raw != _cached_raw:
            _cached_plan = parse_plan(raw)
            _cached_raw = raw
            _drop_counts.clear()
    return _cached_plan


def reset() -> None:
    """Forget the cached plan and drop counters (test isolation)."""
    global _cached_raw, _cached_plan
    with _state_lock:
        _cached_raw = None
        _cached_plan = None
        _drop_counts.clear()
