"""Deterministic fault injection for chaos tests and the chaos CI job.

Re-exports the registry surface; see :mod:`repro.faults.registry` for
the ``REPRO_FAULTS`` grammar and the individual hooks.
"""

from __future__ import annotations

from repro.faults.registry import (
    ENV_VAR,
    FaultPlan,
    InjectedCrashError,
    InjectedFaultError,
    active_plan,
    parse_plan,
    reset,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFaultError",
    "active_plan",
    "parse_plan",
    "reset",
]
