"""Project-specific static analysis (``repro lint``).

A small AST-based linter encoding this repository's semantic
invariants — the contracts ruff and mypy cannot see:

================  ====================================================
rule id           invariant
================  ====================================================
determinism       digest/serialise modules never consume clocks,
                  randomness, unsorted set iteration or unsorted
                  ``json.dumps``
async-blocking    ``async def`` bodies in :mod:`repro.serve` never
                  sleep, do sync I/O or invoke solvers inline
float-eq          dominance/merge kernels never compare float
                  quantities with bare ``==``/``!=``
schema-drift      wire/cache surfaces match the committed fingerprint
                  baseline unless a schema version was bumped
picklable         callables handed to pools/executors are module-level
lock-discipline   lock-guarded cache state mutates only under its lock
================  ====================================================

Run via ``repro lint`` or ``python -m repro.lint``; suppress a finding
with ``# repro-lint: ignore[rule-id]`` on (or directly above) the line.
"""

from repro.lint.framework import (
    Finding,
    LintConfig,
    ModuleInfo,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.lint.runner import main, run

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "main",
    "register_rule",
    "run",
]
