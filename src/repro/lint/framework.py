"""Core machinery of the project linter: findings, rules, suppressions.

The linter is a small AST-based framework purpose-built for this
repository's invariants (deterministic digests, non-blocking serve
handlers, epsilon-disciplined float comparisons, pinned wire schemas,
picklable pool callables, lock-guarded cache state).  It is *not* a
general style checker — ruff covers that — but the rules here encode
semantic contracts no off-the-shelf tool knows about.

Vocabulary
----------
* :class:`Finding` — one diagnostic, pointing at a file/line/column.
* :class:`ModuleInfo` — a parsed source file plus its suppression map.
* :class:`Rule` — a check.  Module-scoped rules see one file at a time
  (restricted by ``default_patterns``); project-scoped rules
  (``project_wide = True``) see every collected module at once.
* Suppressions — ``# repro-lint: ignore[rule-id]`` on the offending
  line, or on a comment line directly above it.  ``ignore[a, b]``
  silences several rules, bare ``ignore`` silences all of them.

Rules self-register via :func:`register_rule`; importing
:mod:`repro.lint.rules` populates the registry.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<ids>[^\]]*)\])?"
)

#: Wildcard entry meaning "every rule is suppressed on this line".
SUPPRESS_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str  #: repo-relative posix path
    line: int  #: 1-based
    col: int  #: 1-based
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed on that line.

    A suppression comment covers its own line; when the comment sits on
    a line of its own, it additionally covers the next line (so a long
    offending statement can carry the comment above itself).
    """
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        raw = m.group("ids")
        ids = (
            {SUPPRESS_ALL}
            if raw is None or not raw.strip()
            else {part.strip() for part in raw.split(",") if part.strip()}
        )
        out.setdefault(lineno, set()).update(ids)
        if text.lstrip().startswith("#"):
            out.setdefault(lineno + 1, set()).update(ids)
    return {line: frozenset(ids) for line, ids in out.items()}


class ModuleInfo:
    """A parsed source file plus the metadata rules need."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.suppressions = _parse_suppressions(source)

    @classmethod
    def load(cls, path: Path, root: Path) -> ModuleInfo:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path, rel, path.read_text(encoding="utf-8"))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        if not ids:
            return False
        return rule_id in ids or SUPPRESS_ALL in ids


@dataclass(frozen=True)
class LintConfig:
    """Which files each rule applies to, plus project-level knobs.

    ``rule_patterns`` overrides a rule's ``default_patterns``; patterns
    are :mod:`fnmatch` globs matched against the module's posix relpath
    (so ``*/batch/cache.py`` matches at any depth).  An empty pattern
    tuple means "every collected module".
    """

    rule_patterns: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    baseline_path: Path | None = None
    write_schema_baseline: bool = False

    def patterns_for(self, rule: Rule) -> tuple[str, ...]:
        return tuple(self.rule_patterns.get(rule.id, rule.default_patterns))


def _matches(relpath: str, patterns: tuple[str, ...]) -> bool:
    if not patterns:
        return True
    return any(fnmatch.fnmatch(relpath, pat) for pat in patterns)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``description`` and implement :meth:`check`
    (module scope) or :meth:`check_project` (``project_wide = True``).
    Returned findings are filtered through the suppression map by the
    runner, so rules simply report everything they see.
    """

    id: str = ""
    description: str = ""
    #: fnmatch globs selecting the modules this rule runs on; () = all.
    default_patterns: tuple[str, ...] = ()
    #: project-wide rules see all modules at once via check_project().
    project_wide: bool = False

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: list[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())

    # -- helpers shared by concrete rules --------------------------------

    @staticmethod
    def dotted_name(node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    @staticmethod
    def terminal_name(node: ast.AST) -> str | None:
        """The last identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id (import repro.lint.rules first)."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def run_rules(
    modules: list[ModuleInfo],
    rules: Iterable[Rule],
    config: LintConfig,
) -> list[Finding]:
    """Apply rules to modules, honouring patterns and suppressions."""
    findings: list[Finding] = []
    by_rel = {m.relpath: m for m in modules}
    for rule in rules:
        patterns = config.patterns_for(rule)
        if rule.project_wide:
            raw = list(rule.check_project(modules, config))
        else:
            raw = []
            for module in modules:
                if _matches(module.relpath, patterns):
                    raw.extend(rule.check(module, config))
        for f in raw:
            mod = by_rel.get(f.path)
            if mod is not None and mod.is_suppressed(f.rule, f.line):
                continue
            findings.append(f)
    findings.sort(key=Finding.sort_key)
    return findings
