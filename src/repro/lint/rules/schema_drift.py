"""``schema-drift`` — wire/cache surfaces are pinned to a baseline.

The disk cache outlives the process: a record written by one version of
the code is read back by another.  Every surface that decides what
those bytes look like — ``PowerFrontier.to_records``/``from_records``,
each policy's ``digest_fields``/``record_schema``/``result_to_wire``,
the cache's line envelope, the JSON serialisers — is therefore paired
with a schema version constant (``record_schema``, ``_SCHEMA``,
``_DIGEST_SCHEMA``, ``CACHE_SCHEMA``, …).  Changing the surface without
bumping a version silently corrupts cross-version cache reads (stale
records parse but mean something else).

The rule fingerprints those surfaces **structurally** (a hash of the
normalised AST, so formatting and comments do not count) and the
version constants **by value**, and compares both against the committed
baseline ``baselines/schema_fingerprint.json``:

* surface changed, no version constant changed anywhere → **drift**:
  the dangerous case this rule exists for;
* surface changed alongside a version bump → stale baseline: regenerate
  it in the same commit (``repro lint --write-schema-baseline``);
* baseline missing → generate one.

Regenerating the baseline is itself a reviewed diff, which is the
point: the fingerprint file turns silent wire changes into visible ones.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import json
from collections.abc import Iterator
from pathlib import Path

from repro.lint.framework import Finding, LintConfig, ModuleInfo, Rule, register_rule

#: Baseline file location, relative to the lint root (the repo root).
DEFAULT_BASELINE = Path("baselines") / "schema_fingerprint.json"

_BASELINE_SCHEMA = 1

#: Methods/functions whose bodies are wire surfaces.
_SURFACE_FUNCTIONS = {
    "to_records",
    "from_records",
    "result_to_wire",
    "_envelope",
    "encode_line",
    "decode_line",
    "frontier_to_columnar",
    "frontier_from_columnar",
}
#: Class attributes that are wire surfaces (fingerprinted by value).
_SURFACE_ATTRS = {"digest_fields", "record_schema"}
#: Assignment names treated as schema version constants.
_VERSION_NAMES = {
    "_SCHEMA",
    "_ACCEPTED_SCHEMAS",
    "_COLUMNAR_SCHEMA",
    "_DIGEST_SCHEMA",
    "CACHE_SCHEMA",
    "record_schema",
}

_SURFACE_MODULES = (
    "*/batch/registry.py",
    "*/batch/cache.py",
    "*/batch/canonical.py",
    "*/batch/instance.py",
    "*/power/dp_power_pareto.py",
    "*/power/serialize.py",
    "*/tree/serialize.py",
    "*/experiments/store.py",
    "*/serve/protocol.py",
)


def _hash_node(node: ast.AST) -> str:
    dump = ast.dump(node, annotate_fields=True, include_attributes=False)
    return hashlib.sha256(dump.encode()).hexdigest()[:16]


def _literal_or_hash(node: ast.expr) -> object:
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return {"ast": _hash_node(node)}
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return value


def fingerprint_module(module: ModuleInfo) -> tuple[dict[str, str], dict[str, object]]:
    """(surfaces, versions) contributed by one module.

    Surface keys are ``relpath::QualName``; version keys likewise.
    """
    surfaces: dict[str, str] = {}
    versions: dict[str, object] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                if child.name in _SURFACE_FUNCTIONS:
                    surfaces[f"{module.relpath}::{qual}"] = _hash_node(child)
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                value = child.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    key = f"{module.relpath}::{prefix}{name}"
                    if name in _VERSION_NAMES:
                        versions[key] = _literal_or_hash(value)
                    elif name in _SURFACE_ATTRS and prefix:
                        surfaces[key] = _hash_node(value)

    visit(module.tree, "")
    return surfaces, versions


def fingerprint_project(
    modules: list[ModuleInfo],
) -> dict[str, object]:
    surfaces: dict[str, str] = {}
    versions: dict[str, object] = {}
    for module in modules:
        if not any(fnmatch.fnmatch(module.relpath, p) for p in _SURFACE_MODULES):
            continue
        s, v = fingerprint_module(module)
        surfaces.update(s)
        versions.update(v)
    return {
        "schema": _BASELINE_SCHEMA,
        "surfaces": dict(sorted(surfaces.items())),
        "versions": dict(sorted(versions.items())),
    }


def write_baseline(path: Path, fingerprint: dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(fingerprint, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@register_rule
class SchemaDriftRule(Rule):
    id = "schema-drift"
    description = (
        "wire/cache surfaces must not change without a schema version "
        "bump and a refreshed baselines/schema_fingerprint.json"
    )
    project_wide = True

    def check_project(
        self, modules: list[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        current = fingerprint_project(modules)
        baseline_path = config.baseline_path
        if baseline_path is None:
            baseline_path = DEFAULT_BASELINE
        if config.write_schema_baseline:
            write_baseline(baseline_path, current)
            return
        if not baseline_path.exists():
            yield Finding(
                rule=self.id,
                path=baseline_path.as_posix(),
                line=1,
                col=1,
                message=(
                    "schema baseline missing: generate it with "
                    "`repro lint --write-schema-baseline` and commit it"
                ),
            )
            return
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            yield Finding(
                rule=self.id,
                path=baseline_path.as_posix(),
                line=1,
                col=1,
                message=f"schema baseline unreadable ({exc}); regenerate it",
            )
            return

        by_rel = {m.relpath: m for m in modules}

        def scanned(key: str) -> bool:
            return key.partition("::")[0] in by_rel

        # A partial run (one file) must not mistake unscanned modules'
        # baseline entries for removals: compare only scanned relpaths.
        base_surfaces: dict[str, str] = {
            k: v for k, v in dict(baseline.get("surfaces", {})).items() if scanned(k)
        }
        base_versions: dict[str, object] = {
            k: v for k, v in dict(baseline.get("versions", {})).items() if scanned(k)
        }
        cur_surfaces: dict[str, str] = dict(current["surfaces"])  # type: ignore[arg-type]
        cur_versions: dict[str, object] = dict(current["versions"])  # type: ignore[arg-type]

        version_bumped = cur_versions != base_versions

        for key in sorted(set(base_surfaces) | set(cur_surfaces)):
            old = base_surfaces.get(key)
            new = cur_surfaces.get(key)
            if old == new:
                continue
            relpath, _, qual = key.partition("::")
            line = self._locate(by_rel.get(relpath), qual)
            what = (
                f"wire surface {qual} was removed"
                if new is None
                else f"new wire surface {qual} is not in the baseline"
                if old is None
                else f"wire surface {qual} changed"
            )
            msg = (
                f"{what}; a schema version also changed — refresh the "
                "baseline with `repro lint --write-schema-baseline` in "
                "this commit"
                if version_bumped
                else f"{what} without any schema version bump: stale cached "
                "records would be parsed under the new shape — bump the "
                "governing schema constant and refresh the baseline"
            )
            yield Finding(
                rule=self.id,
                path=relpath if relpath in by_rel else baseline_path.as_posix(),
                line=line,
                col=1,
                message=msg,
            )

        if not version_bumped:
            return
        # Versions moved but every surface matched: the baseline still
        # records the old version values — refresh it.
        for key in sorted(set(base_versions) | set(cur_versions)):
            if base_versions.get(key) == cur_versions.get(key):
                continue
            relpath, _, qual = key.partition("::")
            yield Finding(
                rule=self.id,
                path=relpath if relpath in by_rel else baseline_path.as_posix(),
                line=self._locate(by_rel.get(relpath), qual),
                col=1,
                message=(
                    f"schema version {qual} differs from the baseline — "
                    "refresh it with `repro lint --write-schema-baseline`"
                ),
            )

    @staticmethod
    def _locate(module: ModuleInfo | None, qual: str) -> int:
        """Best-effort line anchor for a dotted qualname."""
        if module is None:
            return 1
        leaf = qual.rsplit(".", 1)[-1]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == leaf:
                    return node.lineno
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == leaf:
                        return node.lineno
        return 1
