"""``picklable`` — pool/executor callables must be module-level.

``ProcessPoolExecutor`` (spawn or forkserver start methods) pickles the
submitted callable by qualified name: lambdas and closures raise
``PicklingError`` at runtime, typically only on the platform/start
method you did not test on.  The batch executor's ``_solve_chunk`` and
the experiment runners' chunked ``run_experimentN`` are module-level
for exactly this reason.

The rule flags the callable argument of ``submit(...)``, ``map(...)``
(on pool/executor objects) and ``run_in_executor(...)`` when it is

* a ``lambda`` literal,
* the name of a function *defined inside another function* (a closure),
* a name bound to a lambda anywhere in the module, or
* a ``functools.partial(...)`` whose first argument is any of the above.

Bound methods and module-level functions pass.  ``run_in_executor``
with a *thread* executor would tolerate closures at runtime, but the
serving code deliberately keeps every handed-off callable spawn-safe so
the executor can be swapped for a process pool without a rewrite.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import Finding, LintConfig, ModuleInfo, Rule, register_rule

_POOLISH_HINTS = ("pool", "executor", "_thread", "_process")


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            else:  # repro-lint keeps lexical scope: only defs nest
                visit(child, inside_function)

    visit(tree, False)
    return nested


def _lambda_bound_names(tree: ast.Module) -> set[str]:
    """Names assigned a lambda literal anywhere in the module."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.value, ast.Lambda)
            and isinstance(node.target, ast.Name)
        ):
            out.add(node.target.id)
    return out


@register_rule
class SpawnPicklableRule(Rule):
    id = "picklable"
    description = (
        "callables handed to pools/executors must be module-level "
        "importables, not lambdas or closures"
    )
    default_patterns = ()  # any module may hand work to an executor

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        nested = _nested_function_names(module.tree)
        lambdas = _lambda_bound_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            candidate = self._handed_callable(node)
            if candidate is None:
                continue
            reason = self._unpicklable_reason(candidate, nested, lambdas)
            if reason is not None:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=candidate.lineno,
                    col=candidate.col_offset + 1,
                    message=(
                        f"{reason} handed to an executor: spawn-based "
                        "process pools pickle by qualified name — move it "
                        "to module level"
                    ),
                )

    def _handed_callable(self, call: ast.Call) -> ast.expr | None:
        """The callable argument of a pool/executor hand-off, if any."""
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        if method == "run_in_executor":
            # loop.run_in_executor(executor, func, *args)
            return call.args[1] if len(call.args) >= 2 else None
        if method in {"submit", "map"}:
            owner = self.terminal_name(call.func.value)
            if owner is None:
                return None
            lowered = owner.lower()
            if any(h in lowered for h in _POOLISH_HINTS):
                return call.args[0] if call.args else None
        return None

    def _unpicklable_reason(
        self, node: ast.expr, nested: set[str], lambdas: set[str]
    ) -> str | None:
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.Name):
            if node.id in nested:
                return f"closure {node.id!r}"
            if node.id in lambdas:
                return f"lambda-bound name {node.id!r}"
            return None
        if isinstance(node, ast.Call):
            dotted = self.dotted_name(node.func)
            if dotted in {"functools.partial", "partial"} and node.args:
                return self._unpicklable_reason(node.args[0], nested, lambdas)
        return None
