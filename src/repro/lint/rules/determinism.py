"""``determinism`` — digest/serialisation modules must be reproducible.

The cache keys (:func:`repro.batch.canonical.instance_digest`) and the
wire serialisers promise: same logical instance, same bytes, on every
run, every process, every host.  Three thing break that promise:

* wall-clock / randomness sources (``time.time``, ``random.*``,
  ``os.urandom``, ``uuid.uuid4``, …) leaking into serialised output;
* iterating an unordered ``set`` while building serialised output —
  CPython set order varies with insertion history and hash seeds;
* ``json.dumps`` without ``sort_keys=True`` — dict insertion order is
  deterministic per run but not across code paths that build the same
  mapping differently.

The rule therefore bans the call families above inside the configured
digest/serialise modules, flags iteration directly over a set
expression (wrap it in ``sorted(...)``), and requires every
``json.dumps`` call to pass ``sort_keys=True``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import Finding, LintConfig, ModuleInfo, Rule, register_rule

_FORBIDDEN_EXACT = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.today",
    "datetime.datetime.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}
_FORBIDDEN_PREFIXES = ("random.", "secrets.", "np.random.", "numpy.random.")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@register_rule
class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "digest/serialise modules must not consume clocks, randomness, "
        "unsorted set iteration, or unsorted json.dumps"
    )
    default_patterns = (
        "*/batch/canonical.py",
        "*/dynamics/incremental.py",
        "*/faults/*.py",
        "*/power/serialize.py",
        "*/tree/serialize.py",
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                yield from self._check_iteration(module, node)

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        dotted = self.dotted_name(node.func)
        if dotted is not None:
            banned = dotted in _FORBIDDEN_EXACT or dotted.startswith(
                _FORBIDDEN_PREFIXES
            )
            if banned:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"call to {dotted}() in a digest/serialise module: "
                        "output must be reproducible across runs"
                    ),
                )
                return
        is_dumps = dotted is not None and (
            dotted == "dumps" or dotted.endswith("json.dumps")
        )
        if is_dumps and not any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ):
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    "json.dumps without sort_keys=True in a "
                    "digest/serialise module: key order must not depend "
                    "on construction history"
                ),
            )

    def _check_iteration(
        self, module: ModuleInfo, node: ast.For | ast.comprehension
    ) -> Iterator[Finding]:
        source = node.iter
        if _is_set_expr(source):
            anchor = node if isinstance(node, ast.For) else source
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=anchor.lineno,
                col=anchor.col_offset + 1,
                message=(
                    "iterating an unordered set while serialising: wrap the "
                    "set in sorted(...) to pin the order"
                ),
            )
