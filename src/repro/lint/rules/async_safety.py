"""``async-blocking`` — no blocking work on the serve event loop.

:mod:`repro.serve` multiplexes every connection on one asyncio loop; a
single blocking call stalls *all* in-flight requests (the bug class PR 4
hardened against: CPU-bound ``instance_key``/``fan_out`` are pushed off
the loop via ``run_in_executor``, batch solves run on a worker thread).

Inside ``async def`` bodies this rule bans:

* ``time.sleep`` (use ``await asyncio.sleep``);
* synchronous file/socket I/O: ``open``, ``socket.socket``,
  ``socket.create_connection``, ``subprocess.*``, ``os.system``;
* blocking waits: ``Future.result()`` / ``concurrent.futures.wait``;
* direct solver invocation — ``solve_batch``, ``replica_update``,
  ``greedy_placement``, ``power_frontier``, ``power_frontier_counts``,
  and ``policy.solve(...)`` calls.  Hand those to an executor instead
  (pass the function *uncalled* to ``run_in_executor`` or wrap it in
  ``functools.partial``).

Nested ``def`` bodies are skipped: a function defined inside a handler
is a callback whose execution context is decided at its call site (the
usual pattern here is precisely "define it, then run it off-loop").
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import Finding, LintConfig, ModuleInfo, Rule, register_rule

_BLOCKING_EXACT = {
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "concurrent.futures.wait",
}
_SOLVER_NAMES = {
    "solve_batch",
    "replica_update",
    "greedy_placement",
    "power_frontier",
    "power_frontier_counts",
    "exhaustive_min_power",
}


def _iter_async_body_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically inside ``fn``, skipping nested function bodies."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # separate execution context; async defs get their own visit
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class AsyncBlockingRule(Rule):
    id = "async-blocking"
    description = (
        "async def bodies in repro.serve must not sleep, do sync I/O, "
        "or invoke solvers inline"
    )
    default_patterns = ("*/serve/*.py",)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        # Calls to the module's own coroutine functions produce awaitables
        # without running anything — never blocking, whatever their name.
        local_async = {
            n.name
            for n in ast.walk(module.tree)
            if isinstance(n, ast.AsyncFunctionDef)
        }
        awaited = {
            id(n.value)
            for n in ast.walk(module.tree)
            if isinstance(n, ast.Await)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_fn(module, node, local_async, awaited)

    def _check_async_fn(
        self,
        module: ModuleInfo,
        fn: ast.AsyncFunctionDef,
        local_async: set[str],
        awaited: set[int],
    ) -> Iterator[Finding]:
        for call in _iter_async_body_calls(fn):
            terminal = self.terminal_name(call.func)
            if terminal in local_async or id(call) in awaited:
                continue
            label = self._blocking_label(call)
            if label is not None:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    message=(
                        f"{label} inside async def {fn.name}: blocks the "
                        "event loop — run it via run_in_executor / "
                        "asyncio.sleep instead"
                    ),
                )

    def _blocking_label(self, call: ast.Call) -> str | None:
        dotted = self.dotted_name(call.func)
        if dotted in _BLOCKING_EXACT:
            return f"{dotted}()"
        if dotted == "open" or (dotted is not None and dotted.endswith(".open")):
            # pathlib.Path.open and builtins.open are both synchronous.
            return "synchronous open()"
        terminal = self.terminal_name(call.func)
        if terminal in _SOLVER_NAMES:
            return f"direct solver call {terminal}()"
        if terminal == "solve" and isinstance(call.func, ast.Attribute):
            return "direct policy .solve() call"
        if terminal == "result" and isinstance(call.func, ast.Attribute):
            # fut.result() blocks; await the future instead.  Zero-arg
            # only: result(timeout) on concurrent futures is equally
            # blocking but plain .result() is the shape seen in practice.
            return "blocking Future.result()"
        return None
