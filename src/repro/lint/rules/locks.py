"""``lock-discipline`` — guarded cache state mutates only under its lock.

:class:`repro.batch.cache.ResultCache` shares two ``OrderedDict`` tiers
between the serving event loop and solver worker threads; every
mutation must hold ``self._mutex`` (the class's stated contract).  A
naive "mutation must be lexically inside ``with self._mutex``" check
false-positives on the real code, which factors mutations into private
helpers (``_insert``, the shard rewrites) that are *only ever called*
with the mutex held.  So the rule runs a small fixpoint over the
class's internal call graph:

1. Find classes that create a ``threading.Lock``/``RLock`` attribute in
   ``__init__`` and collect their *guarded* attributes: mutable
   containers (``dict``/``OrderedDict``/``list``/``set`` and literals)
   assigned in ``__init__``.
2. For every method, record each guarded-state mutation (subscript
   assignment/deletion, attribute rebinding, or a mutating method call
   such as ``.pop``/``.move_to_end``/``.clear``) together with whether
   it sits inside ``with self.<lock>:``, and every ``self.<method>()``
   call with the same held/unheld flag.
3. Fixpoint: a private method is *always-held* when every internal call
   site is under the lock (directly or from an always-held method).
   ``__init__`` counts as held — the object is not shared during
   construction.
4. Report mutations that are neither under the lock nor inside an
   always-held method.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.lint.framework import Finding, LintConfig, ModuleInfo, Rule, register_rule

_MUTATORS = {
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "append",
    "extend",
    "insert",
    "add",
    "remove",
    "discard",
}
_CONTAINER_CTORS = {"dict", "OrderedDict", "list", "set", "defaultdict", "deque"}
_LOCK_CTORS = {"Lock", "RLock"}


def _self_attr(node: ast.AST) -> str | None:
    """``x`` of ``self.x`` (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_container_ctor(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        terminal = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        return terminal in _CONTAINER_CTORS
    return False


def _is_lock_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    terminal = node.func.attr if isinstance(node.func, ast.Attribute) else (
        node.func.id if isinstance(node.func, ast.Name) else None
    )
    return terminal in _LOCK_CTORS


@dataclass
class _Mutation:
    attr: str
    line: int
    col: int
    held: bool
    method: str


@dataclass
class _CallSite:
    callee: str
    held: bool
    method: str


class _MethodScanner:
    """Walk one method body tracking the lexical ``with self.<lock>`` state."""

    def __init__(self, lock_attr: str, guarded: set[str], method: str) -> None:
        self.lock_attr = lock_attr
        self.guarded = guarded
        self.method = method
        self.mutations: list[_Mutation] = []
        self.calls: list[_CallSite] = []

    def scan(self, body: list[ast.stmt], held: bool) -> None:
        for stmt in body:
            self._scan_stmt(stmt, held)

    def _holds_lock(self, node: ast.With) -> bool:
        return any(
            _self_attr(item.context_expr) == self.lock_attr
            for item in node.items
        )

    def _scan_stmt(self, node: ast.stmt, held: bool) -> None:
        if isinstance(node, ast.With):
            inner = held or self._holds_lock(node)
            for item in node.items:
                self._scan_expr(item.context_expr, held)
            self.scan(node.body, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later, in an unknown context: scan unheld.
            self.scan(node.body, False)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._record_target(target, held)
            if getattr(node, "value", None) is not None:
                self._scan_expr(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_target(target, held)
            return
        if isinstance(node, ast.Expr):
            self._scan_expr(node.value, held)
            return
        # Generic recursion: statements with bodies keep the held flag.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, held)
            elif isinstance(child, ast.expr):
                self._scan_expr(child, held)

    def _record_target(self, target: ast.expr, held: bool) -> None:
        attr: str | None = None
        anchor: ast.expr = target
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
        elif isinstance(target, ast.Attribute):
            attr = _self_attr(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, held)
            return
        if attr is not None and attr in self.guarded:
            self.mutations.append(
                _Mutation(attr, anchor.lineno, anchor.col_offset + 1, held, self.method)
            )

    def _scan_expr(self, node: ast.expr, held: bool) -> None:
        for call in (
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        ):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            owner_attr = _self_attr(func.value)
            if owner_attr in self.guarded and func.attr in _MUTATORS:
                self.mutations.append(
                    _Mutation(
                        owner_attr,
                        call.lineno,
                        call.col_offset + 1,
                        held,
                        self.method,
                    )
                )
            if _self_attr(func) is not None:
                self.calls.append(_CallSite(func.attr, held, self.method))


@register_rule
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "mutations of lock-guarded cache state must hold the instance lock "
        "(directly or via an always-held helper)"
    )
    default_patterns = ("*/batch/cache.py",)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        init = next(
            (
                n
                for n in cls.body
                if isinstance(n, ast.FunctionDef) and n.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        lock_attr: str | None = None
        guarded: set[str] = set()
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if _is_lock_ctor(stmt.value):
                    lock_attr = attr
                elif _is_container_ctor(stmt.value):
                    guarded.add(attr)
        if lock_attr is None or not guarded:
            return

        scanners: dict[str, _MethodScanner] = {}
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scanner = _MethodScanner(lock_attr, guarded, node.name)
            # __init__ builds the object before it is shared: treat as held.
            scanner.scan(list(node.body), held=(node.name == "__init__"))
            scanners[node.name] = scanner

        # Fixpoint: a method is always-held when every internal call site
        # is under the lock or inside an always-held method.
        sites: dict[str, list[_CallSite]] = {}
        for scanner in scanners.values():
            for site in scanner.calls:
                sites.setdefault(site.callee, []).append(site)
        always_held: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in scanners:
                if name in always_held or name == "__init__":
                    continue
                callers = sites.get(name)
                if not callers:
                    continue
                if all(
                    s.held or s.method in always_held or s.method == "__init__"
                    for s in callers
                ):
                    always_held.add(name)
                    changed = True

        for name, scanner in scanners.items():
            if name == "__init__":
                continue
            safe_context = name in always_held
            for mut in scanner.mutations:
                if mut.held or safe_context:
                    continue
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=mut.line,
                    col=mut.col,
                    message=(
                        f"{cls.name}.{name} mutates guarded state "
                        f"self.{mut.attr} without holding self.{lock_attr} "
                        "(and is not provably called under it)"
                    ),
                )
