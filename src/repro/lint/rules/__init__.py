"""Rule modules; importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401
    async_safety,
    determinism,
    float_eq,
    locks,
    picklable,
    schema_drift,
)

__all__ = [
    "async_safety",
    "determinism",
    "float_eq",
    "locks",
    "picklable",
    "schema_drift",
]
