"""``float-eq`` — no bare ``==``/``!=`` on float quantities in kernels.

PR 5 shipped (and caught) the canonical bug shape: the Pareto kernel's
alias fast path tested ``p == 0.0`` to mean "this label adds no
placement", which silently conflates a *genuine* zero-power mode with
the "no placement" sentinel once mode powers underflow.  The fix keyed
the path on an explicit ``alias_p`` sentinel — and those three sentinel
equalities are the *only* audited bare float comparisons allowed in the
dominance/merge code.

This rule flags ``==`` / ``!=`` where either operand is

* a float literal (``x == 0.0``), or
* a name that follows the kernels' float-quantity naming convention:
  ``p``/``g``/``cost``/``power``/``price``/``gain``/``eps`` with an
  optional digit suffix, or any ``*_p`` / ``*_power`` / ``*_cost`` /
  ``*_price`` / ``*_eps`` name (which covers ``alias_p``).

Integer comparisons (``flow == 0``, ``len(x) == 1``) are untouched.
So are *elementwise ndarray* comparisons: in the structure-of-arrays
kernel (``dp_power_array``), ``x_mask == value`` builds a boolean mask —
a vectorised select, not a scalar float equality — so operands following
the kernel's ndarray naming convention (``*_col`` / ``*_cols`` /
``*_arr`` / ``*_mask`` / ``*_ids``) are exempt.

Fix by comparing against an epsilon (``abs(a - b) <= _EPS``) or, for a
deliberate sentinel equality, suppress with
``# repro-lint: ignore[float-eq]`` and a comment naming the audit.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.framework import Finding, LintConfig, ModuleInfo, Rule, register_rule

_FLOAT_NAME_RE = re.compile(r"^(?:p|g|cost|power|price|gain|eps)\d*$")
_FLOAT_SUFFIXES = ("_p", "_power", "_cost", "_price", "_eps", "_gain")

#: Names following the array kernel's ndarray convention: a comparison
#: touching one of these is an elementwise mask build, not a scalar
#: float equality.
_NDARRAY_SUFFIXES = ("_col", "_cols", "_arr", "_mask", "_ids")


def _operand_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_like(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    name = _operand_name(node)
    if name is None:
        return False
    return bool(_FLOAT_NAME_RE.match(name)) or name.endswith(_FLOAT_SUFFIXES)


def _is_ndarray_like(node: ast.expr) -> bool:
    name = _operand_name(node)
    return name is not None and name.endswith(_NDARRAY_SUFFIXES)


@register_rule
class FloatEqualityRule(Rule):
    id = "float-eq"
    description = (
        "dominance/merge code must not compare float quantities with "
        "bare == / != (the PR 5 p == 0.0 alias bug shape)"
    )
    default_patterns = (
        "*/power/dp_power_pareto.py",
        "*/power/dp_power_array.py",
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands, operands[1:], strict=False
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_ndarray_like(left) or _is_ndarray_like(right):
                    continue
                if _is_float_like(left) or _is_float_like(right):
                    yield Finding(
                        rule=self.id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            "bare float equality: compare within an epsilon "
                            "(abs(a - b) <= _EPS) or suppress an audited "
                            "sentinel equality explicitly"
                        ),
                    )
                    break
