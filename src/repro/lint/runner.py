"""File collection, rule orchestration and the ``repro lint`` CLI.

Exit codes: 0 — clean; 1 — findings; 2 — usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

import repro.lint.rules  # noqa: F401  (imports register the rules)
from repro.lint.framework import (
    Finding,
    LintConfig,
    ModuleInfo,
    all_rules,
    get_rule,
    run_rules,
)
from repro.lint.rules.schema_drift import DEFAULT_BASELINE

_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache"}

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Python files under the given paths, stable order, dedup'd."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        candidates = (
            ([path] if path.suffix == ".py" else [])
            if path.is_file()
            else sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        )
        for p in candidates:
            rp = p.resolve()
            if rp not in seen:
                seen.add(rp)
                out.append(p)
    return out


def load_modules(
    files: Sequence[Path], root: Path
) -> tuple[list[ModuleInfo], list[Finding]]:
    """Parse files; unparsable ones become findings instead of crashes."""
    modules: list[ModuleInfo] = []
    errors: list[Finding] = []
    for path in files:
        try:
            modules.append(ModuleInfo.load(path, root))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=path.as_posix(),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
    return modules, errors


def render_text(findings: Sequence[Finding], stream=None) -> None:
    stream = sys.stdout if stream is None else stream
    for f in findings:
        print(f.format_text(), file=stream)
    n = len(findings)
    print(
        f"repro lint: {n} finding{'s' if n != 1 else ''}"
        if n
        else "repro lint: clean",
        file=stream,
    )


def render_json(findings: Sequence[Finding], stream=None) -> None:
    stream = sys.stdout if stream is None else stream
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=stream)


def run(
    paths: Sequence[str | Path],
    *,
    root: Path | None = None,
    select: Sequence[str] | None = None,
    config: LintConfig | None = None,
    output: str = "text",
    stream=None,
) -> int:
    """Lint ``paths`` and render a report; returns the exit code."""
    root = Path.cwd() if root is None else root
    if config is None:
        config = LintConfig(baseline_path=root / DEFAULT_BASELINE)
    try:
        rules = (
            [get_rule(rid) for rid in select] if select else all_rules()
        )
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR
    files = collect_files([Path(p) for p in paths])
    if not files:
        print("repro lint: no python files found", file=sys.stderr)
        return EXIT_ERROR
    modules, errors = load_modules(files, root)
    findings = errors + run_rules(modules, rules, config)
    findings.sort(key=Finding.sort_key)
    if output == "json":
        render_json(findings, stream)
    else:
        render_text(findings, stream)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between ``repro lint`` and ``python -m repro.lint``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rules and exit",
    )
    parser.add_argument(
        "--write-schema-baseline",
        action="store_true",
        help="regenerate baselines/schema_fingerprint.json from the "
        "current sources and exit clean",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="override the schema baseline path",
    )


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            scope = "project" if rule.project_wide else "module"
            print(f"{rule.id:16} [{scope}] {rule.description}")
        return EXIT_CLEAN
    root = Path.cwd()
    baseline = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    config = LintConfig(
        baseline_path=baseline,
        write_schema_baseline=args.write_schema_baseline,
    )
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    return run(
        args.paths, root=root, select=select, config=config, output=args.output
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis for the repro codebase.",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))
