"""Async batch-serving frontend: coalescing + micro-batching over TCP.

:class:`BatchServer` turns the batch pipeline (:func:`repro.batch
.solve_batch`) into a long-lived service.  Many concurrent clients —
remote ones over the JSON-lines protocol (:mod:`repro.serve.protocol`)
or in-process callers via :meth:`BatchServer.submit` — share one result
cache and one solve backend:

* every request is keyed by its policy's canonical digest (the same key
  :func:`repro.batch.instance_key` exposes publicly); a request whose
  digest is already **in flight** joins the existing solve's future
  instead of scheduling
  a second one (*coalescing* — the waiters all receive the one canonical
  record and fan it out through their own relabelling, so isomorphic
  duplicates get correctly-labelled answers);
* requests whose digest is **cached** are answered immediately from the
  shared :class:`~repro.batch.cache.ResultCache`;
* the rest land on a priority queue that a drain task empties in
  micro-batches through :func:`~repro.batch.solve_batch` on a dedicated
  worker thread — the dedupe / cache / verified fan-out machinery is
  reused, not reimplemented — optionally backed by one shared
  process pool (``workers > 1``) that stays warm across micro-batches.

Client cancellation never propagates into a shared solve: waiters hold
the in-flight future behind :func:`asyncio.shield`, and the job itself
is owned by the drain task, not by any connection.  Shutdown
(:meth:`BatchServer.stop`) is graceful — new submissions are refused
with :class:`~repro.exceptions.ServerClosedError`, queued and in-flight
work is drained to completion, responses are flushed, then sockets and
pools are closed.

Per-policy serving counters (requests, cache hits, coalesced joins,
scheduled solves, p50/p99 latency) are collected in a
:class:`~repro.perf.stats.ServeStats`.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.batch.cache import ResultCache
from repro.batch.executor import SupervisedPool, solve_batch
from repro.batch.instance import BatchInstance
from repro.batch.quarantine import QuarantineRegistry, bisect_culprits
from repro.batch.registry import get_policy
from repro.dynamics.incremental import (
    ApplyResult,
    SessionState,
    delta_from_dict,
)
from repro.exceptions import (
    ConfigurationError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    SolverError,
)
from repro.faults import registry as _faults
from repro.perf.stats import ParetoDPStats, ServeStats, SessionServeStats
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    parse_session_close,
    parse_session_delta,
    parse_session_open,
    parse_solve_request,
)

__all__ = ["BatchServer", "ConnectionContext"]

#: Queue priority of the shutdown sentinel — drains strictly after every
#: pending job, which is what makes :meth:`BatchServer.stop` graceful.
_SENTINEL_PRIORITY = float("inf")

#: Generation size of the kernel-stats dedupe set: when the current
#: generation fills up it becomes the previous one and a fresh set
#: starts, bounding memory on long-lived servers at ~2x this many
#: ``(solver, digest)`` entries.  A digest evicted from both generations
#: may be double-absorbed if it reappears — an acceptable drift for
#: monitoring counters, unlike unbounded growth.
_KERNEL_SEEN_GENERATION = 65536


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a job future's exception as retrieved (waiters may be gone)."""
    if not future.cancelled():
        future.exception()


def _open_session_state(instance: BatchInstance, kernel: str | None) -> SessionState:
    """Build and cold-solve the engine state behind one serve session.

    Module-level (not a closure) so it hands off to ``run_in_executor``
    cleanly; runs on the default executor because session solves are
    per-session state, never shared with the micro-batch backend.
    """
    if instance.power_model is None:
        raise ConfigurationError(
            "session.open requires a power-model instance (sessions run "
            "the cost/power frontier engine)"
        )
    state = SessionState(
        instance.tree,
        instance.power_model,
        instance.effective_modal_cost(),
        instance.pre_modes(),
        kernel=kernel,
    )
    state.solve()
    return state


def _frontier_payload(state: SessionState, records: bool) -> dict[str, Any]:
    """Wire form of a session's current frontier.

    ``records=False`` (default) sends the ``(cost, power)`` pairs only;
    placements stay lazy server-side.  ``records=True`` materialises the
    full placement records (the expensive provenance walks).
    """
    frontier = state.frontier()
    if records:
        return {"records": frontier.to_records()}
    return {"points": [[c, p] for c, p in frontier.pairs()]}


class _ServeSession:
    """One live session: engine state + per-session lock and counters.

    The lock serialises deltas on *this* session (the engine mutates its
    tree and store in place); different sessions run concurrently on the
    default executor, each against its own store, so they cannot
    cross-contaminate fronts.
    """

    __slots__ = ("sid", "state", "records", "lock", "stats")

    def __init__(self, sid: str, state: SessionState, records: bool) -> None:
        self.sid = sid
        self.state = state
        self.records = records
        self.lock = asyncio.Lock()
        self.stats = SessionServeStats()


class ConnectionContext:
    """Per-caller state threaded through :meth:`BatchServer.dispatch`.

    One context per protocol connection (or per in-process cluster
    worker handle): it records the sessions the caller opened so
    :meth:`BatchServer.release_context` can reap them when the caller
    goes away.  Keeping this out of the server lets the same dispatch
    path serve TCP connections and socketless in-process callers alike.
    """

    __slots__ = ("sessions",)

    def __init__(self) -> None:
        #: Session ids owned by this caller (``session.open`` adds,
        #: ``session.close`` removes).
        self.sessions: set[str] = set()


class _Job:
    """One scheduled canonical solve; waiters share :attr:`future`.

    The future resolves to the canonical *cache record* (not a fanned-out
    result): every waiter — scheduler and coalesced joiners alike — maps
    the record through its own instance's inverse relabelling.
    """

    __slots__ = ("digest", "solver", "instance", "future")

    def __init__(
        self,
        digest: str,
        solver: str,
        instance: BatchInstance,
        future: asyncio.Future,
    ) -> None:
        self.digest = digest
        self.solver = solver
        self.instance = instance
        self.future = future


class BatchServer:
    """Long-lived coalescing frontend over :func:`repro.batch.solve_batch`.

    Parameters
    ----------
    cache:
        Shared result cache; a private in-memory one is created when
        omitted.  Pass one with a ``cache_dir`` for persistence.
    workers:
        Process-pool size for canonical solves.  ``1`` (default) solves
        on the drain thread (unless ``solve_timeout`` forces pool
        supervision); ``> 1`` keeps one shared
        :class:`~repro.batch.executor.SupervisedPool` warm across
        micro-batches.
    max_batch:
        Upper bound on instances per micro-batch.
    max_delay:
        Seconds the drain task lingers after picking up a job to let a
        burst accumulate into one micro-batch.  ``0`` disables the
        linger; immediately-available jobs are still batched together.
    max_pending:
        Admission bound on *pending canonical solves* (scheduled but not
        yet completed — the drain queue plus the micro-batch in flight).
        A request that would schedule solve number ``max_pending + 1``
        is shed with :class:`~repro.exceptions.ServerOverloadedError`
        instead of queueing unboundedly; nothing is enqueued, so the
        caller (or the cluster router) may retry it elsewhere.  Cache
        hits and coalesced joins never consume admission slots.
        ``None`` (default) keeps the historical unbounded behaviour.
    solve_timeout:
        Wall-clock deadline in seconds for each supervised solve wave
        (see :func:`repro.batch.solve_batch`).  A hung solve gets its
        pool killed + rebuilt, the culprit digest quarantined, and its
        waiters a typed :class:`~repro.exceptions.SolveTimeoutError`
        (wire ``code: "timeout"``).  Setting it with ``workers=1``
        still spins up a single-worker supervised pool — a deadline is
        meaningless without one.  ``None`` (default) keeps solves
        unbounded.
    quarantine_ttl:
        Seconds a digest convicted of crashing or hanging the pool
        fails fast with :class:`~repro.exceptions.QuarantinedError`
        (wire ``code: "quarantined"``) before it may solve again.
    stats:
        Optional shared :class:`~repro.perf.stats.ServeStats` collector.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with BatchServer(workers=2) as server:
            host, port = await server.listen("127.0.0.1", 0)
            ...
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        workers: int = 1,
        max_batch: int = 32,
        max_delay: float = 0.002,
        max_pending: int | None = None,
        solve_timeout: float | None = None,
        quarantine_ttl: float = 300.0,
        stats: ServeStats | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if solve_timeout is not None and solve_timeout <= 0:
            raise ConfigurationError(
                f"solve_timeout must be positive, got {solve_timeout}"
            )
        if quarantine_ttl <= 0:
            raise ConfigurationError(
                f"quarantine_ttl must be positive, got {quarantine_ttl}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.stats = stats if stats is not None else ServeStats()
        self._workers = workers
        self._max_batch = max_batch
        self._max_delay = max_delay
        self._max_pending = max_pending
        self._solve_timeout = solve_timeout
        self._quarantine = QuarantineRegistry(ttl=quarantine_ttl)
        self._jobs: dict[str, _Job] = {}
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = 0
        self._drain_task: asyncio.Task | None = None
        self._thread: ThreadPoolExecutor | None = None
        self._pool: SupervisedPool | None = None
        self._tcp_server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._stop_task: asyncio.Task | None = None
        self._closing = False
        self._stopped = asyncio.Event()
        # Kernel counters aggregated from solve records (the power
        # policies attach ``dp_stats``); keyed by solver, each canonical
        # digest absorbed once *per solver* — policies sharing a digest
        # name (min_power / power_frontier) each get their own
        # attribution no matter which one warmed the cache.  The dedupe
        # set is two-generation bounded (see _KERNEL_SEEN_GENERATION).
        self._kernel_stats: dict[str, ParetoDPStats] = {}
        self._kernel_seen: set[tuple[str, str]] = set()
        self._kernel_seen_prev: set[tuple[str, str]] = set()
        # Live incremental sessions (the session.* op family).  Stateful
        # by design: each holds its own FrontStore, so sessions never
        # share retained tables and never enter the coalescing path.
        self._sessions: dict[str, _ServeSession] = {}
        self._session_seq = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._closed_session_stats = SessionServeStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> BatchServer:
        """Start the solve backend (idempotent); no sockets yet."""
        if self._closing:
            raise ServerClosedError("server has been stopped")
        if self._drain_task is None:
            self._thread = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            if self._workers > 1 or self._solve_timeout is not None:
                # A deadline needs a killable pool: with workers=1 a
                # single-worker supervised pool replaces in-thread solves.
                self._pool = SupervisedPool(self._workers)
            self._drain_task = asyncio.create_task(self._drain_loop())
        return self

    async def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Open the TCP endpoint; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the CLI prints the choice).
        """
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_conn, host, port, limit=MAX_LINE_BYTES
        )
        sock_host, sock_port = self._tcp_server.sockets[0].getsockname()[:2]
        return sock_host, sock_port

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (e.g. via a shutdown op)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain, flush, close."""
        if not self._closing:
            self._closing = True
            if self._tcp_server is not None:
                self._tcp_server.close()
            if self._drain_task is not None:
                self._seq += 1
                self._queue.put_nowait((_SENTINEL_PRIORITY, self._seq, None))
        if self._drain_task is not None:
            await self._drain_task
        # Let outstanding request handlers fan out and write responses.
        current = asyncio.current_task()
        pending = [t for t in self._request_tasks if t is not current]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._thread is not None:
            self._thread.shutdown(wait=True)
            self._thread = None
        # Release every remaining live session's retained tables.
        for sid in sorted(self._sessions):
            sess = self._sessions.pop(sid, None)
            if sess is not None:
                self._retire_session(sess)
        self._stopped.set()

    async def __aenter__(self) -> BatchServer:
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # in-process entry point
    # ------------------------------------------------------------------
    async def submit(
        self,
        instance: BatchInstance,
        *,
        solver: str = "dp",
        priority: int = 0,
    ) -> Any:
        """Awaitable single-instance solve through the serving pipeline.

        Returns the same policy-defined result object a direct
        :func:`repro.batch.solve_batch` call would (verified fan-out in
        the instance's original labelling).  Identical concurrent
        submissions share one canonical solve.
        """
        result, _, _ = await self._submit_full(
            instance, solver=solver, priority=priority
        )
        return result

    async def _submit_full(
        self, instance: BatchInstance, *, solver: str, priority: int
    ) -> tuple[Any, str, str]:
        """Serve one request; returns ``(result, digest, served-by)``."""
        if self._closing:
            raise ServerClosedError(
                "server is shutting down; request refused"
            )
        if self._drain_task is None:
            raise ServerClosedError("server is not started")
        policy = get_policy(solver)
        pstats = self.stats.policy(solver)
        pstats.requests += 1
        started = time.perf_counter()
        try:
            policy.check_instance(instance, 0)
            # Canonicalisation is CPU-bound (AHU codes over the whole
            # tree) — run it off the loop like fan-out below, so large
            # non-duplicate storms don't serialise all connections.
            canonical, digest = await asyncio.get_running_loop().run_in_executor(
                None, policy.instance_key, instance
            )
            if self._closing:
                # stop() may have begun while we canonicalised; enqueueing
                # after the drain sentinel would strand the job forever.
                raise ServerClosedError(
                    "server is shutting down; request refused"
                )
            record = self.cache.get(digest, schema=policy.record_schema)
            if record is not None:
                served = "cache"
                pstats.cache_hits += 1
                self._absorb_kernel_stats(solver, {digest: record})
            else:
                # Poison digests fail fast *before* they can coalesce or
                # schedule — one quarantined solve must never reach the
                # pool again for the TTL.  Cache hits above still serve.
                self._quarantine.check(digest, stats=self.cache.stats)
                job = self._jobs.get(digest)
                if job is not None:
                    served = "coalesced"
                    pstats.coalesced_joins += 1
                else:
                    if (
                        self._max_pending is not None
                        and len(self._jobs) >= self._max_pending
                    ):
                        # Shed *before* creating the job or its future:
                        # nothing is enqueued and no coalesced waiter can
                        # ever attach to a solve that will not run, so a
                        # rejection racing stop() strands nobody.
                        pstats.overloads += 1
                        raise ServerOverloadedError(
                            f"server at capacity: {len(self._jobs)} "
                            f"pending canonical solves "
                            f"(max_pending={self._max_pending}); "
                            "request shed"
                        )
                    future: asyncio.Future = (
                        asyncio.get_running_loop().create_future()
                    )
                    future.add_done_callback(_consume_exception)
                    job = _Job(digest, solver, instance, future)
                    self._jobs[digest] = job
                    served = "solve"
                    pstats.solves_scheduled += 1
                    self._seq += 1
                    self._queue.put_nowait((priority, self._seq, job))
                record = await asyncio.shield(job.future)
            # Fan-out re-verifies on the original tree (CPU-bound, one
            # call per waiter) — run it off the loop so a storm of
            # coalesced waiters doesn't serially block all connections.
            result = await asyncio.get_running_loop().run_in_executor(
                None, policy.fan_out, instance, canonical, record, digest
            )
        except asyncio.CancelledError:
            raise
        except ServerOverloadedError:
            # A shed is expected load behaviour, counted in
            # ``pstats.overloads`` at the shed site — not an error.
            raise
        except Exception:
            pstats.errors += 1
            raise
        pstats.record_latency(time.perf_counter() - started)
        return result, digest, served

    # ------------------------------------------------------------------
    # drain loop (micro-batching through solve_batch)
    # ------------------------------------------------------------------
    def _scoop(self, jobs: list[_Job]) -> bool:
        """Move immediately-available jobs into ``jobs``; True on sentinel."""
        while len(jobs) < self._max_batch:
            try:
                priority, seq, job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if job is None:
                # Keep the shutdown sentinel last: re-queue it and finish
                # the batch in hand first.
                self._queue.put_nowait((priority, seq, None))
                return True
            jobs.append(job)
        return False

    async def _drain_loop(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            if job is None:
                break
            jobs = [job]
            saw_sentinel = self._scoop(jobs)
            if (
                not saw_sentinel
                and self._max_delay > 0
                and len(jobs) < self._max_batch
            ):
                await asyncio.sleep(self._max_delay)
                self._scoop(jobs)
            await self._run_jobs(jobs)

    def _absorb_kernel_stats(
        self, solver: str, records: dict[str, dict[str, Any]]
    ) -> None:
        """Fold per-record kernel counters into the per-solver aggregate.

        Records are keyed by canonical digest and each (solver, digest)
        pair is counted once (within the bounded dedupe window), so
        repeated cache hits and coalesced fan-outs never inflate the
        counters.
        """
        for digest, record in records.items():
            counters = record.get("dp_stats")
            if not counters:
                continue
            key = (solver, digest)
            if key in self._kernel_seen or key in self._kernel_seen_prev:
                continue
            if len(self._kernel_seen) >= _KERNEL_SEEN_GENERATION:
                self._kernel_seen_prev = self._kernel_seen
                self._kernel_seen = set()
            self._kernel_seen.add(key)
            try:
                collector = self._kernel_stats[solver]
            except KeyError:
                collector = self._kernel_stats[solver] = ParetoDPStats()
            collector.absorb(counters)

    def perf_snapshot(self) -> dict[str, Any]:
        """Serving counters plus aggregated solver-kernel counters.

        The payload behind the protocol's ``perf`` op: everything
        ``stats`` returns, plus per-solver Pareto-DP kernel statistics
        (labels created / generated / rejected at merge, memo hits)
        accumulated from the canonical solves this server performed.
        """
        return {
            "serve": self.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "quarantine": self._quarantine.snapshot(),
            "kernel": {
                solver: collector.as_dict()
                for solver, collector in sorted(self._kernel_stats.items())
            },
            "sessions": {
                "open": len(self._sessions),
                "opened": self._sessions_opened,
                "closed": self._sessions_closed,
                "per_session": {
                    sid: self._session_stats_payload(sess)
                    for sid, sess in sorted(self._sessions.items())
                },
                "closed_aggregate": self._closed_session_stats.as_dict(),
            },
        }

    async def _run_jobs(self, jobs: list[_Job]) -> None:
        by_solver: dict[str, list[_Job]] = {}
        for job in jobs:
            by_solver.setdefault(job.solver, []).append(job)
        for solver, group in by_solver.items():
            self.stats.batches += 1
            self.stats.batch_instances += len(group)
            records, errors = await self._solve_group(solver, group)
            self._absorb_kernel_stats(solver, records)
            for job in group:
                exc = errors.get(job.digest)
                if exc is not None:
                    self._complete_job(job, exc=exc)
                else:
                    self._complete_job(job, records=records)

    async def _solve_group(
        self, solver: str, group: list[_Job]
    ) -> tuple[dict[str, dict[str, Any]], dict[str, Exception]]:
        """Run one solver group through ``solve_batch`` on the backend.

        Returns ``(records, errors)`` keyed by digest.  Per-digest
        failures (infeasible instance, quarantined poison, deadline
        overrun) arrive through ``errors_out`` without failing the
        batch; crash/hang supervision — kill + rebuild the pool,
        attribute and quarantine culprits — happens inside
        :func:`~repro.batch.solve_batch` itself.  A *group-level*
        failure (an exception before per-digest isolation kicks in,
        e.g. instance validation) falls back to bisection over the
        unresolved jobs: partial results published through
        ``records_out`` are reused — a probe re-running an
        already-solved digest is answered by the cache — so isolating
        ``k`` culprits costs ``O(k log n)`` probes, not ``n`` re-solves.
        """
        loop = asyncio.get_running_loop()
        records: dict[str, dict[str, Any]] = {}
        errors: dict[str, Exception] = {}
        run = functools.partial(
            self._run_solver_group, solver, records=records, errors=errors
        )
        assert self._thread is not None
        try:
            await loop.run_in_executor(
                self._thread, functools.partial(run, group)
            )
        except Exception:
            remaining = [
                job
                for job in group
                if job.digest not in records and job.digest not in errors
            ]
            culprits = await loop.run_in_executor(
                self._thread, functools.partial(bisect_culprits, remaining, run)
            )
            for job, exc in culprits:
                errors.setdefault(job.digest, exc)
        return records, errors

    def _run_solver_group(
        self,
        solver: str,
        jobs: list[_Job],
        *,
        records: dict[str, dict[str, Any]],
        errors: dict[str, Exception],
    ) -> None:
        """One blocking ``solve_batch`` call (runs on the drain thread)."""
        solve_batch(
            [job.instance for job in jobs],
            solver=solver,
            workers=self._workers,
            cache=self.cache,
            pool=self._pool,
            records_out=records,
            errors_out=errors,
            solve_timeout=self._solve_timeout,
            quarantine=self._quarantine,
        )

    def _complete_job(
        self,
        job: _Job,
        *,
        records: dict[str, dict[str, Any]] | None = None,
        exc: Exception | None = None,
    ) -> None:
        """Release a job from the in-flight map and resolve its future."""
        self._jobs.pop(job.digest, None)
        if job.future.done():
            return
        if exc is not None:
            job.future.set_exception(exc)
            return
        record = (records or {}).get(job.digest)
        if record is None:
            job.future.set_exception(
                SolverError(
                    f"solve_batch returned no record for digest "
                    f"{job.digest[:12]}"
                )
            )
        else:
            job.future.set_result(record)

    # ------------------------------------------------------------------
    # protocol dispatch (transport-independent)
    # ------------------------------------------------------------------
    async def dispatch(
        self,
        message: dict[str, Any],
        ctx: ConnectionContext | None = None,
    ) -> dict[str, Any]:
        """Handle one already-decoded protocol message; returns the response.

        The single op-dispatch path behind every transport: the TCP
        connection handler routes each decoded line through here, and the
        in-process cluster workers (:class:`repro.serve.spawner
        .InProcessSpawner`) call it directly — socketless, but exercising
        exactly the code real connections do.  ``ctx`` carries the
        caller's session ownership; pass the same context for the
        caller's lifetime and reap it with :meth:`release_context`.
        Exceptions (other than cancellation) never escape: they are
        encoded as ``ok: false`` responses, with a machine-readable
        ``code`` for retriable conditions (see
        :func:`repro.serve.protocol.error_response`).
        """
        if ctx is None:
            ctx = ConnectionContext()
        op = message.get("op", "solve")
        rid = message.get("id")
        try:
            if op == "stats":
                return {"id": rid, "ok": True, "stats": self.stats.as_dict()}
            if op == "perf":
                return {"id": rid, "ok": True, "perf": self.perf_snapshot()}
            if op == "shutdown":
                if self._stop_task is None:
                    self._stop_task = asyncio.get_running_loop().create_task(
                        self.stop()
                    )
                return {"id": rid, "ok": True, "stopping": True}
            if op == "session.open":
                response = await self._session_open(message, ctx.sessions)
            elif op == "session.delta":
                response = await self._session_delta(message)
            elif op == "session.close":
                response = await self._session_close(message, ctx.sessions)
            else:
                instance, solver, priority = parse_solve_request(message)
                result, digest, served = await self._submit_full(
                    instance, solver=solver, priority=priority
                )
                response = {
                    "ok": True,
                    "digest": digest,
                    "served": served,
                    "result": get_policy(solver).result_to_wire(result),
                }
            response["id"] = rid
            return response
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            return error_response(rid, exc)
        except Exception as exc:  # never let one request kill the server
            return {
                "id": rid,
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }

    async def release_context(self, ctx: ConnectionContext) -> None:
        """Reap the sessions owned by a departed caller.

        Sessions are owned by their connection (or in-process handle): a
        disconnect mid-session must not leak retained tables.  Each close
        waits on the session lock, and delta handlers keep the lock until
        their backend call actually finishes even when cancelled, so the
        engine is never torn down mid-solve.
        """
        for sid in sorted(ctx.sessions):
            sess = self._sessions.pop(sid, None)
            if sess is not None:
                async with sess.lock:
                    self._retire_session(sess)
        ctx.sessions.clear()

    # ------------------------------------------------------------------
    # TCP protocol
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()
        ctx = ConnectionContext()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError) as exc:
                    # ValueError: line exceeded the stream limit.
                    await self._write(
                        writer,
                        write_lock,
                        {"id": None, "ok": False, "error": str(exc)},
                    )
                    break
                if not line:
                    break
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    await self._write(
                        writer,
                        write_lock,
                        {"id": None, "ok": False, "error": str(exc)},
                    )
                    continue
                task = asyncio.create_task(
                    self._respond(message, writer, write_lock, ctx)
                )
                conn_tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(conn_tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            # Client gone: responses are unwritable, so cancel what this
            # connection still has pending.  Shared in-flight solves are
            # shielded and keep running for other waiters.
            for task in conn_tasks:
                task.cancel()
            self._writers.discard(writer)
            writer.close()
            await self.release_context(ctx)

    async def _respond(
        self,
        message: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        ctx: ConnectionContext,
    ) -> None:
        """One request task: dispatch the message, write the response."""
        response = await self.dispatch(message, ctx)
        plan = _faults.active_plan()
        if plan is not None and plan.should_drop(response.get("digest")):
            # Chaos hook: tear the connection instead of answering —
            # the work is done (and cached); the client's retry policy
            # reconnects and re-asks.
            writer.close()
            return
        await self._write(writer, write_lock, response)

    # ------------------------------------------------------------------
    # session ops (incremental delta re-solve engine)
    # ------------------------------------------------------------------

    async def _session_open(
        self, message: dict[str, Any], conn_sessions: set[str]
    ) -> dict[str, Any]:
        if self._closing:
            raise ServerClosedError("server is shutting down; request refused")
        instance, kernel, records = parse_session_open(message)
        loop = asyncio.get_running_loop()
        # Cold solve off the loop (sessions never touch the micro-batch
        # backend; the default executor is fine for per-session state).
        state = await loop.run_in_executor(
            None, _open_session_state, instance, kernel
        )
        self._session_seq += 1
        sid = f"s{self._session_seq}"
        sess = _ServeSession(sid, state, records)
        self._sessions[sid] = sess
        conn_sessions.add(sid)
        self._sessions_opened += 1
        payload = await loop.run_in_executor(
            None, _frontier_payload, state, records
        )
        return {
            "ok": True,
            "session": sid,
            "kernel": state.kernel,
            "result": payload,
        }

    async def _session_delta(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, raw = parse_session_delta(message)
        sess = self._sessions.get(sid)
        if sess is None:
            raise ConfigurationError(f"unknown session {sid!r}")
        deltas = [delta_from_dict(d) for d in raw]
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        async with sess.lock:
            fut = loop.run_in_executor(None, sess.state.apply, deltas)
            try:
                applied: ApplyResult = await asyncio.shield(fut)
            except asyncio.CancelledError:
                # Disconnect mid-apply: hold the session lock until the
                # backend thread actually finishes, so the cleanup path
                # can never tear the engine down under a running solve.
                with contextlib.suppress(Exception):
                    await fut
                raise
            except Exception:
                sess.stats.errors += 1
                raise
            payload = await loop.run_in_executor(
                None, _frontier_payload, sess.state, sess.records
            )
        sess.stats.record_apply(
            deltas=applied.deltas_applied,
            reused=applied.fronts_reused,
            invalidated=applied.fronts_invalidated,
            seconds=time.perf_counter() - started,
        )
        return {
            "ok": True,
            "session": sid,
            "result": payload,
            "apply": {
                "deltas": applied.deltas_applied,
                "fronts_reused": applied.fronts_reused,
                "fronts_invalidated": applied.fronts_invalidated,
            },
        }

    async def _session_close(
        self, message: dict[str, Any], conn_sessions: set[str]
    ) -> dict[str, Any]:
        sid = parse_session_close(message)
        sess = self._sessions.pop(sid, None)
        if sess is None:
            raise ConfigurationError(f"unknown session {sid!r}")
        conn_sessions.discard(sid)
        async with sess.lock:
            stats = self._retire_session(sess)
        return {"ok": True, "session": sid, "closed": True, "stats": stats}

    @staticmethod
    def _session_stats_payload(sess: _ServeSession) -> dict[str, Any]:
        """Per-session stats block of the ``perf`` op (and close response)."""
        payload: dict[str, Any] = dict(sess.stats.as_dict())
        payload["kernel"] = sess.state.kernel
        payload["engine"] = sess.state.stats.as_dict()
        payload["store"] = sess.state.store.snapshot()
        return payload

    def _retire_session(self, sess: _ServeSession) -> dict[str, Any]:
        """Release a session's retained tables; fold stats into the aggregate."""
        payload = self._session_stats_payload(sess)
        sess.state.close()
        self._sessions_closed += 1
        self._closed_session_stats.merge(sess.stats)
        return payload

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: dict[str, Any],
    ) -> None:
        try:
            data = encode_line(message)
        except (TypeError, ValueError):
            # A third-party policy's result_to_wire may return something
            # json cannot serialise; the client must still get a frame,
            # not a silent hang.
            data = encode_line(
                {
                    "id": message.get("id"),
                    "ok": False,
                    "error": "internal error: response not JSON-serialisable",
                }
            )
        # Peer may disconnect mid-response; nothing to flush to then.
        with contextlib.suppress(ConnectionError, RuntimeError):
            async with write_lock:
                writer.write(data)
                await writer.drain()
