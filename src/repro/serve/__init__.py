"""Async batch-serving frontend: one cache, many concurrent clients.

The ROADMAP's serving milestone: a long-lived process wrapping the batch
pipeline so that concurrent clients share one result cache and identical
in-flight solves are *coalesced* — keyed by the solver policy's
canonical digest, N simultaneous requests for isomorphic instances cost
exactly one canonical solve, and every waiter fans the shared record out
through its own relabelling.

* :class:`BatchServer` — asyncio server; in-process awaitable entry
  (:meth:`~BatchServer.submit`) plus a JSON-lines-over-TCP endpoint
  (:meth:`~BatchServer.listen`).  ``max_pending`` bounds admission;
  excess load is shed with :class:`~repro.exceptions
  .ServerOverloadedError` (wire ``code: "overloaded"``).
* :class:`ClusterRouter` — digest-routed multi-worker scale-out
  (:mod:`repro.serve.cluster`): a consistent-hash ring partitions cache
  ownership across N workers spawned through a :class:`Spawner`
  backend (:class:`InProcessSpawner` for socketless deterministic
  tests, :class:`SubprocessSpawner` for real parallel processes), with
  shed/death failover to ring fallbacks.
* :class:`ServeClient` — pipelined protocol client (also behind the
  ``repro client`` CLI; the server side is ``repro serve`` and
  ``repro cluster``).  Works unchanged against a single server or a
  cluster router.
* :class:`ServeSession` — live incremental-session handle
  (``session.open`` / ``session.delta`` / ``session.close`` ops over
  the :mod:`repro.dynamics.incremental` engine).
* :mod:`repro.serve.protocol` — the wire format.

Serving counters (per-policy requests / cache hits / coalesced joins /
overload sheds / p50-p99 latency) live in
:class:`repro.perf.stats.ServeStats`; router-side counters in
:class:`repro.perf.stats.ClusterStats`.
"""

from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    ServeError,
    ServeOverloadedError,
    ServeSession,
)
from repro.serve.cluster import ClusterRouter, HashRing
from repro.serve.protocol import (
    CODE_CLOSED,
    CODE_OVERLOADED,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    parse_solve_request,
)
from repro.serve.server import BatchServer, ConnectionContext
from repro.serve.spawner import (
    InProcessSpawner,
    Spawner,
    SubprocessSpawner,
    WorkerConfig,
    WorkerDiedError,
    WorkerHandle,
)

__all__ = [
    "BatchServer",
    "CODE_CLOSED",
    "CODE_OVERLOADED",
    "ClusterRouter",
    "ConnectionContext",
    "HashRing",
    "InProcessSpawner",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ServeClient",
    "ServeConnectionError",
    "ServeError",
    "ServeOverloadedError",
    "ServeSession",
    "Spawner",
    "SubprocessSpawner",
    "WorkerConfig",
    "WorkerDiedError",
    "WorkerHandle",
    "decode_line",
    "encode_line",
    "error_response",
    "parse_solve_request",
]
