"""Async batch-serving frontend: one cache, many concurrent clients.

The ROADMAP's serving milestone: a long-lived process wrapping the batch
pipeline so that concurrent clients share one result cache and identical
in-flight solves are *coalesced* — keyed by the solver policy's
canonical digest, N simultaneous requests for isomorphic instances cost
exactly one canonical solve, and every waiter fans the shared record out
through its own relabelling.

* :class:`BatchServer` — asyncio server; in-process awaitable entry
  (:meth:`~BatchServer.submit`) plus a JSON-lines-over-TCP endpoint
  (:meth:`~BatchServer.listen`).
* :class:`ServeClient` — pipelined protocol client (also behind the
  ``repro client`` CLI; the server side is ``repro serve``).
* :class:`ServeSession` — live incremental-session handle
  (``session.open`` / ``session.delta`` / ``session.close`` ops over
  the :mod:`repro.dynamics.incremental` engine).
* :mod:`repro.serve.protocol` — the wire format.

Serving counters (per-policy requests / cache hits / coalesced joins /
p50-p99 latency) live in :class:`repro.perf.stats.ServeStats`.
"""

from repro.serve.client import ServeClient, ServeError, ServeSession
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_line,
    parse_solve_request,
)
from repro.serve.server import BatchServer

__all__ = [
    "BatchServer",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeSession",
    "decode_line",
    "encode_line",
    "parse_solve_request",
]
