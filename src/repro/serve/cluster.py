"""Digest-routed multi-worker serving cluster.

:class:`ClusterRouter` scales the single :class:`~repro.serve.server
.BatchServer` out to N workers without giving up the properties that make
the single server correct:

* **Partitioned digest ownership.**  Every solve request is keyed by its
  policy's canonical digest (the same key the coalescing path uses); a
  consistent-hash ring (:class:`HashRing`) maps each digest to one
  *owner* worker.  All isomorphic duplicates of an instance therefore
  land on the same worker and coalesce there, and each worker's result
  cache holds a disjoint digest shard — no shared ``--cache-dir``, no
  advisory-flock contention, and adding workers multiplies aggregate
  cache capacity instead of duplicating it.
* **First-class backpressure.**  Workers run with a ``max_pending``
  admission bound and shed excess load with ``code: "overloaded"``
  responses (nothing enqueued server-side).  The router retries a shed
  request against the digest's next owners on the ring (``fallbacks``
  hops); only when *every* owner sheds does the client see the overload
  — bounded queues everywhere, no unbounded pile-up anywhere.
* **Worker death is survivable.**  A request that hits a dead worker
  (:class:`~repro.serve.spawner.WorkerDiedError`) fails over to the next
  owner while the router re-spawns the dead worker in the background
  (single-flight per name).  Stateless solve traffic loses nothing.
  Live sessions are the documented exception: session state is
  worker-local by design, so a worker death orphans its sessions and
  subsequent ``session.*`` calls answer with a ``session lost`` error
  (counted in ``lost_sessions``).
* **Session stickiness.**  ``session.open`` is routed by the instance's
  canonical digest and the session stays pinned to that worker; the
  router namespaces session ids as ``<worker>:<sid>`` so deltas and
  closes route back without a lookup table on the wire.

The router speaks the exact protocol of :mod:`repro.serve.protocol` on
its front socket — :class:`~repro.serve.client.ServeClient` works
unchanged against a cluster — and reaches workers through the
:class:`~repro.serve.spawner.Spawner` abstraction, so the whole topology
(router + workers + death + re-spawn) runs socketlessly inside one
pytest process with :class:`~repro.serve.spawner.InProcessSpawner`, and
as real parallel processes with
:class:`~repro.serve.spawner.SubprocessSpawner`.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
from typing import Any

from repro.batch.registry import get_policy
from repro.exceptions import ConfigurationError, ReproError
from repro.perf.stats import ClusterStats
from repro.serve.protocol import (
    CODE_CLOSED,
    CODE_OVERLOADED,
    CODE_TIMEOUT,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    parse_solve_request,
)
from repro.serve.spawner import (
    Spawner,
    WorkerConfig,
    WorkerDiedError,
    WorkerHandle,
)

__all__ = ["ClusterRouter", "HashRing"]

#: Virtual nodes per worker on the ring.  Enough that the digest space
#: splits close to evenly across a handful of workers; cheap enough that
#: ring construction stays trivial.
_RING_REPLICAS = 64

#: Re-spawn attempts (with doubling backoff) before a worker is left dead.
_RESPAWN_ATTEMPTS = 3
_RESPAWN_BACKOFF = 0.1


def _ring_hash(value: str) -> int:
    return int.from_bytes(hashlib.sha256(value.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping digests to an ordered owner list.

    Each worker name contributes :data:`_RING_REPLICAS` virtual points
    (``sha256(f"{name}#{i}")``).  :meth:`owners` walks the ring clockwise
    from the digest's point and returns the first ``n`` *distinct*
    workers — the primary owner followed by its fallbacks.  Membership is
    static after construction: dead workers keep their arc (so their
    digests come straight back to them after a re-spawn, cache intact)
    and the router skips them at dispatch time instead.
    """

    def __init__(self, names: list[str], replicas: int = _RING_REPLICAS) -> None:
        if not names:
            raise ConfigurationError("hash ring needs at least one worker")
        points: list[tuple[int, str]] = []
        for name in names:
            for i in range(replicas):
                points.append((_ring_hash(f"{name}#{i}"), name))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._names = [n for _, n in points]
        self._distinct = sorted(set(names))

    def owners(self, digest: str, n: int = 1) -> list[str]:
        """The first ``n`` distinct workers clockwise from ``digest``."""
        n = min(n, len(self._distinct))
        start = bisect.bisect_left(self._hashes, _ring_hash(digest))
        owners: list[str] = []
        for step in range(len(self._names)):
            name = self._names[(start + step) % len(self._names)]
            if name not in owners:
                owners.append(name)
                if len(owners) == n:
                    break
        return owners


class _RouterContext:
    """Per-front-connection state: the sessions this client opened.

    Maps the public session id (``"<worker>:<sid>"``) to its owning
    worker name and the worker-local sid, so disconnects reap exactly
    this client's sessions on exactly the right workers.
    """

    __slots__ = ("sessions",)

    def __init__(self) -> None:
        self.sessions: dict[str, tuple[str, str]] = {}


class ClusterRouter:
    """Front-end router over a fleet of spawned serve workers.

    Parameters
    ----------
    spawner:
        Backend that creates the workers (in-process for tests,
        subprocess for deployment).
    n_workers:
        Fleet size; workers are named ``w0`` .. ``w{n-1}``.
    config:
        Per-worker shape (``max_pending``, micro-batch knobs, cache
        layout); one config for the whole homogeneous fleet.
    fallbacks:
        Extra ring owners tried after the primary sheds or dies.  The
        default ``1`` gives every digest a secondary; ``0`` disables
        failover entirely (a shed is final).
    stats:
        Optional shared :class:`~repro.perf.stats.ClusterStats`.
    """

    def __init__(
        self,
        spawner: Spawner,
        n_workers: int,
        config: WorkerConfig | None = None,
        *,
        fallbacks: int = 1,
        stats: ClusterStats | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if fallbacks < 0:
            raise ConfigurationError(
                f"fallbacks must be >= 0, got {fallbacks}"
            )
        self._spawner = spawner
        self._config = config if config is not None else WorkerConfig()
        self._names = [f"w{i}" for i in range(n_workers)]
        self._attempts = 1 + fallbacks
        self.stats = stats if stats is not None else ClusterStats()
        self._ring = HashRing(self._names)
        self._handles: dict[str, WorkerHandle] = {}
        self._down: set[str] = set()
        self._respawns: dict[str, asyncio.Task] = {}
        self._tcp_server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._stop_task: asyncio.Task | None = None
        self._started = False
        self._closing = False
        self._stopped = asyncio.Event()

    @property
    def worker_names(self) -> list[str]:
        return list(self._names)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> ClusterRouter:
        """Spawn the whole fleet (idempotent); no front socket yet."""
        if self._closing:
            raise ConfigurationError("cluster has been stopped")
        if not self._started:
            self._started = True
            for name in self._names:
                self._handles[name] = await self._spawner.spawn(
                    name, self._config
                )
        return self

    async def listen(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Open the front TCP endpoint; returns the bound ``(host, port)``."""
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_conn, host, port, limit=MAX_LINE_BYTES
        )
        sock_host, sock_port = self._tcp_server.sockets[0].getsockname()[:2]
        return sock_host, sock_port

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (e.g. via a shutdown op)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: close the front, stop workers, re-spawns."""
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._tcp_server is not None:
            self._tcp_server.close()
        for task in self._respawns.values():
            task.cancel()
        if self._respawns:
            await asyncio.gather(
                *self._respawns.values(), return_exceptions=True
            )
        self._respawns.clear()
        current = asyncio.current_task()
        pending = [t for t in self._request_tasks if t is not current]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()
        await self._spawner.close()
        self._stopped.set()

    async def __aenter__(self) -> ClusterRouter:
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # worker health
    # ------------------------------------------------------------------
    def _note_death(self, name: str) -> None:
        """Record a death observation once and schedule the re-spawn."""
        if name in self._down:
            return
        self._down.add(name)
        self.stats.worker(name).deaths += 1
        if not self._closing:
            task = self._respawns.get(name)
            if task is None or task.done():
                self._respawns[name] = asyncio.get_running_loop().create_task(
                    self._respawn(name)
                )

    async def _respawn(self, name: str) -> None:
        """Single-flight re-spawn of one dead worker, with backoff."""
        old = self._handles.get(name)
        if old is not None and old.alive:
            # Transport loss with the process still up (subprocess
            # backend): finish the kill so the replacement owns the name.
            with contextlib.suppress(Exception):
                await old.kill()
        backoff = _RESPAWN_BACKOFF
        for attempt in range(_RESPAWN_ATTEMPTS):
            if self._closing:
                return
            try:
                handle = await self._spawner.spawn(name, self._config)
            except asyncio.CancelledError:
                raise
            except Exception:
                if attempt == _RESPAWN_ATTEMPTS - 1:
                    return  # left dead; the ring skips it
                await asyncio.sleep(backoff)
                backoff *= 2
            else:
                self._handles[name] = handle
                self._down.discard(name)
                self.stats.worker(name).respawns += 1
                return

    def _live_handle(self, name: str) -> WorkerHandle | None:
        handle = self._handles.get(name)
        if handle is None or not handle.alive or name in self._down:
            self._note_death(name)
            return None
        return handle

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, message: dict[str, Any], digest: str, rid: Any
    ) -> tuple[str | None, dict[str, Any]]:
        """Try the digest's owners in ring order; returns ``(worker, resp)``.

        Sheds (``code: "overloaded"``) and deaths fall through to the
        next owner; a graceful-shutdown refusal (``code: "closed"``) is
        treated like a shed (the worker is draining, not dead).  A
        supervised-solve deadline overrun (``code: "timeout"``) is
        counted but forwarded verbatim, *never* failed over: the hang is
        keyed by the digest, so replaying it on a fallback owner would
        hang (and rebuild) that worker's pool too — the client may retry
        after backoff instead.  Any other error response (including
        ``code: "quarantined"``) is request-specific and forwarded
        verbatim — retrying an infeasible or poison instance elsewhere
        cannot help.
        """
        self.stats.requests_routed += 1
        last_shed: dict[str, Any] | None = None
        attempted = 0
        for name in self._ring.owners(digest, self._attempts):
            handle = self._live_handle(name)
            if handle is None:
                continue
            if attempted:
                self.stats.retries += 1
            attempted += 1
            wstats = self.stats.worker(name)
            wstats.routed += 1
            try:
                response = await handle.request(message)
            except WorkerDiedError:
                self._note_death(name)
                continue
            if response.get("ok"):
                return name, response
            code = response.get("code")
            if code in (CODE_OVERLOADED, CODE_CLOSED):
                wstats.sheds += 1
                last_shed = response
                continue
            if code == CODE_TIMEOUT:
                wstats.timeouts += 1
                return name, response
            wstats.errors += 1
            return name, response
        self.stats.rejected += 1
        if last_shed is not None:
            return None, last_shed
        return None, {
            "id": rid,
            "ok": False,
            "error": "no live worker available for this request",
            "code": CODE_OVERLOADED,
        }

    def _solve_digest(self, message: dict[str, Any]) -> str:
        """Routing key of a solve request (canonical digest, CPU-bound)."""
        instance, solver, _ = parse_solve_request(message)
        policy = get_policy(solver)
        policy.check_instance(instance, 0)
        _, digest = policy.instance_key(instance)
        return digest

    def _session_digest(self, message: dict[str, Any]) -> str:
        """Routing key of a session.open (frontier digest when possible)."""
        raw = message.get("instance")
        if not isinstance(raw, dict):
            raise ProtocolError("session.open request has no 'instance' object")
        try:
            solve_message = {"op": "solve", "instance": raw,
                            "solver": "power_frontier"}
            return self._solve_digest(solve_message)
        except ReproError:
            # No power model (or no frontier policy): route determin-
            # istically anyway; the worker produces the real error.
            return "session-fallback"

    @staticmethod
    def _split_public_sid(public: str) -> tuple[str, str] | None:
        worker, sep, sid = public.partition(":")
        if not sep or not worker or not sid:
            return None
        return worker, sid

    async def _dispatch_session_open(
        self, message: dict[str, Any], ctx: _RouterContext, rid: Any
    ) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        digest = await loop.run_in_executor(
            None, self._session_digest, message
        )
        name, response = await self._route(message, digest, rid)
        if name is not None and response.get("ok"):
            public = f"{name}:{response['session']}"
            ctx.sessions[public] = (name, response["session"])
            response = dict(response)
            response["session"] = public
        return response

    async def _dispatch_session_sticky(
        self, message: dict[str, Any], ctx: _RouterContext, rid: Any
    ) -> dict[str, Any]:
        """Forward session.delta / session.close to the pinned worker."""
        public = message.get("session")
        if not isinstance(public, str) or self._split_public_sid(public) is None:
            return {
                "id": rid,
                "ok": False,
                "error": f"unknown session {public!r} (cluster session ids "
                "look like 'w0:s1')",
            }
        owned = ctx.sessions.get(public)
        split = self._split_public_sid(public)
        assert split is not None
        name, sid = owned if owned is not None else split
        handle = self._live_handle(name)
        if handle is None:
            if ctx.sessions.pop(public, None) is not None:
                self.stats.lost_sessions += 1
            return {
                "id": rid,
                "ok": False,
                "error": f"session {public!r} lost: worker {name!r} died "
                "(session state is worker-local and cannot fail over)",
            }
        wstats = self.stats.worker(name)
        wstats.routed += 1
        forwarded = dict(message)
        forwarded["session"] = sid
        try:
            response = await handle.request(forwarded)
        except WorkerDiedError:
            self._note_death(name)
            if ctx.sessions.pop(public, None) is not None:
                self.stats.lost_sessions += 1
            return {
                "id": rid,
                "ok": False,
                "error": f"session {public!r} lost: worker {name!r} died "
                "mid-request",
            }
        response = dict(response)
        if response.get("session") == sid:
            response["session"] = public
        if not response.get("ok"):
            wstats.errors += 1
        elif message.get("op") == "session.close":
            ctx.sessions.pop(public, None)
        return response

    async def _fan_out(self, op: str) -> dict[str, Any]:
        """Collect one op from every worker; dead ones report as such."""
        names = list(self._names)

        async def one(name: str) -> dict[str, Any]:
            handle = self._live_handle(name)
            if handle is None:
                return {"alive": False}
            try:
                response = await handle.request({"op": op})
            except WorkerDiedError:
                self._note_death(name)
                return {"alive": False}
            if not response.get("ok"):
                return {"alive": True, "error": response.get("error")}
            payload = response.get("stats" if op == "stats" else "perf")
            return {"alive": True, op: payload}

        results = await asyncio.gather(*(one(n) for n in names))
        return dict(zip(names, results))

    async def dispatch(
        self,
        message: dict[str, Any],
        ctx: _RouterContext | None = None,
    ) -> dict[str, Any]:
        """Route one decoded protocol message; returns the response dict.

        The cluster twin of :meth:`BatchServer.dispatch`: same wire
        contract on both sides, so :class:`ServeClient` cannot tell a
        router from a single server (cluster-specific payloads appear
        only under the ``stats``/``perf`` ops' ``cluster`` key).
        """
        if ctx is None:
            ctx = _RouterContext()
        op = message.get("op", "solve")
        rid = message.get("id")
        try:
            if op == "stats":
                return {
                    "id": rid,
                    "ok": True,
                    "stats": {
                        "cluster": self.stats.as_dict(),
                        "workers": await self._fan_out("stats"),
                    },
                }
            if op == "perf":
                return {
                    "id": rid,
                    "ok": True,
                    "perf": {
                        "cluster": self.stats.as_dict(),
                        "workers": await self._fan_out("perf"),
                    },
                }
            if op == "shutdown":
                if self._stop_task is None:
                    self._stop_task = asyncio.get_running_loop().create_task(
                        self.stop()
                    )
                return {"id": rid, "ok": True, "stopping": True}
            if op == "session.open":
                response = await self._dispatch_session_open(message, ctx, rid)
            elif op in ("session.delta", "session.close"):
                response = await self._dispatch_session_sticky(
                    message, ctx, rid
                )
            else:
                digest = await asyncio.get_running_loop().run_in_executor(
                    None, self._solve_digest, message
                )
                _, response = await self._route(message, digest, rid)
            response = dict(response)
            response["id"] = rid
            return response
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            return error_response(rid, exc)
        except Exception as exc:  # never let one request kill the router
            return {
                "id": rid,
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }

    async def release_context(self, ctx: _RouterContext) -> None:
        """Reap a departed client's sessions on their owning workers."""
        for _public, (name, sid) in sorted(ctx.sessions.items()):
            handle = self._handles.get(name)
            if handle is None or not handle.alive:
                continue
            with contextlib.suppress(Exception):
                await handle.request({"op": "session.close", "session": sid})
        ctx.sessions.clear()

    # ------------------------------------------------------------------
    # front TCP endpoint (same framing as BatchServer)
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()
        ctx = _RouterContext()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError) as exc:
                    await self._write(
                        writer,
                        write_lock,
                        {"id": None, "ok": False, "error": str(exc)},
                    )
                    break
                if not line:
                    break
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    await self._write(
                        writer,
                        write_lock,
                        {"id": None, "ok": False, "error": str(exc)},
                    )
                    continue
                task = asyncio.create_task(
                    self._respond(message, writer, write_lock, ctx)
                )
                conn_tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(conn_tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            for task in conn_tasks:
                task.cancel()
            self._writers.discard(writer)
            writer.close()
            await self.release_context(ctx)

    async def _respond(
        self,
        message: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        ctx: _RouterContext,
    ) -> None:
        response = await self.dispatch(message, ctx)
        await self._write(writer, write_lock, response)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: dict[str, Any],
    ) -> None:
        try:
            data = encode_line(message)
        except (TypeError, ValueError):
            data = encode_line(
                {
                    "id": message.get("id"),
                    "ok": False,
                    "error": "internal error: response not JSON-serialisable",
                }
            )
        with contextlib.suppress(ConnectionError, RuntimeError):
            async with write_lock:
                writer.write(data)
                await writer.drain()
